//! The rule framework: diagnostics, lint context, and the registry of
//! project-invariant rules.
//!
//! Each rule is a token-pattern check over [`SourceFile`]s. Rules are
//! deliberately syntactic: the invariants they guard (panic-free data
//! plane, O(1) queue ops, single drop-accounting entry point, offline
//! shim surface, no `unsafe`) are all expressible as "this token shape
//! must not appear here", which a hand-rolled lexer can enforce without
//! `syn` — a hard requirement in the registry-less build environment.

use std::collections::BTreeMap;

use crate::source::SourceFile;

mod drop_accounting;
mod panic_free;
mod queue_discipline;
mod shim_surface;
mod telemetry_naming;
mod unsafe_audit;

pub use drop_accounting::DropAccounting;
pub use panic_free::PanicFree;
pub use queue_discipline::QueueDiscipline;
pub use shim_surface::ShimSurface;
pub use telemetry_naming::TelemetryNaming;
pub use unsafe_audit::UnsafeAudit;

/// One CI-failing finding, rendered as `file:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative file path (`/` separators).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name (the `lint: allow(<rule>)` key).
    pub rule: String,
    /// Human-readable finding.
    pub msg: String,
}

impl Diagnostic {
    /// Build a diagnostic.
    pub fn new(file: &str, line: u32, rule: &str, msg: impl Into<String>) -> Diagnostic {
        Diagnostic {
            file: file.to_string(),
            line,
            rule: rule.to_string(),
            msg: msg.into(),
        }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// Engine configuration.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Treat every linted file as a data-plane module (fixture mode —
    /// the golden tests exercise data-plane rules on standalone
    /// snippets).
    pub all_dataplane: bool,
    /// Workspace-relative files permitted to contain `unsafe` (the
    /// audited allowlist). Empty: the workspace is `unsafe`-free.
    pub unsafe_allowlist: Vec<String>,
}

/// The data-plane module set: the per-hop forwarding path whose
/// constant-time, never-failing contract is the paper's whole
/// performance argument (§2). Grow this list as the data plane grows.
pub const DATAPLANE_PREFIXES: &[&str] =
    &["crates/router/src/dataplane/", "crates/router/src/viper/"];

/// Individual files in the data-plane set (see [`DATAPLANE_PREFIXES`]).
pub const DATAPLANE_FILES: &[&str] = &[
    "crates/router/src/ip.rs",
    "crates/router/src/cvc.rs",
    "crates/wire/src/buf.rs",
    "crates/sim/src/queue.rs",
    "crates/sim/src/shard.rs",
    "crates/sim/src/sync.rs",
];

impl Config {
    /// Whether `rel` is a data-plane module.
    pub fn is_dataplane(&self, rel: &str) -> bool {
        self.all_dataplane
            || DATAPLANE_PREFIXES.iter().any(|p| rel.starts_with(p))
            || DATAPLANE_FILES.contains(&rel)
    }
}

/// Everything a rule can see: all analyzed files, the config, and the
/// vendored-shim API surfaces.
pub struct LintCtx<'a> {
    /// All files being linted.
    pub files: &'a [SourceFile],
    /// Engine configuration.
    pub cfg: &'a Config,
    /// Shim crate name → set of identifiers its sources define.
    pub shims: &'a BTreeMap<String, std::collections::BTreeSet<String>>,
}

/// A project-invariant rule.
pub trait Rule {
    /// Stable rule name — diagnostics key and `lint: allow` key.
    fn name(&self) -> &'static str;
    /// One-line description for `xtask lint --list`.
    fn describe(&self) -> &'static str;
    /// Run over the whole context, appending findings.
    fn check(&self, ctx: &LintCtx<'_>, out: &mut Vec<Diagnostic>);
}

/// The full rule registry, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(PanicFree),
        Box::new(QueueDiscipline),
        Box::new(DropAccounting),
        Box::new(ShimSurface),
        Box::new(TelemetryNaming),
        Box::new(UnsafeAudit),
    ]
}

/// Rust keywords that can directly precede a `[` without forming an
/// index expression (`for x in [..]`, `return [..]`, …). Shared by the
/// indexing detector.
pub(crate) const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn", "for",
    "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return",
    "static", "struct", "trait", "type", "unsafe", "use", "where", "while", "yield", "await",
];
