//! `shim-surface`: the build environment has no registry access, so
//! `rand`/`proptest`/`criterion`/`serde`/`serde_json` resolve to minimal
//! vendored shims under `shims/`. Code that reaches for an API the shim
//! does not define builds fine on a developer box with a warm cache and
//! then breaks the offline build. This rule cross-checks every
//! `shimcrate::path` segment (in `use` trees and inline paths) against
//! the identifiers the shim sources actually define.
//!
//! Approximation, by design: method calls resolved through traits
//! (`rng.gen_range(..)`) are not path expressions and are not checked —
//! the shim's own compile covers those. Path segments are checked
//! against *all* identifiers the shim defines (functions, types,
//! modules, re-exports, enum variants, macros), so a private-item hit is
//! possible but a false "missing" is not.

use crate::lexer::TokKind;
use crate::rules::{Diagnostic, LintCtx, Rule};
use crate::source::SourceFile;

/// See the module docs.
pub struct ShimSurface;

impl Rule for ShimSurface {
    fn name(&self) -> &'static str {
        "shim-surface"
    }

    fn describe(&self) -> &'static str {
        "only APIs the vendored shims define may be named in shim-crate paths"
    }

    fn check(&self, ctx: &LintCtx<'_>, out: &mut Vec<Diagnostic>) {
        if ctx.shims.is_empty() {
            return;
        }
        for f in ctx.files {
            if f.rel.starts_with("shims/") {
                continue; // The shims may reference themselves freely.
            }
            self.check_file(ctx, f, out);
        }
    }
}

impl ShimSurface {
    fn check_file(&self, ctx: &LintCtx<'_>, f: &SourceFile, out: &mut Vec<Diagnostic>) {
        for i in 0..f.code.len() {
            if f.in_attribute(i) {
                continue;
            }
            let t = f.tok(i);
            if t.kind != TokKind::Ident {
                continue;
            }
            let Some(surface) = ctx.shims.get(&t.text) else {
                continue;
            };
            // Path root only: not preceded by `::` or `.`, followed by `::`.
            if i > 0 && matches!(f.tok(i - 1).text.as_str(), ":" | ".") {
                continue;
            }
            // `use something as rand;` or `mod rand` shadowing — skip
            // declarations of the name itself.
            if i > 0 && matches!(f.tok(i - 1).text.as_str(), "mod" | "as" | "fn" | "let") {
                continue;
            }
            if !(i + 2 < f.code.len() && f.tok(i + 1).text == ":" && f.tok(i + 2).text == ":") {
                continue;
            }
            self.walk_path(f, &t.text, surface, i + 3, out);
        }
    }

    /// Walk the path (or `use` tree) starting at code index `j`, checking
    /// every segment identifier against the shim surface. Returns at the
    /// end of the path.
    fn walk_path(
        &self,
        f: &SourceFile,
        shim: &str,
        surface: &std::collections::BTreeSet<String>,
        mut j: usize,
        out: &mut Vec<Diagnostic>,
    ) {
        while j < f.code.len() {
            let t = f.tok(j);
            match t.kind {
                TokKind::Ident => {
                    let seg = t.text.as_str();
                    let skip = matches!(seg, "self" | "super" | "crate" | "as");
                    if seg == "as" {
                        j += 2; // The alias ident is the user's name, not the shim's.
                        continue;
                    }
                    if !skip && !surface.contains(seg) {
                        out.push(Diagnostic::new(
                            &f.rel,
                            t.line,
                            self.name(),
                            format!(
                                "`{shim}::…::{seg}` is not defined by the vendored shim \
                                 (shims/{shim}) — the offline build would break; extend the \
                                 shim or drop the call"
                            ),
                        ));
                    }
                    // Continue through `::`; otherwise path ends.
                    if j + 2 < f.code.len() && f.tok(j + 1).text == ":" && f.tok(j + 2).text == ":"
                    {
                        j += 3;
                        continue;
                    }
                    return;
                }
                TokKind::Punct if t.text == "{" => {
                    // Use-tree group: check every ident inside, honoring
                    // `as` aliases, until the matching close.
                    let mut depth = 0usize;
                    let mut after_as = false;
                    while j < f.code.len() {
                        let u = f.tok(j);
                        match u.text.as_str() {
                            "{" => depth += 1,
                            "}" => {
                                depth -= 1;
                                if depth == 0 {
                                    return;
                                }
                            }
                            "," => after_as = false,
                            "as" => after_as = true,
                            _ => {
                                if u.kind == TokKind::Ident
                                    && !after_as
                                    && !matches!(u.text.as_str(), "self" | "super" | "crate")
                                    && !surface.contains(&u.text)
                                {
                                    out.push(Diagnostic::new(
                                        &f.rel,
                                        u.line,
                                        self.name(),
                                        format!(
                                            "`{shim}::…::{}` is not defined by the vendored \
                                             shim (shims/{shim}) — the offline build would \
                                             break; extend the shim or drop the call",
                                            u.text
                                        ),
                                    ));
                                }
                            }
                        }
                        j += 1;
                    }
                    return;
                }
                TokKind::Punct if t.text == "*" => return,
                _ => return,
            }
        }
    }
}
