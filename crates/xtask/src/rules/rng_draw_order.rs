//! `rng-draw-order`: node/router code draws randomness only through
//! `Context::rng()`.
//!
//! The engine owns one seeded `StdRng` per shard (seeds derived as
//! `master ^ splitmix64(shard)`), and replay-by-seed plus shard-count
//! invariance depend on every draw coming out of those streams in
//! event order. A node that constructs its own RNG — even a seeded one
//! — forks a private stream the engine cannot align across shard
//! counts, and an entropy-seeded one breaks replay outright. So in
//! node/router code ([`crate::rules::NODE_CODE_PREFIXES`]) the rule
//! bans naming RNG types and seeding/entropy constructors at all;
//! calling `.gen_range(..)` on the `&mut StdRng` handed out by
//! `Context::rng()` (including `use rand::Rng` to bring the trait into
//! scope) stays legal.

use crate::lexer::TokKind;
use crate::rules::{Diagnostic, LintCtx, Rule};

/// RNG types and constructors whose mere mention means a private
/// stream: owning the value is the violation, not a particular call.
const BANNED: &[&str] = &[
    "StdRng",
    "SmallRng",
    "ThreadRng",
    "OsRng",
    "thread_rng",
    "from_entropy",
    "from_seed",
    "seed_from_u64",
    "from_rng",
];

/// See the module docs.
pub struct RngDrawOrder;

impl Rule for RngDrawOrder {
    fn name(&self) -> &'static str {
        "rng-draw-order"
    }

    fn describe(&self) -> &'static str {
        "node/router code takes randomness only from Context::rng(); no private RNG construction or seeding"
    }

    fn check(&self, ctx: &LintCtx<'_>, out: &mut Vec<Diagnostic>) {
        for f in ctx.files {
            if !ctx.cfg.is_node_code(&f.rel) || crate::symbols::is_test_location(&f.rel) {
                continue;
            }
            for i in 0..f.code.len() {
                if f.in_attribute(i) {
                    continue;
                }
                let t = f.tok(i);
                if t.kind != TokKind::Ident
                    || f.is_test_line(t.line)
                    || !BANNED.contains(&t.text.as_str())
                {
                    continue;
                }
                // Not a declaration of a same-named fn (shims define
                // these; node code only ever references them).
                if i > 0 && f.tok(i - 1).text == "fn" {
                    continue;
                }
                out.push(Diagnostic::new(
                    &f.rel,
                    t.line,
                    self.name(),
                    format!(
                        "`{}` in node/router code forks a private RNG stream — take draws \
                         from `ctx.rng()` so event-order replay and shard-count invariance \
                         hold",
                        t.text
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Config;
    use crate::source::SourceFile;
    use std::collections::BTreeMap;

    fn run_on(rel: &str, src: &str) -> Vec<Diagnostic> {
        let files = vec![SourceFile::analyze(rel.to_string(), src)];
        let sym = crate::symbols::SymbolTable::build(std::path::Path::new("/nonexistent"), &files);
        let graph = crate::callgraph::CallGraph::build(&files, &sym);
        let cfg = Config {
            fixture_scopes: true,
            ..Config::default()
        };
        let shims = BTreeMap::new();
        let ctx = LintCtx {
            files: &files,
            cfg: &cfg,
            shims: &shims,
            symbols: &sym,
            graph: &graph,
        };
        let mut out = Vec::new();
        RngDrawOrder.check(&ctx, &mut out);
        out
    }

    #[test]
    fn private_rng_in_node_code_flagged() {
        let d = run_on(
            "bad_node.rs",
            "use rand::rngs::StdRng;\nuse rand::SeedableRng;\n\
             fn jitter() -> u64 { let mut r = StdRng::seed_from_u64(7); 3 }\n",
        );
        assert!(d.iter().any(|x| x.msg.contains("StdRng")));
        assert!(d.iter().any(|x| x.msg.contains("seed_from_u64")));
    }

    #[test]
    fn context_draws_are_clean() {
        let d = run_on(
            "clean_node.rs",
            "use rand::Rng;\nfn jitter(ctx: &mut Context) -> u64 { ctx.rng().gen_range(0..9) }\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn non_node_files_out_of_scope() {
        let d = run_on(
            "engine_core.rs",
            "fn f() { let r = StdRng::seed_from_u64(7); }\n",
        );
        assert!(d.is_empty());
    }
}
