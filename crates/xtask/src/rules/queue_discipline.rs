//! `queue-discipline`: O(n) head operations on growable buffers are
//! forbidden in the data plane. `Vec::remove(0)` / `insert(0, ..)`
//! memmove the whole queue on every service — exactly the regression
//! class the `VecDeque::pop_front` migration removed; this rule keeps it
//! from creeping back.

use crate::rules::{Diagnostic, LintCtx, Rule};
use crate::source::SourceFile;

/// See the module docs.
pub struct QueueDiscipline;

impl Rule for QueueDiscipline {
    fn name(&self) -> &'static str {
        "queue-discipline"
    }

    fn describe(&self) -> &'static str {
        "no O(n) head ops (remove(0)/insert(0, ..)/swap_remove(0)) in data-plane modules"
    }

    fn check(&self, ctx: &LintCtx<'_>, out: &mut Vec<Diagnostic>) {
        for f in ctx.files {
            if !ctx.cfg.is_dataplane(&f.rel) {
                continue;
            }
            self.check_file(f, out);
        }
    }
}

impl QueueDiscipline {
    fn check_file(&self, f: &SourceFile, out: &mut Vec<Diagnostic>) {
        // Pattern: `.` <method> `(` `0` <terminator>
        for i in 2..f.code.len() {
            if f.in_attribute(i) {
                continue;
            }
            let t = f.tok(i);
            if f.is_test_line(t.line) {
                continue;
            }
            let method = t.text.as_str();
            let terminator = match method {
                "remove" | "swap_remove" => ")",
                "insert" => ",",
                _ => continue,
            };
            if f.tok(i - 1).text != "." {
                continue;
            }
            let open = i + 1;
            let zero = i + 2;
            let term = i + 3;
            if term >= f.code.len()
                || f.tok(open).text != "("
                || f.tok(zero).text != "0"
                || f.tok(term).text != terminator
            {
                continue;
            }
            out.push(Diagnostic::new(
                &f.rel,
                t.line,
                self.name(),
                format!(
                    "`.{method}(0{})` is O(queue depth) — use a VecDeque \
                     (`pop_front`/`push_front`) so service stays O(1)",
                    if terminator == "," { ", .." } else { "" }
                ),
            ));
        }
    }
}
