//! `unsafe-audit`: `unsafe` is forbidden everywhere except an explicit,
//! reviewed allowlist (currently empty — the whole workspace is safe
//! Rust), and every crate root must carry `#![forbid(unsafe_code)]` so
//! the compiler enforces the same thing from the inside.

use crate::lexer::TokKind;
use crate::rules::{Diagnostic, LintCtx, Rule};

/// See the module docs.
pub struct UnsafeAudit;

impl Rule for UnsafeAudit {
    fn name(&self) -> &'static str {
        "unsafe-audit"
    }

    fn describe(&self) -> &'static str {
        "no `unsafe` outside the allowlist; crate roots carry #![forbid(unsafe_code)]"
    }

    fn check(&self, ctx: &LintCtx<'_>, out: &mut Vec<Diagnostic>) {
        for f in ctx.files {
            let allowlisted = ctx.cfg.unsafe_allowlist.contains(&f.rel);
            if !allowlisted {
                for i in 0..f.code.len() {
                    let t = f.tok(i);
                    if t.kind == TokKind::Ident && t.text == "unsafe" && !f.in_attribute(i) {
                        out.push(Diagnostic::new(
                            &f.rel,
                            t.line,
                            self.name(),
                            "`unsafe` outside the audited allowlist — justify it in the \
                             allowlist (crates/xtask) or write it safely",
                        ));
                    }
                }
            }
            // Crate roots must self-enforce via the compiler, too.
            if (f.rel.ends_with("src/lib.rs") || f.rel.ends_with("src/main.rs")) && !allowlisted {
                let has_forbid = f
                    .tokens
                    .iter()
                    .zip(f.in_attr.iter())
                    .any(|(t, &ia)| ia && t.kind == TokKind::Ident && t.text == "unsafe_code")
                    && f.tokens
                        .iter()
                        .zip(f.in_attr.iter())
                        .any(|(t, &ia)| ia && t.kind == TokKind::Ident && t.text == "forbid");
                if !has_forbid {
                    out.push(Diagnostic::new(
                        &f.rel,
                        1,
                        self.name(),
                        "crate root is missing `#![forbid(unsafe_code)]` — add it so the \
                         compiler enforces the unsafe-free invariant",
                    ));
                }
            }
        }
    }
}
