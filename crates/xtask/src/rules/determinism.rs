//! `determinism`: nondeterminism sources must not reach the
//! deterministic core.
//!
//! The simulation's whole verification story — golden digests, 32-seed
//! replay suites, shard-count invariance — rests on core behaviour
//! being a pure function of (topology, seed). This rule finds the
//! ambient-state sources that silently break that contract:
//!
//! * hash-ordered iteration (`HashMap`/`HashSet` iteration order varies
//!   per process since Rust randomizes SipHash keys),
//! * wall-clock reads (`std::time::Instant`, `SystemTime`),
//! * process environment reads (`std::env`),
//! * thread creation outside the sync nucleus (`thread::spawn`,
//!   `thread::scope`, builder `.spawn(..)`),
//! * ambient RNG (`thread_rng`, `from_entropy`, `OsRng`) that bypasses
//!   the engine-owned seeded stream behind `Context::rng()`.
//!
//! Findings come in two flavours. A source *inside* a core crate
//! ([`crate::rules::CORE_CRATES`]) is flagged at its own site. A source
//! in a non-core fn is flagged only when the call graph shows a path
//! from a core fn down to it — the diagnostic carries the caller chain
//! (`sim::Engine::run -> bench::stamp`), which is what a per-file token
//! scan structurally cannot see.

use crate::lexer::TokKind;
use crate::rules::{Diagnostic, LintCtx, Rule};
use crate::source::SourceFile;
use std::collections::BTreeSet;

/// Methods whose receiver order is the container's iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
    "retain_mut",
];

/// One detected nondeterminism source.
struct SourceSite {
    /// Code index of the offending token.
    code_idx: usize,
    /// 1-based line.
    line: u32,
    /// Human-readable description of the source.
    what: String,
}

/// See the module docs.
pub struct Determinism;

impl Rule for Determinism {
    fn name(&self) -> &'static str {
        "determinism"
    }

    fn describe(&self) -> &'static str {
        "no hash-ordered iteration, wall-clock, env, thread, or ambient-RNG source in (or reachable from) the deterministic core"
    }

    fn check(&self, ctx: &LintCtx<'_>, out: &mut Vec<Diagnostic>) {
        for (fi, f) in ctx.files.iter().enumerate() {
            if crate::symbols::is_test_location(&f.rel) {
                continue;
            }
            let in_core = ctx.cfg.is_core_file(&f.rel);
            let exempt_thread = ctx.cfg.is_sync_module(&f.rel);
            let (taints, containers) = find_sources(f, exempt_thread);
            if in_core {
                // Direct findings: the source sits in the core itself.
                for s in containers.iter().chain(taints.iter()) {
                    out.push(Diagnostic::new(&f.rel, s.line, self.name(), s.what.clone()));
                }
                continue;
            }
            // Interprocedural: flag the source only if a core fn can
            // reach the fn containing it.
            for s in &taints {
                let Some(target) = ctx.symbols.enclosing_fn(fi, s.code_idx) else {
                    continue;
                };
                if ctx.symbols.fns[target].is_test {
                    continue;
                }
                let chain = ctx.graph.chain_to(ctx.symbols, target, |id| {
                    id != target
                        && !ctx.symbols.fns[id].is_test
                        && ctx
                            .cfg
                            .is_core_file(&ctx.files[ctx.symbols.fns[id].file].rel)
                });
                if let Some(chain) = chain {
                    let labels: Vec<String> = chain
                        .iter()
                        .map(|&id| ctx.symbols.fns[id].label())
                        .collect();
                    out.push(
                        Diagnostic::new(
                            &f.rel,
                            s.line,
                            self.name(),
                            format!("{} — and the deterministic core can reach it", s.what),
                        )
                        .with_chain(labels),
                    );
                }
            }
        }
    }
}

/// Scan one file for nondeterminism sources. Returns `(taints,
/// containers)`: taints participate in interprocedural reachability;
/// container-type sites (a `HashMap`/`HashSet` ident at all) are only
/// reported when the file itself is core — owning one in the core is
/// already a latent iteration hazard.
fn find_sources(f: &SourceFile, exempt_thread: bool) -> (Vec<SourceSite>, Vec<SourceSite>) {
    let hash_names = hash_bound_names(f);
    let mut taints = Vec::new();
    let mut containers = Vec::new();
    let n = f.code.len();
    for i in 0..n {
        if f.in_attribute(i) {
            continue;
        }
        let t = f.tok(i);
        if t.kind != TokKind::Ident || f.is_test_line(t.line) {
            continue;
        }
        let prev = (i > 0).then(|| f.tok(i - 1).text.as_str());
        let next = (i + 1 < n).then(|| f.tok(i + 1).text.as_str());
        match t.text.as_str() {
            "HashMap" | "HashSet" if prev != Some("fn") => {
                containers.push(SourceSite {
                    code_idx: i,
                    line: t.line,
                    what: format!(
                        "`{}` in the deterministic core — iteration order varies per process; \
                         use BTreeMap/BTreeSet, LinearMap, or a sorted Vec",
                        t.text
                    ),
                });
            }
            m if ITER_METHODS.contains(&m)
                && prev == Some(".")
                && next == Some("(")
                && i >= 2
                && f.tok(i - 2).kind == TokKind::Ident
                && hash_names.contains(&f.tok(i - 2).text) =>
            {
                taints.push(SourceSite {
                    code_idx: i,
                    line: t.line,
                    what: format!(
                        "iteration over hash-ordered `{}` is nondeterministic — \
                         use BTreeMap/BTreeSet or sort before iterating",
                        f.tok(i - 2).text
                    ),
                });
            }
            "for" => {
                if let Some(site) = for_loop_over_hash(f, i, &hash_names) {
                    taints.push(site);
                }
            }
            "Instant" | "SystemTime" if prev != Some("fn") => {
                taints.push(SourceSite {
                    code_idx: i,
                    line: t.line,
                    what: format!(
                        "`{}` reads wall-clock time — core behaviour must be a function of \
                         SimTime (and the seed) only",
                        t.text
                    ),
                });
            }
            "env" if next == Some(":") && i >= 3 && f.tok(i - 3).text == "std" => {
                taints.push(SourceSite {
                    code_idx: i,
                    line: t.line,
                    what: "`std::env` reads ambient process state — thread configuration \
                           through SimConfig instead"
                        .to_string(),
                });
            }
            "spawn" | "scope"
                if !exempt_thread
                    && next == Some("(")
                    && ((i >= 3 && f.tok(i - 3).text == "thread") || prev == Some(".")) =>
            {
                // `thread::spawn` / `thread::scope` / builder `.spawn(`.
                // `.scope(` alone is too generic to claim.
                if t.text == "scope"
                    && prev == Some(".")
                    && !(i >= 3 && f.tok(i - 3).text == "thread")
                {
                    continue;
                }
                taints.push(SourceSite {
                    code_idx: i,
                    line: t.line,
                    what: format!(
                        "`{}` creates threads outside sim/sync.rs — scheduling order would \
                         leak into results; all parallelism goes through the conservative \
                         window protocol",
                        t.text
                    ),
                });
            }
            "thread_rng" | "from_entropy" | "OsRng" if prev != Some("fn") => {
                taints.push(SourceSite {
                    code_idx: i,
                    line: t.line,
                    what: format!(
                        "`{}` is ambient (entropy-seeded) RNG — draw through the \
                         engine-owned seeded stream (`Context::rng()`) so runs replay \
                         by seed",
                        t.text
                    ),
                });
            }
            _ => {}
        }
    }
    (taints, containers)
}

/// Names bound to a `HashMap`/`HashSet` anywhere in the file: struct
/// fields and let-bindings with an explicit type annotation
/// (`x: HashMap<..>`), plus `let x = HashMap::new()`-style inits.
fn hash_bound_names(f: &SourceFile) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..f.code.len() {
        let t = f.tok(i);
        if t.kind != TokKind::Ident || !matches!(t.text.as_str(), "HashMap" | "HashSet") {
            continue;
        }
        // Walk back over a `std::collections::` style path prefix.
        let mut j = i;
        while j >= 3
            && f.tok(j - 1).text == ":"
            && f.tok(j - 2).text == ":"
            && f.tok(j - 3).kind == TokKind::Ident
        {
            j -= 3;
        }
        // Skip reference/mutability sigils before the path.
        let mut p = j;
        while p > 0 && matches!(f.tok(p - 1).text.as_str(), "&" | "mut") {
            p -= 1;
        }
        if p < 2 {
            continue;
        }
        let sep = f.tok(p - 1);
        let cand = f.tok(p - 2);
        let is_single_colon = sep.text == ":" && (p < 3 || f.tok(p - 3).text != ":");
        if (is_single_colon || sep.text == "=") && cand.kind == TokKind::Ident {
            names.insert(cand.text.clone());
        }
    }
    names
}

/// `for pat in <expr mentioning a hash-bound name> {` — report the
/// mention. Bounded lookahead; stops at the loop's opening brace.
fn for_loop_over_hash(
    f: &SourceFile,
    for_idx: usize,
    hash_names: &BTreeSet<String>,
) -> Option<SourceSite> {
    let n = f.code.len();
    let mut seen_in = false;
    for j in for_idx + 1..(for_idx + 96).min(n) {
        let t = f.tok(j);
        match t.text.as_str() {
            "{" if seen_in => return None,
            "in" if t.kind == TokKind::Ident => seen_in = true,
            _ => {
                if seen_in && t.kind == TokKind::Ident && hash_names.contains(&t.text) {
                    return Some(SourceSite {
                        code_idx: j,
                        line: t.line,
                        what: format!(
                            "iteration over hash-ordered `{}` is nondeterministic — \
                             use BTreeMap/BTreeSet or sort before iterating",
                            t.text
                        ),
                    });
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_names_from_fields_and_lets() {
        let f = SourceFile::analyze(
            "crates/sim/src/x.rs".into(),
            "struct S { table: std::collections::HashMap<u8, u8> }\n\
             fn f() { let seen = HashSet::new(); let v: Vec<u8> = Vec::new(); }\n",
        );
        let names = hash_bound_names(&f);
        assert!(names.contains("table"));
        assert!(names.contains("seen"));
        assert!(!names.contains("v"));
    }

    #[test]
    fn iteration_sites_detected() {
        let f = SourceFile::analyze(
            "crates/sim/src/x.rs".into(),
            "struct S { m: HashMap<u8, u8> }\n\
             impl S { fn go(&self) { for k in self.m.keys() {} } }\n",
        );
        let (taints, containers) = find_sources(&f, false);
        assert!(!containers.is_empty());
        assert!(taints.iter().any(|s| s.what.contains("`m`")));
    }

    #[test]
    fn btree_iteration_is_clean() {
        let f = SourceFile::analyze(
            "crates/sim/src/x.rs".into(),
            "use std::collections::BTreeMap;\n\
             fn go(m: &BTreeMap<u8, u8>) { for k in m.keys() {} }\n",
        );
        let (taints, containers) = find_sources(&f, false);
        assert!(taints.is_empty());
        assert!(containers.is_empty());
    }

    #[test]
    fn clock_env_thread_rng_sources() {
        let f = SourceFile::analyze(
            "crates/bench/src/x.rs".into(),
            "fn a() { let t = std::time::Instant::now(); }\n\
             fn b() { let p = std::env::var(\"X\"); }\n\
             fn c() { std::thread::spawn(|| {}); }\n\
             fn d() { let r = rand::thread_rng(); }\n",
        );
        let (taints, _) = find_sources(&f, false);
        assert_eq!(taints.len(), 4);
    }

    #[test]
    fn sync_module_thread_use_is_exempt() {
        let f = SourceFile::analyze(
            "crates/sim/src/sync.rs".into(),
            "fn run() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n",
        );
        let (taints, _) = find_sources(&f, true);
        assert!(
            taints.is_empty(),
            "{:?}",
            taints.iter().map(|s| &s.what).collect::<Vec<_>>()
        );
    }
}
