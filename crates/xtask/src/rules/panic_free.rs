//! `panic-free-dataplane`: the per-hop forwarding path must not be able
//! to panic. A `panic!` in packet-carried-state handling is an
//! architecture violation, not a style nit — a router must survive
//! arbitrary malformed forwarding state gracefully (cf. Slick Packets),
//! and Sirpent's O(1) switch decision leaves no room for "can't happen"
//! branches that abort the process.

use crate::lexer::TokKind;
use crate::rules::{Diagnostic, LintCtx, Rule, NON_INDEX_KEYWORDS};
use crate::source::SourceFile;

/// Macros whose expansion is an unconditional (or assertion) panic.
/// `debug_assert*` is deliberately not listed: it compiles out of
/// release builds, so it documents an invariant without putting a panic
/// on the shipped forwarding path.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "todo",
    "unimplemented",
    "unreachable",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// See the module docs.
pub struct PanicFree;

impl Rule for PanicFree {
    fn name(&self) -> &'static str {
        "panic-free-dataplane"
    }

    fn describe(&self) -> &'static str {
        "no unwrap/expect/panic!/todo!/slice-indexing in data-plane modules outside #[cfg(test)]"
    }

    fn check(&self, ctx: &LintCtx<'_>, out: &mut Vec<Diagnostic>) {
        for f in ctx.files {
            if !ctx.cfg.is_dataplane(&f.rel) {
                continue;
            }
            self.check_file(f, out);
        }
    }
}

impl PanicFree {
    fn check_file(&self, f: &SourceFile, out: &mut Vec<Diagnostic>) {
        for i in 0..f.code.len() {
            if f.in_attribute(i) {
                continue;
            }
            let t = f.tok(i);
            if f.is_test_line(t.line) {
                continue;
            }
            match t.kind {
                TokKind::Ident if t.text == "unwrap" || t.text == "expect" => {
                    let prev_dot = i > 0 && f.tok(i - 1).text == ".";
                    let next_paren = i + 1 < f.code.len() && f.tok(i + 1).text == "(";
                    if prev_dot && next_paren {
                        out.push(Diagnostic::new(
                            &f.rel,
                            t.line,
                            self.name(),
                            format!(
                                "`.{}(..)` can panic on the forwarding path — return a typed \
                                 error routed through the DropReason taxonomy instead",
                                t.text
                            ),
                        ));
                    }
                }
                TokKind::Ident
                    if PANIC_MACROS.contains(&t.text.as_str())
                        && i + 1 < f.code.len()
                        && f.tok(i + 1).text == "!" =>
                {
                    out.push(Diagnostic::new(
                        &f.rel,
                        t.line,
                        self.name(),
                        format!(
                            "`{}!` aborts the data plane — handle the state as a drop \
                             (DropReason) or restructure so it cannot occur",
                            t.text
                        ),
                    ));
                }
                TokKind::Punct if t.text == "[" && i > 0 => {
                    let p = f.tok(i - 1);
                    let is_index_base = match p.kind {
                        TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&p.text.as_str()),
                        TokKind::Punct => p.text == ")" || p.text == "]" || p.text == "?",
                        _ => false,
                    };
                    if is_index_base {
                        out.push(Diagnostic::new(
                            &f.rel,
                            t.line,
                            self.name(),
                            "indexing (`x[..]`) can panic — use `.get(..)`, pattern-match, or \
                             carry the element out of the scan that validated the index",
                        ));
                    }
                }
                _ => {}
            }
        }
    }
}
