//! `sync-discipline`: the sharded engine's synchronization invariants.
//!
//! Three checks (DESIGN.md §12.3):
//!
//! * **Primitive containment** — `std::sync` primitive construction
//!   (`Mutex::new`, `Barrier::new`, atomics, mpsc channels) is allowed
//!   only in the sync nucleus ([`crate::rules::SYNC_MODULE`]). Scattered
//!   ad-hoc synchronization is how conservative-window protocols rot.
//! * **No guard across a barrier wait** — inside the sync module, a
//!   `MutexGuard` obtained by `let g = ….lock()…` must not be live at a
//!   `.wait(..)` call. A shard parked on the barrier while holding a
//!   mailbox lock deadlocks every peer that needs that mailbox before
//!   it can reach the same barrier.
//! * **Mailbox lock ordering** — when mailbox locks nest, the inner
//!   index must be strictly greater than the outer (ascending-order
//!   acquisition is the classic deadlock-freedom discipline). Nested
//!   mailbox locks whose order the lexer cannot prove are flagged too:
//!   provability is part of the invariant.
//!
//! The guard-liveness model is lexical: a guard lives from its `let`
//! to the close of the enclosing block, or to an explicit `drop(g)`.
//! That over-approximates (an early `return` ends liveness too) but
//! never misses a hold-across-wait that is textually present.

use crate::lexer::TokKind;
use crate::rules::{Diagnostic, LintCtx, Rule};
use crate::source::SourceFile;

/// `std::sync` types whose `::new` is containment-checked.
const PRIMITIVES: &[&str] = &[
    "Mutex",
    "RwLock",
    "Condvar",
    "Barrier",
    "Once",
    "OnceLock",
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
];

/// A lexically-live lock guard.
struct Guard {
    /// Binding names (tuple patterns bind several).
    names: Vec<String>,
    /// Brace depth at the `let`; retired when the block closes.
    depth: i64,
    /// Whether the locked expression mentions a mailbox.
    is_mailbox: bool,
    /// Literal mailbox index when one is visible (`mailboxes[3]`,
    /// `mailboxes.get(3)`).
    index: Option<u64>,
}

/// See the module docs.
pub struct SyncDiscipline;

impl Rule for SyncDiscipline {
    fn name(&self) -> &'static str {
        "sync-discipline"
    }

    fn describe(&self) -> &'static str {
        "std::sync construction only in sim/sync.rs; no lock guard live across Barrier::wait; mailbox locks acquired in ascending index order"
    }

    fn check(&self, ctx: &LintCtx<'_>, out: &mut Vec<Diagnostic>) {
        for f in ctx.files {
            if crate::symbols::is_test_location(&f.rel) {
                continue;
            }
            if ctx.cfg.is_sync_module(&f.rel) {
                self.check_guard_liveness(f, out);
            } else {
                self.check_containment(f, out);
            }
        }
    }
}

impl SyncDiscipline {
    /// Primitive-construction ban outside the sync module.
    fn check_containment(&self, f: &SourceFile, out: &mut Vec<Diagnostic>) {
        let n = f.code.len();
        for i in 0..n {
            if f.in_attribute(i) {
                continue;
            }
            let t = f.tok(i);
            if t.kind != TokKind::Ident || f.is_test_line(t.line) {
                continue;
            }
            let qualifies_new = |i: usize| -> bool {
                i + 3 < n
                    && f.tok(i + 1).text == ":"
                    && f.tok(i + 2).text == ":"
                    && f.tok(i + 3).text == "new"
            };
            if PRIMITIVES.contains(&t.text.as_str()) && qualifies_new(i) {
                out.push(Diagnostic::new(
                    &f.rel,
                    t.line,
                    self.name(),
                    format!(
                        "`{}::new` outside sim/sync.rs — all std::sync primitives live in \
                         the sync nucleus so the window protocol stays auditable in one file",
                        t.text
                    ),
                ));
            }
            if matches!(t.text.as_str(), "channel" | "sync_channel")
                && i >= 3
                && f.tok(i - 3).text == "mpsc"
            {
                out.push(Diagnostic::new(
                    &f.rel,
                    t.line,
                    self.name(),
                    "`mpsc` channels outside sim/sync.rs — cross-shard transfer goes \
                     through the mailbox protocol",
                ));
            }
        }
    }

    /// Guard liveness + mailbox ordering inside the sync module.
    fn check_guard_liveness(&self, f: &SourceFile, out: &mut Vec<Diagnostic>) {
        let n = f.code.len();
        let mut depth: i64 = 0;
        let mut guards: Vec<Guard> = Vec::new();
        for i in 0..n {
            if f.in_attribute(i) {
                continue;
            }
            let t = f.tok(i);
            // Brace depth must track through test lines too.
            match t.text.as_str() {
                "{" => {
                    depth += 1;
                    continue;
                }
                "}" => {
                    depth -= 1;
                    guards.retain(|g| g.depth <= depth);
                    continue;
                }
                _ => {}
            }
            if t.kind != TokKind::Ident || f.is_test_line(t.line) {
                continue;
            }
            match t.text.as_str() {
                "let" => {
                    if let Some(g) = parse_guard_let(f, i, depth) {
                        if g.is_mailbox {
                            if let Some(outer) = guards.iter().rev().find(|o| o.is_mailbox) {
                                let ordered = matches!(
                                    (outer.index, g.index),
                                    (Some(a), Some(b)) if b > a
                                );
                                if !ordered {
                                    out.push(Diagnostic::new(
                                        &f.rel,
                                        t.line,
                                        self.name(),
                                        "nested mailbox locks must be acquired in provably \
                                         ascending index order (inner literal index > outer) — \
                                         anything else risks AB/BA deadlock between shards",
                                    ));
                                }
                            }
                        }
                        guards.push(g);
                    }
                }
                "wait"
                    if i > 0
                        && f.tok(i - 1).text == "."
                        && i + 1 < n
                        && f.tok(i + 1).text == "("
                        && !guards.is_empty() =>
                {
                    let held: Vec<&str> = guards
                        .iter()
                        .flat_map(|g| g.names.iter().map(String::as_str))
                        .collect();
                    out.push(Diagnostic::new(
                        &f.rel,
                        t.line,
                        self.name(),
                        format!(
                            "`.wait(..)` while lock guard `{}` is live — a shard parked \
                             on the barrier holding a lock deadlocks every peer that \
                             needs it; drop the guard before synchronizing",
                            held.join("`, `")
                        ),
                    ));
                }
                "drop" if i + 2 < n && f.tok(i + 1).text == "(" => {
                    let name = f.tok(i + 2).text.clone();
                    guards.retain(|g| !g.names.contains(&name));
                }
                _ => {}
            }
        }
    }
}

/// Parse the `let` at code index `i`. Returns a [`Guard`] when its
/// initializer contains a `.lock(..)` call. The scan is a bounded
/// lookahead only — the main loop keeps consuming the same tokens, so
/// brace accounting stays exact.
fn parse_guard_let(f: &SourceFile, i: usize, depth: i64) -> Option<Guard> {
    let n = f.code.len();
    // Binding names: idents between `let` and the first top-level `=`,
    // before any type-annotation `:`.
    let mut names = Vec::new();
    let mut pd: i64 = 0;
    let mut seen_colon = false;
    let mut eq = None;
    for j in i + 1..(i + 64).min(n) {
        let t = f.tok(j);
        match t.text.as_str() {
            "(" | "[" => pd += 1,
            ")" | "]" => pd -= 1,
            ":" if pd == 0 => seen_colon = true,
            "=" if pd == 0 => {
                // `==`, `>=`, `<=` cannot appear before a let's `=`.
                eq = Some(j);
                break;
            }
            ";" | "{" if pd == 0 => break,
            _ => {
                if t.kind == TokKind::Ident
                    && !seen_colon
                    && !matches!(t.text.as_str(), "mut" | "ref" | "_")
                {
                    names.push(t.text.clone());
                }
            }
        }
    }
    let eq = eq?;
    // Initializer: to the `;` at zero depth (or the `{` opening an
    // `if let`/`while let` body).
    let cond_let = i > 0 && matches!(f.tok(i - 1).text.as_str(), "if" | "while");
    let mut bd: i64 = 0;
    let mut pd: i64 = 0;
    let mut has_lock = false;
    let mut is_mailbox = false;
    let mut index: Option<u64> = None;
    let mut j = eq + 1;
    while j < n {
        let t = f.tok(j);
        match t.text.as_str() {
            "(" | "[" => pd += 1,
            ")" | "]" => pd -= 1,
            "{" => {
                if bd == 0 && pd == 0 && cond_let {
                    break;
                }
                bd += 1;
            }
            "}" => bd -= 1,
            ";" if bd == 0 && pd == 0 => break,
            "lock" if t.kind == TokKind::Ident => {
                if j > 0 && f.tok(j - 1).text == "." && j + 1 < n && f.tok(j + 1).text == "(" {
                    has_lock = true;
                }
            }
            _ => {
                if t.kind == TokKind::Ident && t.text.contains("mailbox") {
                    is_mailbox = true;
                    // `mailboxes[3]` / `mailboxes.get(3)`.
                    if j + 2 < n && f.tok(j + 1).text == "[" && f.tok(j + 2).kind == TokKind::Num {
                        index = f.tok(j + 2).text.parse().ok();
                    } else if j + 3 < n
                        && f.tok(j + 1).text == "."
                        && f.tok(j + 2).text == "get"
                        && f.tok(j + 3).text == "("
                        && j + 4 < n
                        && f.tok(j + 4).kind == TokKind::Num
                    {
                        index = f.tok(j + 4).text.parse().ok();
                    }
                }
            }
        }
        j += 1;
    }
    if !has_lock || names.is_empty() {
        return None;
    }
    Some(Guard {
        names,
        depth,
        is_mailbox,
        index,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Config;
    use std::collections::BTreeMap;

    fn run_on(rel: &str, src: &str) -> Vec<Diagnostic> {
        let files = vec![SourceFile::analyze(rel.to_string(), src)];
        let sym = crate::symbols::SymbolTable::build(std::path::Path::new("/nonexistent"), &files);
        let graph = crate::callgraph::CallGraph::build(&files, &sym);
        let cfg = Config {
            fixture_scopes: true,
            ..Config::default()
        };
        let shims = BTreeMap::new();
        let ctx = LintCtx {
            files: &files,
            cfg: &cfg,
            shims: &shims,
            symbols: &sym,
            graph: &graph,
        };
        let mut out = Vec::new();
        SyncDiscipline.check(&ctx, &mut out);
        out
    }

    #[test]
    fn guard_across_wait_is_flagged() {
        let d = run_on(
            "bad_sync.rs",
            "fn shard(b: &std::sync::Barrier, m: &std::sync::Mutex<u8>) {\n\
             \x20 let g = m.lock().unwrap();\n\
             \x20 b.wait();\n\
             }\n",
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].msg.contains("`g`"));
    }

    #[test]
    fn dropped_guard_before_wait_is_clean() {
        let d = run_on(
            "clean_sync.rs",
            "fn shard(b: &std::sync::Barrier, m: &std::sync::Mutex<u8>) {\n\
             \x20 let g = m.lock().unwrap();\n\
             \x20 drop(g);\n\
             \x20 b.wait();\n\
             }\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn scoped_guard_before_wait_is_clean() {
        let d = run_on(
            "clean_sync.rs",
            "fn shard(b: &std::sync::Barrier, m: &std::sync::Mutex<u8>) {\n\
             \x20 { let g = m.lock().unwrap(); *g; }\n\
             \x20 b.wait();\n\
             }\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn descending_mailbox_locks_flagged() {
        let d = run_on(
            "bad_sync.rs",
            "fn xfer(mailboxes: &[std::sync::Mutex<u8>]) {\n\
             \x20 let a = mailboxes[3].lock().unwrap();\n\
             \x20 let b = mailboxes[1].lock().unwrap();\n\
             }\n",
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].msg.contains("ascending"));
    }

    #[test]
    fn ascending_mailbox_locks_clean() {
        let d = run_on(
            "clean_sync.rs",
            "fn xfer(mailboxes: &[std::sync::Mutex<u8>]) {\n\
             \x20 let a = mailboxes[1].lock().unwrap();\n\
             \x20 let b = mailboxes[3].lock().unwrap();\n\
             }\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn construction_outside_sync_module_flagged() {
        let d = run_on(
            "other.rs",
            "fn f() { let m = std::sync::Mutex::new(0u8); }\n",
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].msg.contains("Mutex::new"));
    }
}
