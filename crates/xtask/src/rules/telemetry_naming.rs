//! `telemetry-naming`: the static metric-name discipline. Every metric
//! name is a snake_case string constant registered exactly once in the
//! telemetry crate's name registry (`crates/telemetry/src/names.rs`),
//! and every `publish_*` call site names its metric through such a
//! constant — never a raw string literal. A literal at a call site
//! bypasses the registry's collision and spelling guarantees; a
//! duplicate or non-snake_case constant corrupts the scrape namespace
//! at its source.

use std::collections::BTreeMap;

use crate::lexer::TokKind;
use crate::rules::{Diagnostic, LintCtx, Rule};
use crate::source::SourceFile;

/// See the module docs.
pub struct TelemetryNaming;

/// The workspace's metric-name registry module.
const REGISTRY_FILE: &str = "crates/telemetry/src/names.rs";

/// The [`sirpent_telemetry::Registry`] publication surface — the calls
/// whose first argument must be a registered constant.
const PUBLISH_FNS: &[&str] = &[
    "publish_counter",
    "publish_count",
    "publish_gauge",
    "publish_histogram",
];

impl Rule for TelemetryNaming {
    fn name(&self) -> &'static str {
        "telemetry-naming"
    }

    fn describe(&self) -> &'static str {
        "metric names are snake_case consts registered once; publish_* never takes a raw literal"
    }

    fn check(&self, ctx: &LintCtx<'_>, out: &mut Vec<Diagnostic>) {
        let mut seen: BTreeMap<String, (String, u32)> = BTreeMap::new();
        for f in ctx.files {
            let is_registry = ctx.cfg.all_dataplane || f.rel == REGISTRY_FILE;
            if is_registry {
                self.check_registry(f, &mut seen, out);
            }
            self.check_call_sites(f, out);
        }
    }
}

impl TelemetryNaming {
    /// Audit `const NAME: &str = "value";` items in a registry file:
    /// the value must be snake_case and globally unique.
    fn check_registry(
        &self,
        f: &SourceFile,
        seen: &mut BTreeMap<String, (String, u32)>,
        out: &mut Vec<Diagnostic>,
    ) {
        let mut i = 0usize;
        while i < f.code.len() {
            let t = f.tok(i);
            if t.text != "const" || f.is_test_line(t.line) || f.in_attribute(i) {
                i += 1;
                continue;
            }
            // const <IDENT> : … = <Str> ; — only &str-typed constants
            // (the name registry's shape) are audited.
            let Some(name_tok) = f.code.get(i + 1).map(|_| f.tok(i + 1)) else {
                break;
            };
            if name_tok.kind != TokKind::Ident || name_tok.text == "fn" {
                i += 1;
                continue;
            }
            let mut j = i + 2;
            let mut is_str_type = false;
            let mut value: Option<(String, u32)> = None;
            while j < f.code.len() && f.tok(j).text != ";" {
                let tj = f.tok(j);
                if tj.text == "str" {
                    is_str_type = true;
                }
                if tj.kind == TokKind::Str && value.is_none() {
                    value = Some((tj.text.clone(), tj.line));
                }
                j += 1;
            }
            if let (true, Some((raw, line))) = (is_str_type, value) {
                let name = raw.trim_matches('"');
                if !is_snake_case(name) {
                    out.push(Diagnostic::new(
                        &f.rel,
                        line,
                        self.name(),
                        format!(
                            "metric name {raw} is not snake_case — scrape keys are \
                             `[a-z][a-z0-9_]*` by contract"
                        ),
                    ));
                }
                if let Some((first_file, first_line)) =
                    seen.insert(name.to_string(), (f.rel.clone(), line))
                {
                    out.push(Diagnostic::new(
                        &f.rel,
                        line,
                        self.name(),
                        format!(
                            "metric name {raw} is already registered at \
                             {first_file}:{first_line} — each name is registered exactly once"
                        ),
                    ));
                }
            }
            i = j + 1;
        }
    }

    /// Flag `publish_*("literal", …)` call sites: the first argument
    /// must be a registered constant, not an inline string.
    fn check_call_sites(&self, f: &SourceFile, out: &mut Vec<Diagnostic>) {
        for i in 0..f.code.len().saturating_sub(2) {
            let t = f.tok(i);
            if t.kind != TokKind::Ident
                || !PUBLISH_FNS.contains(&t.text.as_str())
                || f.is_test_line(t.line)
                || f.in_attribute(i)
            {
                continue;
            }
            if f.tok(i + 1).text == "(" && f.tok(i + 2).kind == TokKind::Str {
                out.push(Diagnostic::new(
                    &f.rel,
                    t.line,
                    self.name(),
                    format!(
                        "`{}` takes a raw string literal — name the metric via a \
                         registered constant (telemetry `names::…`) so every scrape key \
                         is declared exactly once",
                        t.text
                    ),
                ));
            }
        }
    }
}

/// `[a-z][a-z0-9_]*` — the scrape-key grammar.
fn is_snake_case(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_lowercase())
        && chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}
