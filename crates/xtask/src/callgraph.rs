//! Over-approximate caller→callee graph over the workspace symbol
//! table.
//!
//! Edges are recovered from three call shapes (DESIGN.md §12.2):
//!
//! * **Bare calls** `f(..)` — resolved through the file's `use` map,
//!   then same-file free fns, then same-crate fns of that name.
//! * **Qualified calls** `a::b::f(..)` — the path head is resolved to a
//!   workspace crate (`sirpent_sim` → `sim`), to `Self`/`crate`/`super`
//!   (the caller's own crate), or to a known `impl` target type
//!   (`Type::method`); `std`/`core`/`alloc` heads are external and
//!   produce no edge.
//! * **Method calls** `.m(..)` — receiver types are unknown to a
//!   lexer-level analysis, so the edge goes to *every* workspace method
//!   named `m` defined in a crate the caller's crate depends on. This
//!   is the graph's deliberate over-approximation: it can invent edges,
//!   never miss one that name matching could see.
//!
//! Macro invocations (`name!(`) and calls into non-workspace code
//! produce no edges; the determinism rule's *source* detection covers
//! the std surfaces that matter (`std::time`, `std::env`,
//! `std::thread`, hash-container iteration, ambient RNG).

use std::collections::BTreeSet;

use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::symbols::SymbolTable;

/// The workspace call graph, indexed like `SymbolTable::fns`.
pub struct CallGraph {
    /// fn id → (callee fn id, 1-based call-site line), deduped.
    pub callees: Vec<Vec<(usize, u32)>>,
    /// fn id → caller fn ids, deduped.
    pub callers: Vec<Vec<usize>>,
}

/// Rust keywords that can precede `(` without the ident being a call.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "in", "as", "move", "else", "loop", "let", "fn",
    "where", "impl", "dyn", "mut", "ref", "break", "continue", "unsafe", "use", "pub", "crate",
];

impl CallGraph {
    /// Build the graph for the lint file set.
    pub fn build(files: &[SourceFile], sym: &SymbolTable) -> CallGraph {
        let n = sym.fns.len();
        let mut callees: Vec<BTreeSet<(usize, u32)>> = vec![BTreeSet::new(); n];
        for (caller_id, item) in sym.fns.iter().enumerate() {
            let Some((open, close)) = item.body else {
                continue;
            };
            let f = &files[item.file];
            for i in open + 1..close {
                if f.in_attribute(i) {
                    continue;
                }
                let t = f.tok(i);
                if t.kind != TokKind::Ident || i + 1 > close {
                    continue;
                }
                // A call: `ident (`; `ident !` is a macro — skip.
                if f.tok(i + 1).text != "(" {
                    continue;
                }
                if NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
                    continue;
                }
                let line = t.line;
                for callee in resolve(files, sym, caller_id, i) {
                    callees[caller_id].insert((callee, line));
                }
            }
        }
        let mut callers: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        for (caller, outs) in callees.iter().enumerate() {
            for (callee, _) in outs {
                callers[*callee].insert(caller);
            }
        }
        CallGraph {
            callees: callees
                .into_iter()
                .map(|s| s.into_iter().collect())
                .collect(),
            callers: callers
                .into_iter()
                .map(|s| s.into_iter().collect())
                .collect(),
        }
    }

    /// Shortest caller chain from any fn satisfying `is_root` down to
    /// `target`, as a list of fn ids `[root, .., target]`. BFS over the
    /// reverse edges; deterministic because adjacency lists are sorted.
    pub fn chain_to<F: Fn(usize) -> bool>(
        &self,
        sym: &SymbolTable,
        target: usize,
        is_root: F,
    ) -> Option<Vec<usize>> {
        let n = sym.fns.len();
        let mut prev: Vec<Option<usize>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[target] = true;
        queue.push_back(target);
        while let Some(cur) = queue.pop_front() {
            if is_root(cur) {
                // Walk back down to the target.
                let mut chain = vec![cur];
                let mut at = cur;
                while let Some(next) = prev[at] {
                    chain.push(next);
                    at = next;
                }
                return Some(chain);
            }
            for &c in &self.callers[cur] {
                if !seen[c] {
                    seen[c] = true;
                    prev[c] = Some(cur);
                    queue.push_back(c);
                }
            }
        }
        None
    }
}

/// Resolve the call whose name ident sits at code index `i` to a set of
/// candidate workspace fns.
fn resolve(files: &[SourceFile], sym: &SymbolTable, caller_id: usize, i: usize) -> Vec<usize> {
    let item = &sym.fns[caller_id];
    let f = &files[item.file];
    let name = f.tok(i).text.as_str();
    let Some(candidates) = sym.by_name.get(name) else {
        return Vec::new();
    };
    let viable = |id: &&usize| -> bool {
        let callee = &sym.fns[**id];
        !callee.is_test && sym.depends_on(&item.krate, &callee.krate)
    };

    let prev = (i > 0).then(|| f.tok(i - 1).text.as_str());
    // Method call `.name(` — every dependency-visible method of that
    // name (the documented over-approximation).
    if prev == Some(".") {
        return candidates
            .iter()
            .filter(viable)
            .filter(|&&id| sym.fns[id].impl_of.is_some())
            .copied()
            .collect();
    }
    // Qualified call `path::name(` — the lexer emits `::` as two `:`.
    if prev == Some(":") && i >= 2 && f.tok(i - 2).text == ":" {
        let path = collect_path(f, i);
        let Some(head) = path.first() else {
            return Vec::new();
        };
        let head = head.as_str();
        // External stdlib: no workspace edge.
        if matches!(head, "std" | "core" | "alloc") {
            return Vec::new();
        }
        // `Self::name` — methods of the caller's own impl target.
        if head == "Self" {
            return candidates
                .iter()
                .filter(viable)
                .filter(|&&id| sym.fns[id].impl_of == item.impl_of)
                .copied()
                .collect();
        }
        // `crate::`/`self::`/`super::` — same crate.
        if matches!(head, "crate" | "self" | "super") {
            return candidates
                .iter()
                .filter(viable)
                .filter(|&&id| sym.fns[id].krate == item.krate)
                .copied()
                .collect();
        }
        // Head names another workspace crate (`sirpent_sim::…`).
        if let Some(krate) = sym.pkg_idents.get(head) {
            return candidates
                .iter()
                .filter(viable)
                .filter(|&&id| &sym.fns[id].krate == krate)
                .copied()
                .collect();
        }
        // `Type::method` — the segment just before the fn name, which
        // also covers `module::Type::method`.
        let ty = path.last().map(String::as_str).unwrap_or(head);
        if sym.type_names.contains(ty) {
            return candidates
                .iter()
                .filter(viable)
                .filter(|&&id| sym.fns[id].impl_of.as_deref() == Some(ty))
                .copied()
                .collect();
        }
        // A CamelCase tail that is not a known workspace type is an
        // external type's associated fn (`Vec::new`,
        // `StdRng::seed_from_u64`) — no workspace edge.
        if ty.chars().next().is_some_and(|c| c.is_uppercase()) {
            return Vec::new();
        }
        // A use-mapped head (`use sirpent_sim::engine; engine::run()`).
        if let Some(full) = sym.uses[item.file].get(head) {
            if let Some(krate) = full.first().and_then(|h| sym.pkg_idents.get(h)) {
                return candidates
                    .iter()
                    .filter(viable)
                    .filter(|&&id| &sym.fns[id].krate == krate)
                    .copied()
                    .collect();
            }
            if full
                .first()
                .is_some_and(|h| matches!(h.as_str(), "crate" | "self" | "super"))
            {
                return candidates
                    .iter()
                    .filter(viable)
                    .filter(|&&id| sym.fns[id].krate == item.krate)
                    .copied()
                    .collect();
            }
            return Vec::new(); // use-mapped to std/external
        }
        // Module path we cannot pin down: stay within the caller's
        // crate (modules do not cross crates without a `use`).
        return candidates
            .iter()
            .filter(viable)
            .filter(|&&id| sym.fns[id].krate == item.krate)
            .copied()
            .collect();
    }
    // Bare call `name(` — use map first, then same file, then crate.
    if let Some(full) = sym.uses[item.file].get(name) {
        if let Some(krate) = full.first().and_then(|h| sym.pkg_idents.get(h)) {
            return candidates
                .iter()
                .filter(viable)
                .filter(|&&id| &sym.fns[id].krate == krate && sym.fns[id].impl_of.is_none())
                .copied()
                .collect();
        }
        if !full
            .first()
            .is_some_and(|h| matches!(h.as_str(), "crate" | "self" | "super"))
        {
            return Vec::new(); // imported from std/external
        }
    }
    let same_file: Vec<usize> = candidates
        .iter()
        .filter(viable)
        .filter(|&&id| sym.fns[id].file == item.file && sym.fns[id].impl_of.is_none())
        .copied()
        .collect();
    if !same_file.is_empty() {
        return same_file;
    }
    candidates
        .iter()
        .filter(viable)
        .filter(|&&id| sym.fns[id].krate == item.krate && sym.fns[id].impl_of.is_none())
        .copied()
        .collect()
}

/// Collect the `::`-separated path ending at the fn-name ident `i`,
/// walking backwards over `seg :: seg :: name`. Returns the segments
/// *before* the name, in source order.
fn collect_path(f: &SourceFile, i: usize) -> Vec<String> {
    let mut segs: Vec<String> = Vec::new();
    let mut j = i;
    while j >= 3 && f.tok(j - 1).text == ":" && f.tok(j - 2).text == ":" {
        let seg = f.tok(j - 3);
        // `<T as Trait>::f` or turbofish tails end the walk.
        if seg.kind != TokKind::Ident {
            break;
        }
        segs.push(seg.text.clone());
        j -= 3;
    }
    segs.reverse();
    segs
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn build(srcs: &[(&str, &str)]) -> (SymbolTable, CallGraph) {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(rel, src)| SourceFile::analyze(rel.to_string(), src))
            .collect();
        let sym = SymbolTable::build(Path::new("/nonexistent"), &files);
        let graph = CallGraph::build(&files, &sym);
        (sym, graph)
    }

    fn id(sym: &SymbolTable, name: &str) -> usize {
        sym.by_name[name][0]
    }

    #[test]
    fn bare_calls_link_same_file_then_crate() {
        let (sym, g) = build(&[
            (
                "crates/sim/src/a.rs",
                "pub fn top() { helper(); }\nfn helper() { crate::b::deep(); }\n",
            ),
            ("crates/sim/src/b.rs", "pub fn deep() {}\n"),
        ]);
        let top = id(&sym, "top");
        let helper = id(&sym, "helper");
        let deep = id(&sym, "deep");
        assert!(g.callees[top].iter().any(|&(c, _)| c == helper));
        assert!(g.callees[helper].iter().any(|&(c, _)| c == deep));
    }

    #[test]
    fn method_calls_overapproximate_by_name() {
        let (sym, g) = build(&[(
            "crates/sim/src/a.rs",
            "struct S;\nimpl S { fn poke(&self) {} }\nfn run(s: &S) { s.poke(); }\n",
        )]);
        let run = id(&sym, "run");
        let poke = id(&sym, "poke");
        assert!(g.callees[run].iter().any(|&(c, _)| c == poke));
    }

    #[test]
    fn std_paths_make_no_edges() {
        let (sym, g) = build(&[(
            "crates/sim/src/a.rs",
            "fn take() { let v: Vec<u8> = Vec::new(); std::mem::take(&mut ()); }\n",
        )]);
        // `take` must not call itself through `std::mem::take`.
        let take = id(&sym, "take");
        assert!(g.callees[take].is_empty());
    }

    #[test]
    fn type_qualified_calls_link_to_that_impl() {
        let (sym, g) = build(&[(
            "crates/sim/src/a.rs",
            "struct A;\nstruct B;\nimpl A { fn mk() {} }\nimpl B { fn mk() {} }\nfn go() { A::mk(); }\n",
        )]);
        let go = id(&sym, "go");
        assert_eq!(g.callees[go].len(), 1);
        let callee = g.callees[go][0].0;
        assert_eq!(sym.fns[callee].impl_of.as_deref(), Some("A"));
    }

    #[test]
    fn chain_walks_callers_to_root() {
        let (sym, g) = build(&[(
            "crates/sim/src/core.rs",
            "pub fn entry() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\n",
        )]);
        let entry = id(&sym, "entry");
        let leaf = id(&sym, "leaf");
        let chain = g
            .chain_to(&sym, leaf, |f| sym.fns[f].name == "entry")
            .expect("chain");
        assert_eq!(chain.first(), Some(&entry));
        assert_eq!(chain.last(), Some(&leaf));
        assert_eq!(chain.len(), 3);
    }

    #[test]
    fn test_fns_are_not_edge_targets() {
        let (sym, g) = build(&[(
            "crates/sim/src/a.rs",
            "pub fn live() { probe(); }\n#[cfg(test)]\nmod t { pub fn probe() {} }\nfn probe2() {}\n",
        )]);
        let live = id(&sym, "live");
        assert!(g.callees[live].is_empty(), "test fn must not be a target");
    }
}
