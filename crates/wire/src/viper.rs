//! The VIPER header segment — Figure 1 of the paper.
//!
//! ```text
//!  0                   1
//!  0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |PortInfoLength |PortTokenLength|
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |     Port      |Flags|Priority |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! >          Port Token           <
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! >          Port Info            <
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! ```
//!
//! The fixed-length portion comes first "to minimize the difficulty of
//! handling the packet header segment in cut-through switching hardware"
//! (§5): the switch learns both variable-field lengths and the output port
//! before the variable part has finished arriving. The smallest legal
//! segment is 32 bits (both variable fields empty).
//!
//! A length byte of 255 is an escape: the actual length is carried in the
//! 32 bits starting at the corresponding variable field, followed by that
//! many payload bytes (§5: "A value of 255 is reserved to indicate that
//! the actual length is larger than 254 octets").
//!
//! ## Alternate branches (Slick-Packets failover)
//!
//! A segment may additionally carry a compact fallback branch — an
//! alternate output port plus a splice index into the packet's recovery
//! segment list — so the router *adjacent* to a failed next hop can
//! divert the packet in one hop time instead of letting it die. The
//! branch is a two-byte suffix `[alt_port, splice]` that trails the
//! `portInfo` field and is **not** counted by either length byte, so the
//! fixed prologue and both variable fields keep their exact legacy
//! layout. Its presence is signalled by setting both the VNT and TRB
//! flag bits together — a combination that is contradictory as literal
//! flags ("another segment follows" + "portInfo is a tree spec") and was
//! never emitted, which makes a header with zero alternates byte-
//! identical to the pre-failover format. Parsing a marked segment
//! reports `vnt = tree = false` plus the decoded [`AltBranch`].

use crate::{Error, Result};

/// Size of the fixed-length prologue of every segment.
pub const FIXED_LEN: usize = 4;

/// Length-byte value that escapes to a 32-bit extended length.
pub const LEN_ESCAPE: u8 = 255;

/// The reserved "local delivery" port value (§5: "Reserving 0 as a special
/// port value meaning 'local', the effective number of ports per switch is
/// limited to 255").
pub const PORT_LOCAL: u8 = 0;

/// Length of the alternate-branch suffix (`[alt_port, splice]`) that
/// trails the `portInfo` field when the flags nibble carries the ALT
/// marker (see the [module docs](self)).
pub const ALT_SUFFIX_LEN: usize = 2;

/// Byte offsets of the fixed prologue fields.
mod field {
    pub const PORT_INFO_LEN: usize = 0;
    pub const PORT_TOKEN_LEN: usize = 1;
    pub const PORT: usize = 2;
    pub const FLAGS_PRIORITY: usize = 3;
}

/// Segment flags (§5). The paper names three; we assign them to the high
/// nibble of byte 3, leaving one reserved bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    /// VNT — *VIPER Next Type*: the `portInfo` field is void (or padding)
    /// and another VIPER header segment immediately follows this one.
    pub vnt: bool,
    /// DIB — *Drop If Blocked*: drop the packet rather than queueing it
    /// when the output port is busy.
    pub dib: bool,
    /// RPF — *Reverse Path Forwarding*: the packet is being returned using
    /// the route and tokens supplied in a previously received packet.
    pub rpf: bool,
    /// TRB — *Tree Branch*: this segment's `portInfo` carries a
    /// tree-structured multicast specification ("multiple header segments
    /// specified for a routing point, with each header segment causing a
    /// copy of the packet to be routed according to the port it
    /// specifies", §2 — the Blazenet-style mechanism). This
    /// reproduction's concretization assigns it the last flag bit.
    pub tree: bool,
}

impl Flags {
    const VNT_BIT: u8 = 0b1000;
    const DIB_BIT: u8 = 0b0100;
    const RPF_BIT: u8 = 0b0010;
    const TREE_BIT: u8 = 0b0001;
    /// The ALT-marker pattern: VNT and TRB set together signals an
    /// alternate-branch suffix, not the (contradictory) literal flags.
    pub(crate) const ALT_MARKER: u8 = Self::VNT_BIT | Self::TREE_BIT;

    /// Decode from the high nibble of the flags/priority byte.
    pub fn from_nibble(n: u8) -> Flags {
        Flags {
            vnt: n & Self::VNT_BIT != 0,
            dib: n & Self::DIB_BIT != 0,
            rpf: n & Self::RPF_BIT != 0,
            tree: n & Self::TREE_BIT != 0,
        }
    }

    /// Encode into the high nibble of the flags/priority byte.
    pub fn to_nibble(self) -> u8 {
        (if self.vnt { Self::VNT_BIT } else { 0 })
            | (if self.dib { Self::DIB_BIT } else { 0 })
            | (if self.rpf { Self::RPF_BIT } else { 0 })
            | (if self.tree { Self::TREE_BIT } else { 0 })
    }
}

/// A 4-bit VIPER priority.
///
/// §5: "Normal priority is 0 with 7 highest priority. Priorities 6 and 7
/// preempt the transmission of lower priority packets in mid-transmission
/// if necessary. Values with the high-order bit set represent lower
/// priorities, 0xF being the lowest priority."
///
/// The resulting total order, highest first, is
/// `7, 6, 5, 4, 3, 2, 1, 0, 8, 9, 10, 11, 12, 13, 14, 15`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Priority(u8);

impl Priority {
    /// Normal priority (0).
    pub const NORMAL: Priority = Priority(0);
    /// The highest priority (7). Preemptive.
    pub const HIGHEST: Priority = Priority(7);
    /// The lowest priority (0xF).
    pub const LOWEST: Priority = Priority(0xF);

    /// Construct from a raw 4-bit value. Values above 15 are masked.
    pub fn new(raw: u8) -> Priority {
        Priority(raw & 0x0F)
    }

    /// The raw 4-bit wire value.
    pub fn raw(self) -> u8 {
        self.0
    }

    /// A signed rank such that greater rank = more urgent:
    /// 0..=7 map to 0..=7; 8..=15 map to -1..=-8.
    pub fn rank(self) -> i8 {
        if self.0 < 8 {
            self.0 as i8
        } else {
            7 - self.0 as i8
        }
    }

    /// Whether this priority preempts in-flight lower-priority
    /// transmissions (values 6 and 7).
    pub fn is_preemptive(self) -> bool {
        self.0 == 6 || self.0 == 7
    }
}

impl PartialOrd for Priority {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Priority {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.rank().cmp(&other.rank())
    }
}

impl Default for Priority {
    fn default() -> Self {
        Priority::NORMAL
    }
}

/// A Slick-Packets-style fallback branch attached to a primary header
/// segment.
///
/// When the router owning the segment finds its primary next hop
/// unreachable (link down, or the peer router itself down), it diverts
/// the packet out `port` instead, re-headed with the recovery-list
/// suffix starting at index `splice` (up to and including the first
/// local-delivery segment at or after it).
///
/// On the *terminating* (port-0) segment of a route the branch is
/// overloaded as the recovery-list descriptor: `port` holds the number
/// of recovery segments that follow the route, and `splice` is 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AltBranch {
    /// Alternate output port to divert on (recovery-segment count on the
    /// terminating segment).
    pub port: u8,
    /// Splice index into the packet's recovery segment list.
    pub splice: u8,
}

/// A zero-copy view of a VIPER header segment at the *front* of a buffer.
///
/// The buffer may extend beyond the segment (and normally does — the rest
/// of the packet follows); [`Segment::total_len`] reports where the
/// segment ends.
#[derive(Debug, Clone)]
pub struct Segment<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Segment<T> {
    /// Wrap a buffer without validating it.
    pub fn new_unchecked(buffer: T) -> Segment<T> {
        Segment { buffer }
    }

    /// Wrap a buffer, validating that a complete segment is present.
    pub fn new_checked(buffer: T) -> Result<Segment<T>> {
        let seg = Segment::new_unchecked(buffer);
        seg.check_len()?;
        Ok(seg)
    }

    /// Validate that the buffer holds a complete segment: the fixed
    /// prologue plus both variable fields (resolving 255-escapes).
    pub fn check_len(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < FIXED_LEN {
            return Err(Error::Truncated);
        }
        let (_, end) = self.token_bounds()?;
        let (_, info_end) = self.info_bounds(end)?;
        let total = if self.has_alt() {
            info_end + ALT_SUFFIX_LEN
        } else {
            info_end
        };
        if total > data.len() {
            return Err(Error::Truncated);
        }
        Ok(())
    }

    /// Consume the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// The `portInfoLength` byte (may be the 255 escape).
    pub fn port_info_len_field(&self) -> u8 {
        self.buffer.as_ref()[field::PORT_INFO_LEN]
    }

    /// The `portTokenLength` byte (may be the 255 escape).
    pub fn port_token_len_field(&self) -> u8 {
        self.buffer.as_ref()[field::PORT_TOKEN_LEN]
    }

    /// The output-port identifier.
    pub fn port(&self) -> u8 {
        self.buffer.as_ref()[field::PORT]
    }

    /// The raw flags nibble, before ALT-marker normalization.
    fn flags_nibble(&self) -> u8 {
        self.buffer.as_ref()[field::FLAGS_PRIORITY] >> 4
    }

    /// Whether the flags nibble carries the ALT marker (an alternate-
    /// branch suffix follows the `portInfo` field).
    pub fn has_alt(&self) -> bool {
        self.flags_nibble() & Flags::ALT_MARKER == Flags::ALT_MARKER
    }

    /// The segment flags. For a marked segment the recycled VNT/TRB bits
    /// are reported as `false` — the marker is surfaced via
    /// [`Segment::alt`], never as literal flags, so flag-driven paths
    /// (tree decode, next-type chaining) cannot misfire on it.
    pub fn flags(&self) -> Flags {
        let mut f = Flags::from_nibble(self.flags_nibble());
        if self.has_alt() {
            f.vnt = false;
            f.tree = false;
        }
        f
    }

    /// The alternate branch, when the ALT marker is present. Call only
    /// on a validated segment.
    pub fn alt(&self) -> Option<AltBranch> {
        if !self.has_alt() {
            return None;
        }
        let (_, te) = self.token_bounds().expect("validated by check_len");
        let (_, ie) = self.info_bounds(te).expect("validated by check_len");
        let data = self.buffer.as_ref();
        Some(AltBranch {
            port: data[ie],
            splice: data[ie + 1],
        })
    }

    /// The segment priority.
    pub fn priority(&self) -> Priority {
        Priority::new(self.buffer.as_ref()[field::FLAGS_PRIORITY] & 0x0F)
    }

    /// Byte range of the port-token payload (start, end), resolving the
    /// 255-escape. `start` skips the extended-length word if present.
    fn token_bounds(&self) -> Result<(usize, usize)> {
        let data = self.buffer.as_ref();
        let lf = data[field::PORT_TOKEN_LEN];
        if lf == LEN_ESCAPE {
            if data.len() < FIXED_LEN + 4 {
                return Err(Error::BadExtendedLength);
            }
            let n = u32::from_be_bytes([
                data[FIXED_LEN],
                data[FIXED_LEN + 1],
                data[FIXED_LEN + 2],
                data[FIXED_LEN + 3],
            ]) as usize;
            if n < 255 {
                // The escape must only be used for lengths > 254.
                return Err(Error::BadExtendedLength);
            }
            Ok((FIXED_LEN + 4, FIXED_LEN + 4 + n))
        } else {
            Ok((FIXED_LEN, FIXED_LEN + lf as usize))
        }
    }

    /// Byte range of the port-info payload given the end of the token
    /// region.
    fn info_bounds(&self, after_token: usize) -> Result<(usize, usize)> {
        let data = self.buffer.as_ref();
        let lf = data[field::PORT_INFO_LEN];
        if lf == LEN_ESCAPE {
            if data.len() < after_token + 4 {
                return Err(Error::BadExtendedLength);
            }
            let n = u32::from_be_bytes([
                data[after_token],
                data[after_token + 1],
                data[after_token + 2],
                data[after_token + 3],
            ]) as usize;
            if n < 255 {
                return Err(Error::BadExtendedLength);
            }
            Ok((after_token + 4, after_token + 4 + n))
        } else {
            Ok((after_token, after_token + lf as usize))
        }
    }

    /// The port-token bytes (empty slice when absent; a zero
    /// `portTokenLength` means "no token", §5).
    pub fn port_token(&self) -> &[u8] {
        let (s, e) = self.token_bounds().expect("validated by check_len");
        &self.buffer.as_ref()[s..e]
    }

    /// The network-specific port-info bytes.
    pub fn port_info(&self) -> &[u8] {
        let (_, te) = self.token_bounds().expect("validated by check_len");
        let (s, e) = self.info_bounds(te).expect("validated by check_len");
        &self.buffer.as_ref()[s..e]
    }

    /// All field offsets of a validated segment in one pass, relative to
    /// the segment start: `(token_start, token_end, info_start, info_end)`.
    /// `info_end` is also the total encoded length. Used by the zero-copy
    /// [`crate::buf::SegmentView`] to record absolute offsets instead of
    /// copying the variable fields out.
    pub(crate) fn field_offsets(&self) -> Result<(usize, usize, usize, usize)> {
        let (ts, te) = self.token_bounds()?;
        let (is_, ie) = self.info_bounds(te)?;
        Ok((ts, te, is_, ie))
    }

    /// Total encoded length of this segment, including the fixed prologue,
    /// any extended-length words, and the alternate-branch suffix when the
    /// ALT marker is present.
    pub fn total_len(&self) -> usize {
        let (_, te) = self.token_bounds().expect("validated by check_len");
        let (_, ie) = self.info_bounds(te).expect("validated by check_len");
        if self.has_alt() {
            ie + ALT_SUFFIX_LEN
        } else {
            ie
        }
    }

    /// The bytes of the buffer following this segment (the rest of the
    /// packet).
    pub fn rest(&self) -> &[u8] {
        &self.buffer.as_ref()[self.total_len()..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Segment<T> {
    /// Set the output-port identifier.
    pub fn set_port(&mut self, port: u8) {
        self.buffer.as_mut()[field::PORT] = port;
    }

    /// Set the flags nibble.
    pub fn set_flags(&mut self, flags: Flags) {
        let b = &mut self.buffer.as_mut()[field::FLAGS_PRIORITY];
        *b = (flags.to_nibble() << 4) | (*b & 0x0F);
    }

    /// Set the priority nibble.
    pub fn set_priority(&mut self, prio: Priority) {
        let b = &mut self.buffer.as_mut()[field::FLAGS_PRIORITY];
        *b = (*b & 0xF0) | prio.raw();
    }
}

/// An owned, high-level representation of a VIPER header segment.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SegmentRepr {
    /// Output port at the router this segment addresses. 0 = local.
    pub port: u8,
    /// Segment flags.
    pub flags: Flags,
    /// Switching/forwarding priority.
    pub priority: Priority,
    /// The (opaque, possibly encrypted) port token. Empty = absent.
    pub port_token: Vec<u8>,
    /// Network-specific port information (e.g. an Ethernet header for the
    /// next hop). Empty for point-to-point links.
    pub port_info: Vec<u8>,
    /// Optional Slick-Packets fallback branch. `None` encodes byte-
    /// identically to the pre-failover format. When `Some`, `flags.vnt`
    /// and `flags.tree` must be `false` — the wire nibble is taken over
    /// by the ALT marker, and [`SegmentRepr::emit`] rejects the
    /// non-canonical combinations.
    pub alt: Option<AltBranch>,
}

impl SegmentRepr {
    /// A minimal segment: just a port, no token, no info (the 32-bit
    /// minimum of §5).
    pub fn minimal(port: u8) -> SegmentRepr {
        SegmentRepr {
            port,
            ..Default::default()
        }
    }

    /// Parse a segment from the front of `buffer`.
    pub fn parse<T: AsRef<[u8]>>(seg: &Segment<T>) -> Result<SegmentRepr> {
        seg.check_len()?;
        Ok(SegmentRepr {
            port: seg.port(),
            flags: seg.flags(),
            priority: seg.priority(),
            port_token: seg.port_token().to_vec(),
            port_info: seg.port_info().to_vec(),
            alt: seg.alt(),
        })
    }

    /// Parse a segment directly from a byte slice, returning the repr and
    /// the number of bytes consumed.
    pub fn parse_prefix(buffer: &[u8]) -> Result<(SegmentRepr, usize)> {
        let seg = Segment::new_checked(buffer)?;
        let len = seg.total_len();
        Ok((SegmentRepr::parse(&seg)?, len))
    }

    /// Encoded length of one variable field, including a possible
    /// extended-length word.
    fn var_field_len(payload: usize) -> usize {
        if payload > 254 {
            4 + payload
        } else {
            payload
        }
    }

    /// The number of bytes `emit` will write.
    pub fn buffer_len(&self) -> usize {
        FIXED_LEN
            + Self::var_field_len(self.port_token.len())
            + Self::var_field_len(self.port_info.len())
            + if self.alt.is_some() {
                ALT_SUFFIX_LEN
            } else {
                0
            }
    }

    /// Emit into the front of `buffer`, which must be at least
    /// [`SegmentRepr::buffer_len`] bytes. Returns the bytes written.
    ///
    /// Fails with [`Error::Malformed`] on the non-canonical flag/branch
    /// combinations: VNT+TRB set together without an alternate branch
    /// (that nibble *is* the ALT marker — emitting it bare would make
    /// the parser read payload bytes as a branch), or an alternate
    /// branch alongside a set VNT or TRB bit (the marker overrides them
    /// on the wire, so they would not round-trip).
    pub fn emit(&self, buffer: &mut [u8]) -> Result<usize> {
        let nibble = self.flags.to_nibble();
        match self.alt {
            None if nibble & Flags::ALT_MARKER == Flags::ALT_MARKER => {
                return Err(Error::Malformed);
            }
            Some(_) if self.flags.vnt || self.flags.tree => {
                return Err(Error::Malformed);
            }
            _ => {}
        }
        let need = self.buffer_len();
        if buffer.len() < need {
            return Err(Error::Truncated);
        }
        buffer[field::PORT_INFO_LEN] = if self.port_info.len() > 254 {
            LEN_ESCAPE
        } else {
            self.port_info.len() as u8
        };
        buffer[field::PORT_TOKEN_LEN] = if self.port_token.len() > 254 {
            LEN_ESCAPE
        } else {
            self.port_token.len() as u8
        };
        buffer[field::PORT] = self.port;
        let wire_nibble = if self.alt.is_some() {
            nibble | Flags::ALT_MARKER
        } else {
            nibble
        };
        buffer[field::FLAGS_PRIORITY] = (wire_nibble << 4) | self.priority.raw();
        let mut at = FIXED_LEN;
        for (bytes, _name) in [(&self.port_token, "token"), (&self.port_info, "info")] {
            if bytes.len() > 254 {
                buffer[at..at + 4].copy_from_slice(&(bytes.len() as u32).to_be_bytes());
                at += 4;
            }
            buffer[at..at + bytes.len()].copy_from_slice(bytes);
            at += bytes.len();
        }
        if let Some(ab) = self.alt {
            buffer[at] = ab.port;
            buffer[at + 1] = ab.splice;
            at += ALT_SUFFIX_LEN;
        }
        debug_assert_eq!(at, need);
        Ok(need)
    }

    /// Emit into a fresh vector.
    ///
    /// # Panics
    /// On the non-canonical flag/branch combinations [`SegmentRepr::emit`]
    /// rejects (no construction site in this workspace produces them).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = vec![0u8; self.buffer_len()];
        self.emit(&mut v).expect("canonical repr sized exactly");
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(r: &SegmentRepr) -> SegmentRepr {
        let bytes = r.to_bytes();
        let (back, used) = SegmentRepr::parse_prefix(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        back
    }

    #[test]
    fn minimal_segment_is_32_bits() {
        let r = SegmentRepr::minimal(9);
        assert_eq!(r.buffer_len(), 4, "smallest segment size is 32 bits (§5)");
        assert_eq!(roundtrip(&r), r);
    }

    #[test]
    fn ethernet_info_segment_is_18_bytes() {
        // §6.2: "the average header size is 18 bytes per hop (which is a
        // VIPER header plus Ethernet header)".
        let r = SegmentRepr {
            port: 3,
            port_info: vec![0u8; 14],
            ..Default::default()
        };
        assert_eq!(r.buffer_len(), 18);
        assert_eq!(roundtrip(&r), r);
    }

    #[test]
    fn token_and_info_roundtrip() {
        let r = SegmentRepr {
            port: 200,
            flags: Flags {
                vnt: true,
                dib: false,
                rpf: true,
                tree: false,
            },
            priority: Priority::new(6),
            port_token: (0..32).collect(),
            port_info: (0..14).rev().collect(),
            alt: None,
        };
        assert_eq!(roundtrip(&r), r);
    }

    #[test]
    fn long_field_escape_roundtrip() {
        let r = SegmentRepr {
            port: 1,
            port_token: vec![0xAB; 300],
            port_info: vec![0xCD; 1000],
            ..Default::default()
        };
        assert_eq!(r.buffer_len(), 4 + 4 + 300 + 4 + 1000);
        assert_eq!(roundtrip(&r), r);
    }

    #[test]
    fn boundary_254_does_not_escape_255_does() {
        let r254 = SegmentRepr {
            port_token: vec![1; 254],
            ..Default::default()
        };
        assert_eq!(r254.buffer_len(), 4 + 254);
        assert_eq!(roundtrip(&r254), r254);

        let r255 = SegmentRepr {
            port_token: vec![1; 255],
            ..Default::default()
        };
        assert_eq!(r255.buffer_len(), 4 + 4 + 255);
        assert_eq!(roundtrip(&r255), r255);
    }

    #[test]
    fn truncated_buffers_rejected() {
        let r = SegmentRepr {
            port_token: vec![7; 10],
            port_info: vec![8; 20],
            ..Default::default()
        };
        let bytes = r.to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Segment::new_checked(&bytes[..cut]).is_err(),
                "cut at {cut} must be rejected"
            );
        }
        assert!(Segment::new_checked(&bytes[..]).is_ok());
    }

    #[test]
    fn bogus_extended_length_rejected() {
        // Escape byte with a small extended length is malformed.
        let mut bytes = vec![0u8, LEN_ESCAPE, 5, 0];
        bytes.extend_from_slice(&10u32.to_be_bytes());
        bytes.extend_from_slice(&[0; 10]);
        assert_eq!(
            Segment::new_checked(&bytes[..]).unwrap_err(),
            Error::BadExtendedLength
        );
    }

    #[test]
    fn priority_order_matches_paper() {
        // 7 highest … 0 normal … 15 lowest.
        let order: Vec<u8> = vec![7, 6, 5, 4, 3, 2, 1, 0, 8, 9, 10, 11, 12, 13, 14, 15];
        for w in order.windows(2) {
            assert!(
                Priority::new(w[0]) > Priority::new(w[1]),
                "{} should outrank {}",
                w[0],
                w[1]
            );
        }
        assert!(Priority::new(6).is_preemptive());
        assert!(Priority::new(7).is_preemptive());
        assert!(!Priority::new(5).is_preemptive());
        assert!(!Priority::new(8).is_preemptive());
        assert_eq!(Priority::LOWEST, Priority::new(0xF));
    }

    #[test]
    fn flags_nibble_roundtrip() {
        for bits in 0..16u8 {
            let f = Flags {
                vnt: bits & 1 != 0,
                dib: bits & 2 != 0,
                rpf: bits & 4 != 0,
                tree: bits & 8 != 0,
            };
            assert_eq!(Flags::from_nibble(f.to_nibble()), f);
        }
    }

    #[test]
    fn setters_update_in_place() {
        let r = SegmentRepr {
            port: 5,
            port_token: vec![1, 2, 3],
            port_info: vec![4, 5],
            ..Default::default()
        };
        let mut bytes = r.to_bytes();
        let mut seg = Segment::new_checked(&mut bytes[..]).unwrap();
        seg.set_port(42);
        seg.set_priority(Priority::new(7));
        seg.set_flags(Flags {
            dib: true,
            ..Default::default()
        });
        let seg = Segment::new_checked(&bytes[..]).unwrap();
        assert_eq!(seg.port(), 42);
        assert_eq!(seg.priority(), Priority::new(7));
        assert!(seg.flags().dib);
        assert_eq!(seg.port_token(), &[1, 2, 3]);
    }

    #[test]
    fn rest_points_past_segment() {
        let r = SegmentRepr::minimal(1);
        let mut bytes = r.to_bytes();
        bytes.extend_from_slice(b"payload");
        let seg = Segment::new_checked(&bytes[..]).unwrap();
        assert_eq!(seg.rest(), b"payload");
    }

    #[test]
    fn alt_branch_roundtrips_as_two_byte_suffix() {
        let plain = SegmentRepr {
            port: 7,
            port_token: vec![1, 2, 3],
            port_info: vec![9; 14],
            ..Default::default()
        };
        let marked = SegmentRepr {
            alt: Some(AltBranch { port: 3, splice: 5 }),
            ..plain.clone()
        };
        assert_eq!(marked.buffer_len(), plain.buffer_len() + ALT_SUFFIX_LEN);
        let bytes = marked.to_bytes();
        // The suffix is exactly [alt_port, splice] at the tail, and the
        // prefix before it matches the unmarked encoding everywhere but
        // the flags nibble.
        assert_eq!(&bytes[bytes.len() - 2..], &[3, 5]);
        assert_eq!(roundtrip(&marked), marked);
        // rest() must skip the suffix too.
        let mut framed = bytes.clone();
        framed.extend_from_slice(b"data");
        let seg = Segment::new_checked(&framed[..]).unwrap();
        assert_eq!(seg.rest(), b"data");
        assert_eq!(seg.alt(), Some(AltBranch { port: 3, splice: 5 }));
    }

    #[test]
    fn zero_alternates_is_byte_identical_to_legacy_format() {
        // The whole golden-trace compatibility argument: a repr without
        // an alternate must encode exactly as it did before the ALT
        // suffix existed (fixed prologue + token + info, nothing more).
        let r = SegmentRepr {
            port: 5,
            flags: Flags {
                dib: true,
                ..Default::default()
            },
            priority: Priority::new(6),
            port_token: vec![0xAA; 8],
            port_info: vec![0x55; 14],
            alt: None,
        };
        let bytes = r.to_bytes();
        assert_eq!(bytes.len(), FIXED_LEN + 8 + 14);
        assert_eq!(bytes[field::PORT_INFO_LEN], 14);
        assert_eq!(bytes[field::PORT_TOKEN_LEN], 8);
        assert_eq!(bytes[field::FLAGS_PRIORITY], (0b0100 << 4) | 6);
    }

    #[test]
    fn marked_segment_reports_clean_flags() {
        let r = SegmentRepr {
            port: 2,
            flags: Flags {
                dib: true,
                rpf: true,
                ..Default::default()
            },
            alt: Some(AltBranch { port: 9, splice: 0 }),
            ..Default::default()
        };
        let bytes = r.to_bytes();
        let seg = Segment::new_checked(&bytes[..]).unwrap();
        // The recycled VNT/TRB bits never surface as literal flags.
        let f = seg.flags();
        assert!(!f.vnt && !f.tree && f.dib && f.rpf);
        assert!(seg.has_alt());
        assert_eq!(roundtrip(&r), r);
    }

    #[test]
    fn marked_segment_truncated_suffix_rejected() {
        let r = SegmentRepr {
            port: 1,
            port_info: vec![4; 6],
            alt: Some(AltBranch { port: 2, splice: 1 }),
            ..Default::default()
        };
        let bytes = r.to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Segment::new_checked(&bytes[..cut]).is_err(),
                "cut at {cut} must be rejected"
            );
        }
        assert!(Segment::new_checked(&bytes[..]).is_ok());
    }

    #[test]
    fn non_canonical_marker_combinations_rejected() {
        // VNT+TRB without a branch IS the marker — emitting it bare
        // would alias payload bytes into a branch on reparse.
        let bare = SegmentRepr {
            flags: Flags {
                vnt: true,
                tree: true,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut buf = [0u8; 16];
        assert_eq!(bare.emit(&mut buf).unwrap_err(), Error::Malformed);
        // A branch alongside a set VNT or TRB bit would not round-trip.
        for (vnt, tree) in [(true, false), (false, true), (true, true)] {
            let r = SegmentRepr {
                flags: Flags {
                    vnt,
                    tree,
                    ..Default::default()
                },
                alt: Some(AltBranch { port: 1, splice: 0 }),
                ..Default::default()
            };
            assert_eq!(r.emit(&mut buf).unwrap_err(), Error::Malformed);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_repr() -> impl Strategy<Value = SegmentRepr> {
        (
            any::<u8>(),
            0u8..16,
            0u8..16,
            proptest::collection::vec(any::<u8>(), 0..400),
            proptest::collection::vec(any::<u8>(), 0..400),
            (any::<bool>(), any::<u8>(), any::<u8>()),
        )
            .prop_map(|(port, nibble, prio, tok, info, alt_raw)| {
                let alt = alt_raw.0.then_some(AltBranch {
                    port: alt_raw.1,
                    splice: alt_raw.2,
                });
                let mut flags = Flags::from_nibble(nibble);
                // Keep the repr canonical: with a branch the recycled
                // VNT/TRB bits must be clear; without one they must not
                // both be set (that nibble is the ALT marker).
                match alt {
                    Some(_) => {
                        flags.vnt = false;
                        flags.tree = false;
                    }
                    None if flags.vnt && flags.tree => flags.tree = false,
                    None => {}
                }
                SegmentRepr {
                    port,
                    flags,
                    priority: Priority::new(prio),
                    port_token: tok,
                    port_info: info,
                    alt,
                }
            })
    }

    proptest! {
        #[test]
        fn segment_roundtrips(r in arb_repr()) {
            let bytes = r.to_bytes();
            prop_assert_eq!(bytes.len(), r.buffer_len());
            let (back, used) = SegmentRepr::parse_prefix(&bytes).unwrap();
            prop_assert_eq!(used, bytes.len());
            prop_assert_eq!(back, r);
        }

        #[test]
        fn parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            // Hostile input: parsing must fail cleanly or succeed, never panic.
            let _ = SegmentRepr::parse_prefix(&bytes);
        }

        #[test]
        fn marked_parse_never_panics(mut bytes in proptest::collection::vec(any::<u8>(), 4..64)) {
            // Hostile input with the ALT marker forced on, steering every
            // case through the suffix-aware parse path.
            bytes[3] |= 0b1001 << 4;
            let _ = SegmentRepr::parse_prefix(&bytes);
        }

        #[test]
        fn priority_rank_total_order(a in 0u8..16, b in 0u8..16) {
            let (pa, pb) = (Priority::new(a), Priority::new(b));
            // Antisymmetry + totality via rank.
            if pa > pb { prop_assert!(pb < pa); }
            if pa == pb { prop_assert_eq!(a, b); }
        }
    }
}
