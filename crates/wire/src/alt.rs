//! Recovery-segment-list operations for Slick-Packets-style failover.
//!
//! A packet built with alternates carries, between the terminating
//! local-delivery segment of its primary route and the user data, a
//! **recovery segment list**:
//!
//! ```text
//! [ seg 1 ][ … ][ seg N (local, ALT marker: count) ][ rec 1 ][ … ][ rec C ][ data ][ trailer ]
//! ```
//!
//! Each primary segment's [`AltBranch`] names an alternate output port
//! and a splice index into that list. When the router owning a primary
//! segment finds its next hop unreachable, it rebuilds the packet as
//!
//! ```text
//! [ rec j ][ … ][ rec z ][ data ][ trailer ]
//! ```
//!
//! where `j` is the splice index and `z` is the first local-delivery
//! recovery segment at or after `j` — the detour route — and transmits
//! it out the alternate port. The remaining primary segments and the
//! rest of the recovery list are discarded: recovery segments carry no
//! alternates of their own (the DAG is depth-1), so a diverted packet is
//! a plain legacy packet from the landing router onward.
//!
//! These walks run only on the failure path (and once on local
//! delivery, to skip the block), so their O(route-length) cost never
//! taxes the per-hop forwarding argument of §2.

use crate::viper::{Segment, PORT_LOCAL};
use crate::{Error, Result, VIPER_MAX_SEGMENTS};

/// Byte span and output port of one walked segment.
struct Span {
    start: usize,
    end: usize,
    port: u8,
}

/// Walk `count` consecutive segments starting at offset `at`, returning
/// their spans and the offset of the first byte after the last one.
fn walk_segments(packet: &[u8], mut at: usize, count: usize) -> Result<(Vec<Span>, usize)> {
    if count > VIPER_MAX_SEGMENTS {
        return Err(Error::TooManySegments);
    }
    let mut spans = Vec::with_capacity(count);
    for _ in 0..count {
        let rest = packet.get(at..).ok_or(Error::Truncated)?;
        let seg = Segment::new_checked(rest)?;
        let len = seg.total_len();
        spans.push(Span {
            start: at,
            end: at + len,
            port: seg.port(),
        });
        at += len;
    }
    Ok((spans, at))
}

/// Total encoded length of the `count`-segment recovery block at the
/// front of `packet`. Used to skip the block on local delivery, so the
/// delivered bytes start at the user data.
pub fn recovery_block_len(packet: &[u8], count: u8) -> Result<usize> {
    let (_, end) = walk_segments(packet, 0, count as usize)?;
    Ok(end)
}

/// Rebuild a packet onto its recovery detour.
///
/// `packet` must be the bytes *after* the failed hop's segment was
/// stripped: the remaining primary route (ending with the local
/// segment whose ALT marker carries the recovery count), the recovery
/// list, then user data and trailer. Returns the diverted packet —
/// detour segments `[splice ..= first local at or after splice]`
/// followed by the bytes after the recovery block — ready to transmit
/// out the failed segment's alternate port.
///
/// Fails with [`Error::Malformed`] when the route carries no recovery
/// list, and [`Error::BadSpliceIndex`] when `splice` points outside the
/// list or past its last local-delivery terminator.
pub fn divert_onto_recovery(packet: &[u8], splice: u8) -> Result<Vec<u8>> {
    // Walk the remaining primary route to its terminator to find the
    // recovery descriptor.
    let mut at = 0usize;
    let mut hops = 0usize;
    let descriptor = loop {
        let rest = packet.get(at..).ok_or(Error::Truncated)?;
        let seg = Segment::new_checked(rest)?;
        at += seg.total_len();
        hops += 1;
        if hops > VIPER_MAX_SEGMENTS {
            return Err(Error::TooManySegments);
        }
        if seg.port() == PORT_LOCAL {
            break seg.alt();
        }
    };
    let count = match descriptor {
        Some(d) => d.port as usize,
        None => return Err(Error::Malformed),
    };
    let (spans, rec_end) = walk_segments(packet, at, count)?;
    let j = splice as usize;
    let first = spans.get(j).ok_or(Error::BadSpliceIndex)?;
    let z = spans
        .iter()
        .skip(j)
        .position(|s| s.port == PORT_LOCAL)
        .map(|off| j + off)
        .ok_or(Error::BadSpliceIndex)?;
    let last = spans.get(z).ok_or(Error::BadSpliceIndex)?;
    // The detour segments are contiguous in the original buffer; the
    // diverted packet is that window plus everything after the block.
    let head = packet.get(first.start..last.end).ok_or(Error::Truncated)?;
    let rest = packet.get(rec_end..).ok_or(Error::Truncated)?;
    let mut out = Vec::with_capacity(head.len() + rest.len());
    out.extend_from_slice(head);
    out.extend_from_slice(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketBuilder;
    use crate::viper::{AltBranch, SegmentRepr};

    fn seg(port: u8) -> SegmentRepr {
        SegmentRepr::minimal(port)
    }

    fn alt_seg(port: u8, alt_port: u8, splice: u8) -> SegmentRepr {
        SegmentRepr {
            port,
            alt: Some(AltBranch {
                port: alt_port,
                splice,
            }),
            ..Default::default()
        }
    }

    /// Two-hop protected route with a two-entry recovery list.
    fn protected_packet() -> Vec<u8> {
        PacketBuilder::new()
            .segment(alt_seg(2, 3, 0))
            .segment(alt_seg(2, 3, 1))
            .segment(seg(PORT_LOCAL))
            .recovery(vec![seg(2), seg(PORT_LOCAL)])
            .payload(b"data".to_vec())
            .build()
            .unwrap()
    }

    #[test]
    fn divert_at_first_hop_takes_full_detour() {
        let mut pkt = protected_packet();
        // Router 1 strips its segment, then finds the next hop down.
        let stripped = crate::packet::strip_front_segment(&mut pkt).unwrap();
        assert_eq!(stripped.alt, Some(AltBranch { port: 3, splice: 0 }));
        let diverted = divert_onto_recovery(&pkt, 0).unwrap();
        let (route, recovery, data_at) = crate::packet::parse_route_full(&diverted).unwrap();
        assert_eq!(
            route.iter().map(|s| s.port).collect::<Vec<_>>(),
            vec![2, PORT_LOCAL]
        );
        assert!(recovery.is_empty(), "detour carries no recovery of its own");
        assert_eq!(&diverted[data_at..data_at + 4], b"data");
    }

    #[test]
    fn divert_at_last_hop_splices_to_terminator() {
        let mut pkt = protected_packet();
        crate::packet::strip_front_segment(&mut pkt).unwrap();
        crate::packet::strip_front_segment(&mut pkt).unwrap();
        let diverted = divert_onto_recovery(&pkt, 1).unwrap();
        let (route, _, data_at) = crate::packet::parse_route_full(&diverted).unwrap();
        assert_eq!(
            route.iter().map(|s| s.port).collect::<Vec<_>>(),
            vec![PORT_LOCAL]
        );
        assert_eq!(&diverted[data_at..data_at + 4], b"data");
    }

    #[test]
    fn splice_one_past_list_rejected() {
        let mut pkt = protected_packet();
        crate::packet::strip_front_segment(&mut pkt).unwrap();
        // The recovery list has two entries; splice 2 is one past it.
        assert_eq!(
            divert_onto_recovery(&pkt, 2).unwrap_err(),
            Error::BadSpliceIndex
        );
    }

    #[test]
    fn unprotected_route_cannot_divert() {
        let mut pkt = PacketBuilder::new()
            .segment(seg(2))
            .segment(seg(PORT_LOCAL))
            .payload(b"x".to_vec())
            .build()
            .unwrap();
        crate::packet::strip_front_segment(&mut pkt).unwrap();
        assert_eq!(divert_onto_recovery(&pkt, 0).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn recovery_block_len_spans_the_block() {
        let pkt = protected_packet();
        let (route, recovery, data_at) = crate::packet::parse_route_full(&pkt).unwrap();
        assert_eq!(route.len(), 3);
        assert_eq!(recovery.len(), 2);
        // The block starts right after the (alt-marked) local segment.
        let route_len: usize = route
            .iter()
            .enumerate()
            .map(|(i, s)| {
                if i == route.len() - 1 {
                    // Reprs are normalized (descriptor removed); the wire
                    // local segment carries the two-byte suffix.
                    s.buffer_len() + crate::viper::ALT_SUFFIX_LEN
                } else {
                    s.buffer_len()
                }
            })
            .sum();
        let len = recovery_block_len(&pkt[route_len..], 2).unwrap();
        assert_eq!(route_len + len, data_at);
    }

    #[test]
    fn hostile_divert_never_panics() {
        for len in 0..32 {
            let junk = vec![0xFFu8; len];
            let _ = divert_onto_recovery(&junk, 0);
            let _ = recovery_block_len(&junk, 3);
        }
    }
}
