//! # sirpent-wire — wire formats for the Sirpent internetwork architecture
//!
//! This crate provides byte-accurate, zero-copy representations of every
//! packet format used by the Sirpent/VIPER reproduction:
//!
//! * [`viper`] — the VIPER header segment of Figure 1 of the paper
//!   (Cheriton, *Sirpent: A High-Performance Internetworking Approach*,
//!   SIGCOMM 1989), including the 255-escape for long variable fields.
//! * [`packet`] — the full Sirpent packet walker: a chain of header
//!   segments, user data, and the return-route **trailer** that routers
//!   grow as the packet snakes through the internetwork.
//! * [`trailer`] — trailer entry encoding (reversed header segments,
//!   the truncation marker, and the base marker laid down by the source).
//! * [`ethernet`] — Ethernet II framing used as the canonical
//!   "network-specific" `portInfo` example throughout the paper.
//! * [`ipish`] — an IPv4-like baseline datagram header (version, TTL,
//!   fragmentation, Internet checksum) for the store-and-forward
//!   comparison router.
//! * [`cvc`] — concatenated-virtual-circuit (X.75-style) call control and
//!   data framing for the circuit-switched baseline.
//! * [`vmtp`] — a VMTP-like transport header and timestamp/checksum
//!   trailer, carrying the functions Sirpent deliberately evicts from the
//!   internetwork layer (§4 of the paper).
//! * [`token`] — the plaintext layout of the port-token capability body
//!   that `sirpent-token` seals into an encrypted, difficult-to-forge
//!   blob.
//!
//! ## Design idiom
//!
//! Following smoltcp, each format has a thin `Packet<T: AsRef<[u8]>>`-style
//! wrapper giving checked field access over a borrowed buffer, plus an
//! owned `Repr` struct with `parse` / `emit` / `buffer_len`. Parsing never
//! panics on hostile input: every accessor that could run off the end of
//! the buffer is fronted by `check_len`-style validation returning
//! [`Error`].
//!
//! No `unsafe`, no allocation on the parse path for the borrowed views.
//!
//! ```
//! use sirpent_wire::viper::{SegmentRepr, Priority, PORT_LOCAL};
//! use sirpent_wire::packet::{PacketBuilder, PacketView};
//!
//! // A two-hop route ending at the destination's local port.
//! let pkt = PacketBuilder::new()
//!     .segment(SegmentRepr { port: 3, priority: Priority::new(5), ..Default::default() })
//!     .segment(SegmentRepr::minimal(PORT_LOCAL))
//!     .payload(b"payload".to_vec())
//!     .build()
//!     .unwrap();
//! let view = PacketView::parse(&pkt).unwrap();
//! assert_eq!(view.route.len(), 2);
//! assert_eq!(view.data(&pkt), b"payload");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alt;
pub mod buf;
pub mod cvc;
pub mod ethernet;
pub mod ipish;
pub mod packet;
pub mod token;
pub mod trailer;
pub mod viper;
pub mod vmtp;

/// Errors produced while parsing or emitting wire formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// The buffer is too short to contain the claimed structure.
    Truncated,
    /// A length field escape (255) was used but the 32-bit extended
    /// length does not fit or overlaps the end of the buffer.
    BadExtendedLength,
    /// A field holds a value that the format reserves or forbids.
    Malformed,
    /// A checksum did not verify (only formats that carry one: the IP
    /// baseline header and the VMTP trailer — VIPER itself has none by
    /// design).
    Checksum,
    /// The trailer walk did not terminate at a base marker.
    MissingTrailerBase,
    /// An unknown trailer entry kind was encountered.
    UnknownTrailerKind(u8),
    /// The packet would exceed the VIPER transmission unit (1500 bytes).
    ExceedsTransmissionUnit,
    /// A route exceeds the VIPER maximum of 48 header segments.
    TooManySegments,
    /// A trailer entry payload exceeds the u16 length field (65535
    /// bytes) and cannot be framed without corrupting the trailer walk.
    TrailerPayloadTooLong,
    /// An IP-like datagram's payload would wrap the 16-bit `total_len`
    /// field (payload > 65535 − header), forging a bogus tiny length.
    DatagramTooLong,
    /// An alternate branch's splice index points outside the recovery
    /// segment list, or past its last local-delivery terminator.
    BadSpliceIndex,
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Error::Truncated => write!(f, "buffer too short for structure"),
            Error::BadExtendedLength => write!(f, "bad 255-escape extended length"),
            Error::Malformed => write!(f, "malformed field value"),
            Error::Checksum => write!(f, "checksum mismatch"),
            Error::MissingTrailerBase => write!(f, "trailer walk found no base marker"),
            Error::UnknownTrailerKind(k) => write!(f, "unknown trailer entry kind {k}"),
            Error::ExceedsTransmissionUnit => {
                write!(f, "packet exceeds the 1500-byte VIPER transmission unit")
            }
            Error::TooManySegments => write!(f, "route exceeds 48 VIPER header segments"),
            Error::DatagramTooLong => {
                write!(f, "datagram payload would wrap the 16-bit total_len field")
            }
            Error::TrailerPayloadTooLong => {
                write!(
                    f,
                    "trailer entry payload exceeds the 65535-byte length field"
                )
            }
            Error::BadSpliceIndex => {
                write!(f, "alternate splice index outside the recovery list")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the crate.
pub type Result<T> = core::result::Result<T, Error>;

/// The VIPER transmission unit: 1500 bytes (§5 of the paper — "justified
/// by the de facto standard created by Ethernet").
pub const VIPER_TRANSMISSION_UNIT: usize = 1500;

/// Maximum number of VIPER header segments on a route (§2.3 — "a maximum
/// of 48 header segments (expected to be under 500 bytes long)").
pub const VIPER_MAX_SEGMENTS: usize = 48;

/// Nominal budget for the full route header implied by the 48-segment
/// limit (§2.3).
pub const VIPER_ROUTE_BYTE_BUDGET: usize = 500;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let msgs = [
            Error::Truncated.to_string(),
            Error::BadExtendedLength.to_string(),
            Error::Malformed.to_string(),
            Error::Checksum.to_string(),
            Error::MissingTrailerBase.to_string(),
            Error::UnknownTrailerKind(7).to_string(),
            Error::ExceedsTransmissionUnit.to_string(),
            Error::TooManySegments.to_string(),
            Error::BadSpliceIndex.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
        assert!(Error::UnknownTrailerKind(7).to_string().contains('7'));
    }

    #[test]
    fn constants_match_paper() {
        assert_eq!(VIPER_TRANSMISSION_UNIT, 1500);
        assert_eq!(VIPER_MAX_SEGMENTS, 48);
        assert_eq!(VIPER_ROUTE_BYTE_BUDGET, 500);
    }
}
