//! Ethernet II framing.
//!
//! The paper uses the Ethernet header as its running example of a
//! "network-specific" `portInfo` field: two 48-bit addresses plus a 16-bit
//! protocol type that "serves as a tag field specifying the format of the
//! rest of the packet" (§2). A router crossing an Ethernet hop swaps the
//! source/destination addresses when moving the header segment to the
//! trailer, so that the trailer entry "constitutes a correct return hop
//! through this router".

use crate::{Error, Result};

/// A 48-bit Ethernet (MAC) address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Address(pub [u8; 6]);

impl Address {
    /// The broadcast address, ff:ff:ff:ff:ff:ff.
    pub const BROADCAST: Address = Address([0xFF; 6]);

    /// Construct a locally-administered unicast address from a small
    /// integer — handy for simulations.
    pub fn from_index(i: u32) -> Address {
        let b = i.to_be_bytes();
        Address([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// Whether this is the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }

    /// Whether the group bit (multicast) is set.
    pub fn is_multicast(self) -> bool {
        self.0[0] & 0x01 != 0
    }
}

impl core::fmt::Display for Address {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let a = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            a[0], a[1], a[2], a[3], a[4], a[5]
        )
    }
}

/// Protocol type values ("ethertypes") used in this reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// A Sirpent packet: the bytes after the Ethernet header are another
    /// VIPER header segment (§2: "the protocol type field contains a value
    /// associated with Sirpent").
    Sirpent,
    /// The IP-like baseline datagram protocol.
    Ipish,
    /// CVC (virtual-circuit baseline) framing.
    Cvc,
    /// A VMTP transport packet delivered directly to its final
    /// destination (§2: "the type field could designate a transport
    /// protocol if the destination Ethernet address is that of its final
    /// destination").
    Vmtp,
    /// Anything else.
    Unknown(u16),
}

impl EtherType {
    /// Ethertype assigned to Sirpent in this reproduction (from the
    /// experimental/public range).
    pub const SIRPENT_VALUE: u16 = 0x88B5;
    /// Ethertype for the IP-like baseline.
    pub const IPISH_VALUE: u16 = 0x0800;
    /// Ethertype for the CVC baseline.
    pub const CVC_VALUE: u16 = 0x88B6;
    /// Ethertype for direct VMTP delivery.
    pub const VMTP_VALUE: u16 = 0x88B7;

    /// Decode from the wire value.
    pub fn from_u16(v: u16) -> EtherType {
        match v {
            Self::SIRPENT_VALUE => EtherType::Sirpent,
            Self::IPISH_VALUE => EtherType::Ipish,
            Self::CVC_VALUE => EtherType::Cvc,
            Self::VMTP_VALUE => EtherType::Vmtp,
            other => EtherType::Unknown(other),
        }
    }

    /// Encode to the wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            EtherType::Sirpent => Self::SIRPENT_VALUE,
            EtherType::Ipish => Self::IPISH_VALUE,
            EtherType::Cvc => Self::CVC_VALUE,
            EtherType::Vmtp => Self::VMTP_VALUE,
            EtherType::Unknown(v) => v,
        }
    }
}

/// Length of an Ethernet II header: 6 + 6 + 2.
pub const HEADER_LEN: usize = 14;

/// Length of the *compressed* network-specific form: destination + type
/// only. §2 footnote: "by agreement between the router and sources, the
/// network-specific portion may contain only the destination and type
/// fields, in which case the router would be responsible for filling in
/// the correct source address".
pub const COMPRESSED_LEN: usize = 8;

/// An owned Ethernet II header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// Destination station.
    pub dst: Address,
    /// Source station.
    pub src: Address,
    /// Payload protocol tag.
    pub ethertype: EtherType,
}

impl Repr {
    /// Parse from the front of `buffer`.
    pub fn parse(buffer: &[u8]) -> Result<Repr> {
        if buffer.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&buffer[0..6]);
        src.copy_from_slice(&buffer[6..12]);
        Ok(Repr {
            dst: Address(dst),
            src: Address(src),
            ethertype: EtherType::from_u16(u16::from_be_bytes([buffer[12], buffer[13]])),
        })
    }

    /// Bytes `emit` writes — always [`HEADER_LEN`].
    pub fn buffer_len(&self) -> usize {
        HEADER_LEN
    }

    /// Emit into the front of `buffer`.
    pub fn emit(&self, buffer: &mut [u8]) -> Result<usize> {
        if buffer.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        buffer[0..6].copy_from_slice(&self.dst.0);
        buffer[6..12].copy_from_slice(&self.src.0);
        buffer[12..14].copy_from_slice(&self.ethertype.to_u16().to_be_bytes());
        Ok(HEADER_LEN)
    }

    /// Emit into a fresh vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = vec![0u8; HEADER_LEN];
        self.emit(&mut v).expect("sized exactly");
        v
    }

    /// Emit the compressed (destination + type) form; the source station
    /// is supplied by the forwarding router.
    pub fn to_compressed_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(COMPRESSED_LEN);
        v.extend_from_slice(&self.dst.0);
        v.extend_from_slice(&self.ethertype.to_u16().to_be_bytes());
        v
    }

    /// Parse the compressed form, filling in `src` (the router's own
    /// station address on the outgoing segment).
    pub fn parse_compressed(buffer: &[u8], src: Address) -> Result<Repr> {
        if buffer.len() < COMPRESSED_LEN {
            return Err(Error::Truncated);
        }
        let mut dst = [0u8; 6];
        dst.copy_from_slice(&buffer[0..6]);
        Ok(Repr {
            dst: Address(dst),
            src,
            ethertype: EtherType::from_u16(u16::from_be_bytes([buffer[6], buffer[7]])),
        })
    }

    /// The header for the *return* hop: source and destination swapped
    /// (§2: "with an Ethernet header, the destination and source addresses
    /// are swapped").
    pub fn reversed(&self) -> Repr {
        Repr {
            dst: self.src,
            src: self.dst,
            ethertype: self.ethertype,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let r = Repr {
            dst: Address::from_index(7),
            src: Address::from_index(9),
            ethertype: EtherType::Sirpent,
        };
        let bytes = r.to_bytes();
        assert_eq!(bytes.len(), 14);
        assert_eq!(Repr::parse(&bytes).unwrap(), r);
    }

    #[test]
    fn reversed_swaps_addresses() {
        let r = Repr {
            dst: Address::from_index(1),
            src: Address::from_index(2),
            ethertype: EtherType::Vmtp,
        };
        let rev = r.reversed();
        assert_eq!(rev.dst, r.src);
        assert_eq!(rev.src, r.dst);
        assert_eq!(rev.reversed(), r);
    }

    #[test]
    fn ethertype_codec() {
        for t in [
            EtherType::Sirpent,
            EtherType::Ipish,
            EtherType::Cvc,
            EtherType::Vmtp,
            EtherType::Unknown(0x1234),
        ] {
            assert_eq!(EtherType::from_u16(t.to_u16()), t);
        }
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(Repr::parse(&[0u8; 13]).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn compressed_form_roundtrips_with_router_src() {
        let full = Repr {
            dst: Address::from_index(5),
            src: Address::from_index(6),
            ethertype: EtherType::Sirpent,
        };
        let c = full.to_compressed_bytes();
        assert_eq!(c.len(), COMPRESSED_LEN);
        let back = Repr::parse_compressed(&c, Address::from_index(6)).unwrap();
        assert_eq!(back, full);
        // The router substitutes its own source regardless of sender.
        let other = Repr::parse_compressed(&c, Address::from_index(9)).unwrap();
        assert_eq!(other.src, Address::from_index(9));
        assert_eq!(other.dst, full.dst);
        assert!(Repr::parse_compressed(&c[..7], Address::from_index(1)).is_err());
    }

    #[test]
    fn broadcast_and_multicast_bits() {
        assert!(Address::BROADCAST.is_broadcast());
        assert!(Address::BROADCAST.is_multicast());
        assert!(!Address::from_index(3).is_multicast());
        assert_eq!(Address::from_index(3).to_string(), "02:00:00:00:00:03");
    }
}
