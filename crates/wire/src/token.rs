//! The plaintext body of a port token.
//!
//! §2.2: "Each token is an encrypted (difficult-to-forge) capability that
//! identifies the port and type of service that it authorizes, the
//! account to which usage is to be charged, optionally a limit on
//! resource usage authorized by this token, and whether reverse route
//! charging is authorized."
//!
//! This module defines only the **plaintext layout** (24 bytes). The
//! `sirpent-token` crate seals it under a per-router key into the opaque
//! 32-byte blob that actually rides in the VIPER `portToken` field, and
//! owns the cache/optimistic-authorization machinery.

use crate::viper::Priority;
use crate::{Error, Result};

/// Size of the plaintext token body.
pub const BODY_LEN: usize = 24;

/// Size of the sealed (encrypted + MAC) token as carried on the wire.
pub const SEALED_LEN: usize = 32;

/// Current token format version.
pub const VERSION: u8 = 1;

/// Account identifier charged for usage under a token.
pub type AccountId = u32;

/// The decoded capability contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Body {
    /// Output port this token authorizes at its router.
    pub port: u8,
    /// Highest priority the holder may use through that port ("the port
    /// and type of service that it authorizes").
    pub max_priority: Priority,
    /// Whether the token also authorizes the *return* route through this
    /// port ("whether reverse route charging is authorized").
    pub reverse_ok: bool,
    /// The account to which usage is charged.
    pub account: AccountId,
    /// Resource limit in bytes; 0 = unlimited.
    pub byte_limit: u32,
    /// Expiry, in seconds of simulation time; 0 = never.
    pub expiry_s: u32,
    /// The router this token is valid at (tokens are per-router
    /// capabilities issued by the routing directory).
    pub router_id: u32,
    /// Anti-forgery nonce chosen at mint time.
    pub nonce: u32,
}

impl Body {
    /// Serialize into the fixed 24-byte layout.
    pub fn to_bytes(&self) -> [u8; BODY_LEN] {
        let mut b = [0u8; BODY_LEN];
        b[0] = VERSION;
        b[1] = self.port;
        b[2] = self.max_priority.raw();
        b[3] = u8::from(self.reverse_ok);
        b[4..8].copy_from_slice(&self.account.to_be_bytes());
        b[8..12].copy_from_slice(&self.byte_limit.to_be_bytes());
        b[12..16].copy_from_slice(&self.expiry_s.to_be_bytes());
        b[16..20].copy_from_slice(&self.router_id.to_be_bytes());
        b[20..24].copy_from_slice(&self.nonce.to_be_bytes());
        b
    }

    /// Parse the fixed layout, rejecting unknown versions.
    pub fn parse(b: &[u8]) -> Result<Body> {
        if b.len() < BODY_LEN {
            return Err(Error::Truncated);
        }
        if b[0] != VERSION {
            return Err(Error::Malformed);
        }
        if b[2] > 0x0F || b[3] > 1 {
            return Err(Error::Malformed);
        }
        Ok(Body {
            port: b[1],
            max_priority: Priority::new(b[2]),
            reverse_ok: b[3] == 1,
            account: u32::from_be_bytes(b[4..8].try_into().unwrap()),
            byte_limit: u32::from_be_bytes(b[8..12].try_into().unwrap()),
            expiry_s: u32::from_be_bytes(b[12..16].try_into().unwrap()),
            router_id: u32::from_be_bytes(b[16..20].try_into().unwrap()),
            nonce: u32::from_be_bytes(b[20..24].try_into().unwrap()),
        })
    }

    /// Whether `prio` is within what this token authorizes.
    pub fn allows_priority(&self, prio: Priority) -> bool {
        prio <= self.max_priority
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body() -> Body {
        Body {
            port: 7,
            max_priority: Priority::new(6),
            reverse_ok: true,
            account: 0xACC0_0001,
            byte_limit: 1 << 20,
            expiry_s: 3600,
            router_id: 0x0000_00A0,
            nonce: 0xDEAD_BEEF,
        }
    }

    #[test]
    fn body_roundtrip() {
        let b = body();
        assert_eq!(Body::parse(&b.to_bytes()).unwrap(), b);
    }

    #[test]
    fn version_checked() {
        let mut bytes = body().to_bytes();
        bytes[0] = 99;
        assert_eq!(Body::parse(&bytes).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn priority_ceiling() {
        let b = body(); // max priority 6
        assert!(b.allows_priority(Priority::new(0)));
        assert!(b.allows_priority(Priority::new(6)));
        assert!(!b.allows_priority(Priority::new(7)));
        assert!(b.allows_priority(Priority::new(15)), "below-normal allowed");
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(Body::parse(&[0u8; 10]).unwrap_err(), Error::Truncated);
    }
}
