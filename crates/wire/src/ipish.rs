//! The IP-like baseline datagram header.
//!
//! The paper's primary comparison point is "a 'universal' internetwork
//! datagram, as in the DoD Internet IP protocol" (§1): every router must
//! "determine the next hop of the route from the destination address,
//! update the Time To Live (TTL) field, possibly fragment the packet and
//! update the header checksum before sending on the packet". This module
//! implements exactly that header (a faithful IPv4 layout) so the
//! store-and-forward baseline router pays the same per-packet costs the
//! paper attributes to IP.

use crate::{Error, Result};

/// A 32-bit internetwork address, rendered dotted-quad.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Address(pub u32);

impl Address {
    /// Build from four octets.
    pub fn new(a: u8, b: u8, c: u8, d: u8) -> Address {
        Address(u32::from_be_bytes([a, b, c, d]))
    }

    /// Network prefix of the given length.
    pub fn prefix(self, len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            self.0 & (!0u32 << (32 - len as u32))
        }
    }
}

impl core::fmt::Display for Address {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let b = self.0.to_be_bytes();
        write!(f, "{}.{}.{}.{}", b[0], b[1], b[2], b[3])
    }
}

/// Header length without options (we carry none): 20 bytes.
pub const HEADER_LEN: usize = 20;

/// Largest payload a single datagram can carry: `total_len` is a 16-bit
/// field covering header + payload, so anything past this wraps the
/// field and forges a tiny bogus length.
pub const MAX_PAYLOAD: usize = u16::MAX as usize - HEADER_LEN;

/// The `total_len` value for a datagram carrying `payload` bytes, or
/// [`Error::DatagramTooLong`] when it would wrap the 16-bit field.
/// Builders must use this instead of `(HEADER_LEN + payload) as u16` —
/// the unchecked cast silently truncates near-65535 payloads.
pub fn checked_total_len(payload: usize) -> Result<u16> {
    if payload > MAX_PAYLOAD {
        return Err(Error::DatagramTooLong);
    }
    Ok((HEADER_LEN + payload) as u16)
}

/// Default TTL for new datagrams.
pub const DEFAULT_TTL: u8 = 32;

/// The classic ones-complement Internet checksum over `data`.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// An owned IP-like header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// Type-of-service byte.
    pub tos: u8,
    /// Total length of header + payload in bytes.
    pub total_len: u16,
    /// Datagram identification (shared by all fragments).
    pub ident: u16,
    /// Don't-fragment flag.
    pub dont_frag: bool,
    /// More-fragments flag.
    pub more_frags: bool,
    /// Fragment offset in 8-byte units.
    pub frag_offset: u16,
    /// Remaining hop budget; routers decrement and drop at zero.
    pub ttl: u8,
    /// Payload protocol number.
    pub protocol: u8,
    /// Source address.
    pub src: Address,
    /// Destination address.
    pub dst: Address,
}

impl Repr {
    /// Parse and **verify the header checksum** — the work IP forces on
    /// every router.
    pub fn parse(buffer: &[u8]) -> Result<Repr> {
        if buffer.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let vihl = buffer[0];
        if vihl != 0x45 {
            return Err(Error::Malformed);
        }
        if internet_checksum(&buffer[..HEADER_LEN]) != 0 {
            return Err(Error::Checksum);
        }
        let flags_frag = u16::from_be_bytes([buffer[6], buffer[7]]);
        Ok(Repr {
            tos: buffer[1],
            total_len: u16::from_be_bytes([buffer[2], buffer[3]]),
            ident: u16::from_be_bytes([buffer[4], buffer[5]]),
            dont_frag: flags_frag & 0x4000 != 0,
            more_frags: flags_frag & 0x2000 != 0,
            frag_offset: flags_frag & 0x1FFF,
            ttl: buffer[8],
            protocol: buffer[9],
            src: Address(u32::from_be_bytes([
                buffer[12], buffer[13], buffer[14], buffer[15],
            ])),
            dst: Address(u32::from_be_bytes([
                buffer[16], buffer[17], buffer[18], buffer[19],
            ])),
        })
    }

    /// Bytes `emit` writes — always [`HEADER_LEN`].
    pub fn buffer_len(&self) -> usize {
        HEADER_LEN
    }

    /// Emit, computing the header checksum.
    pub fn emit(&self, buffer: &mut [u8]) -> Result<usize> {
        if buffer.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        buffer[0] = 0x45;
        buffer[1] = self.tos;
        buffer[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        buffer[4..6].copy_from_slice(&self.ident.to_be_bytes());
        let mut ff = self.frag_offset & 0x1FFF;
        if self.dont_frag {
            ff |= 0x4000;
        }
        if self.more_frags {
            ff |= 0x2000;
        }
        buffer[6..8].copy_from_slice(&ff.to_be_bytes());
        buffer[8] = self.ttl;
        buffer[9] = self.protocol;
        buffer[10..12].copy_from_slice(&[0, 0]);
        buffer[12..16].copy_from_slice(&self.src.0.to_be_bytes());
        buffer[16..20].copy_from_slice(&self.dst.0.to_be_bytes());
        let csum = internet_checksum(&buffer[..HEADER_LEN]);
        buffer[10..12].copy_from_slice(&csum.to_be_bytes());
        Ok(HEADER_LEN)
    }

    /// Emit into a fresh vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = vec![0u8; HEADER_LEN];
        self.emit(&mut v).expect("sized exactly");
        v
    }
}

/// In-place router update: decrement TTL and incrementally fix the header
/// checksum (RFC 1141 style) — the per-hop mutation the paper charges
/// against IP. Returns `false` (and leaves the buffer unchanged) when the
/// TTL has expired and the packet must be dropped.
pub fn decrement_ttl(buffer: &mut [u8]) -> Result<bool> {
    if buffer.len() < HEADER_LEN {
        return Err(Error::Truncated);
    }
    if buffer[8] <= 1 {
        return Ok(false);
    }
    buffer[8] -= 1;
    buffer[10..12].copy_from_slice(&[0, 0]);
    let csum = internet_checksum(&buffer[..HEADER_LEN]);
    buffer[10..12].copy_from_slice(&csum.to_be_bytes());
    Ok(true)
}

/// Fragment an IP-like datagram (header + payload in `packet`) to fit
/// `mtu`. Returns the fragments, each a complete datagram. Errors with
/// [`Error::Malformed`] when `dont_frag` is set and fragmentation is
/// needed — the caller then drops the packet.
pub fn fragment(packet: &[u8], mtu: usize) -> Result<Vec<Vec<u8>>> {
    // A zero fragment budget can never carry anything — reject before
    // the fits-fast-path so an empty packet cannot sneak through as a
    // zero-byte "fragment" (the misconfigured-MTU failure mode).
    if mtu == 0 {
        return Err(Error::Malformed);
    }
    if packet.len() <= mtu {
        return Ok(vec![packet.to_vec()]);
    }
    let repr = Repr::parse(packet)?;
    if repr.dont_frag {
        return Err(Error::Malformed);
    }
    if mtu < HEADER_LEN + 8 {
        return Err(Error::Malformed);
    }
    let payload = &packet[HEADER_LEN..];
    // Fragment payload size must be a multiple of 8 except for the last.
    let chunk = ((mtu - HEADER_LEN) / 8) * 8;
    let mut frags = Vec::new();
    let mut off = 0usize;
    while off < payload.len() {
        let take = chunk.min(payload.len() - off);
        let last = off + take >= payload.len();
        let fr = Repr {
            total_len: (HEADER_LEN + take) as u16,
            more_frags: !last || repr.more_frags,
            frag_offset: repr.frag_offset + (off / 8) as u16,
            ..repr
        };
        let mut buf = fr.to_bytes();
        buf.extend_from_slice(&payload[off..off + take]);
        frags.push(buf);
        off += take;
    }
    Ok(frags)
}

/// Reassembly buffer for one datagram (keyed by src/dst/ident/protocol by
/// the caller). Exhibits the "all-or-nothing behavior of IP in the
/// reassembly of packets" the paper criticizes (§4.3): the datagram is
/// useless until every fragment has arrived.
#[derive(Debug, Clone)]
pub struct Reassembly {
    repr: Repr,
    data: Vec<u8>,
    have: Vec<(usize, usize)>,
    total: Option<usize>,
}

impl Reassembly {
    /// Create an empty reassembly context.
    pub fn new() -> Reassembly {
        Reassembly {
            repr: Repr {
                tos: 0,
                total_len: 0,
                ident: 0,
                dont_frag: false,
                more_frags: false,
                frag_offset: 0,
                ttl: 0,
                protocol: 0,
                src: Address(0),
                dst: Address(0),
            },
            data: Vec::new(),
            have: Vec::new(),
            total: None,
        }
    }

    /// Feed one fragment. Returns the reassembled datagram when complete.
    pub fn push(&mut self, fragment: &[u8]) -> Result<Option<Vec<u8>>> {
        let repr = Repr::parse(fragment)?;
        let end = repr.total_len as usize;
        if end < HEADER_LEN || end > fragment.len() {
            // A wrapped or forged total_len must never index the buffer.
            return Err(Error::Truncated);
        }
        let payload = &fragment[HEADER_LEN..end];
        let start = repr.frag_offset as usize * 8;
        let end = start + payload.len();
        if self.data.len() < end {
            self.data.resize(end, 0);
        }
        self.data[start..end].copy_from_slice(payload);
        self.have.push((start, end));
        if !repr.more_frags {
            self.total = Some(end);
        }
        if repr.frag_offset == 0 {
            self.repr = repr;
        }
        if let Some(total) = self.total {
            // Complete iff every byte of [0, total) is covered.
            let mut covered = vec![false; total];
            for &(s, e) in &self.have {
                for c in covered.iter_mut().take(e.min(total)).skip(s.min(total)) {
                    *c = true;
                }
            }
            if covered.iter().all(|&c| c) {
                let hdr = Repr {
                    total_len: (HEADER_LEN + total) as u16,
                    more_frags: false,
                    frag_offset: 0,
                    ..self.repr
                };
                let mut out = hdr.to_bytes();
                out.extend_from_slice(&self.data[..total]);
                return Ok(Some(out));
            }
        }
        Ok(None)
    }
}

impl Default for Reassembly {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> Repr {
        Repr {
            tos: 0,
            total_len: 20,
            ident: 0x1234,
            dont_frag: false,
            more_frags: false,
            frag_offset: 0,
            ttl: DEFAULT_TTL,
            protocol: 17,
            src: Address::new(10, 0, 0, 1),
            dst: Address::new(10, 0, 1, 2),
        }
    }

    #[test]
    fn header_roundtrip_with_checksum() {
        let r = header();
        let bytes = r.to_bytes();
        assert_eq!(internet_checksum(&bytes), 0, "checksum over header is 0");
        assert_eq!(Repr::parse(&bytes).unwrap(), r);
    }

    #[test]
    fn corrupted_header_rejected() {
        // IP's behaviour: corruption is detected at the next router and
        // the packet dropped — contrast with Sirpent's checksum-free
        // header (E12).
        let r = header();
        let bytes = r.to_bytes();
        for i in 0..bytes.len() {
            let mut c = bytes.clone();
            c[i] ^= 0x40;
            assert!(Repr::parse(&c).is_err(), "flip at byte {i} must fail");
        }
    }

    #[test]
    fn ttl_decrement_preserves_checksum() {
        let r = header();
        let mut bytes = r.to_bytes();
        for expect in (1..DEFAULT_TTL).rev() {
            assert!(decrement_ttl(&mut bytes).unwrap());
            let back = Repr::parse(&bytes).expect("checksum still valid");
            assert_eq!(back.ttl, expect);
        }
        // Expired: refuse to forward.
        assert!(!decrement_ttl(&mut bytes).unwrap());
    }

    #[test]
    fn fragmentation_roundtrip() {
        let payload: Vec<u8> = (0..997u32).map(|i| i as u8).collect();
        let mut pkt = Repr {
            total_len: (HEADER_LEN + payload.len()) as u16,
            ..header()
        }
        .to_bytes();
        pkt.extend_from_slice(&payload);

        let frags = fragment(&pkt, 256).unwrap();
        assert!(frags.len() > 1);
        for f in &frags {
            assert!(f.len() <= 256);
        }

        let mut re = Reassembly::new();
        let mut done = None;
        // Deliver out of order to exercise hole tracking.
        let mut order: Vec<usize> = (0..frags.len()).collect();
        order.reverse();
        for i in order {
            if let Some(d) = re.push(&frags[i]).unwrap() {
                done = Some(d);
            }
        }
        let done = done.expect("reassembly completes");
        assert_eq!(&done[HEADER_LEN..], &payload[..]);
    }

    #[test]
    fn all_or_nothing_reassembly() {
        // Missing one fragment ⇒ nothing is delivered (§4.3 criticism).
        let payload = vec![7u8; 600];
        let mut pkt = Repr {
            total_len: (HEADER_LEN + payload.len()) as u16,
            ..header()
        }
        .to_bytes();
        pkt.extend_from_slice(&payload);
        let frags = fragment(&pkt, 256).unwrap();
        assert!(frags.len() >= 3);
        let mut re = Reassembly::new();
        for (i, f) in frags.iter().enumerate() {
            if i == 1 {
                continue; // lost fragment
            }
            assert!(re.push(f).unwrap().is_none());
        }
    }

    #[test]
    fn dont_frag_blocks_fragmentation() {
        let payload = vec![1u8; 600];
        let mut pkt = Repr {
            total_len: (HEADER_LEN + payload.len()) as u16,
            dont_frag: true,
            ..header()
        }
        .to_bytes();
        pkt.extend_from_slice(&payload);
        assert!(fragment(&pkt, 256).is_err());
    }

    #[test]
    fn total_len_boundaries() {
        // 65535 − HEADER_LEN fits exactly; one more wraps the 16-bit
        // field and must be refused at build time.
        assert_eq!(checked_total_len(MAX_PAYLOAD), Ok(u16::MAX));
        assert_eq!(
            checked_total_len(MAX_PAYLOAD + 1),
            Err(Error::DatagramTooLong)
        );
        assert_eq!(checked_total_len(0), Ok(HEADER_LEN as u16));
    }

    #[test]
    fn zero_mtu_is_rejected() {
        // Even an empty packet must not escape through the fits-fast-path
        // as a zero-byte "fragment".
        assert!(fragment(&[], 0).is_err());
        let pkt = header().to_bytes();
        assert!(fragment(&pkt, 0).is_err());
        // A budget below header + 8 is equally unusable once the packet
        // actually needs splitting.
        let mut big = Repr {
            total_len: (HEADER_LEN + 64) as u16,
            ..header()
        }
        .to_bytes();
        big.extend_from_slice(&[0u8; 64]);
        assert!(fragment(&big, HEADER_LEN + 7).is_err());
    }

    #[test]
    fn reassembly_rejects_forged_total_len() {
        // A total_len pointing past the buffer (or inside the header)
        // must error instead of indexing out of bounds.
        let mut short = Repr {
            total_len: (HEADER_LEN + 64) as u16,
            ..header()
        }
        .to_bytes();
        short.extend_from_slice(&[0u8; 8]); // 56 bytes missing
        let mut re = Reassembly::new();
        assert_eq!(re.push(&short), Err(Error::Truncated));

        let tiny = Repr {
            total_len: (HEADER_LEN - 1) as u16,
            ..header()
        }
        .to_bytes();
        assert_eq!(Reassembly::new().push(&tiny), Err(Error::Truncated));
    }

    #[test]
    fn checksum_known_vector() {
        // RFC 1071 style check on a fixed vector.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let c = internet_checksum(&data);
        let mut with = data.to_vec();
        with.extend_from_slice(&c.to_be_bytes());
        assert_eq!(internet_checksum(&with), 0);
    }

    #[test]
    fn prefix_matching() {
        let a = Address::new(192, 168, 17, 5);
        assert_eq!(a.prefix(16), Address::new(192, 168, 0, 0).0);
        assert_eq!(a.prefix(24), Address::new(192, 168, 17, 0).0);
        assert_eq!(a.prefix(0), 0);
        assert_eq!(a.prefix(32), a.0);
        assert_eq!(a.to_string(), "192.168.17.5");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn fragment_reassemble_identity(
            len in 1usize..2000,
            mtu in 64usize..512,
            seed in any::<u64>(),
        ) {
            let payload: Vec<u8> =
                (0..len).map(|i| (i as u64 ^ seed) as u8).collect();
            let mut pkt = Repr {
                tos: 0,
                total_len: (HEADER_LEN + payload.len()) as u16,
                ident: seed as u16,
                dont_frag: false,
                more_frags: false,
                frag_offset: 0,
                ttl: 9,
                protocol: 6,
                src: Address(seed as u32),
                dst: Address((seed >> 32) as u32),
            }
            .to_bytes();
            pkt.extend_from_slice(&payload);
            let frags = fragment(&pkt, mtu).unwrap();
            let mut re = Reassembly::new();
            let mut out = None;
            for f in &frags {
                prop_assert!(f.len() <= mtu.max(HEADER_LEN + 8));
                if let Some(d) = re.push(f).unwrap() {
                    out = Some(d);
                }
            }
            let out = out.expect("complete");
            prop_assert_eq!(&out[HEADER_LEN..], &payload[..]);
        }

        #[test]
        fn parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = Repr::parse(&bytes);
        }
    }
}
