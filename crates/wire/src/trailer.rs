//! The Sirpent packet trailer.
//!
//! "Each Sirpent packet is structured as a sequence of header segments
//! followed by user data, followed by the Sirpent trailer" (§2). As a
//! packet traverses each router, the router strips the leading header
//! segment and "appends the return port and network header fields to the
//! end of the packet", already modified to constitute a correct *return*
//! hop. The final receiver walks the trailer backwards to reconstruct a
//! route to the source without any routing knowledge of its own — a
//! network-independent reversal (§2).
//!
//! ## Encoding (this reproduction's concretization)
//!
//! The paper does not pin an exact trailer byte layout beyond "a length
//! field (not shown) indicates the size of the Ethernet header, allowing
//! network-independent manipulation of the header/trailer segments". We
//! encode each trailer entry as
//!
//! ```text
//! [ entry payload … ][ len: u16 BE ][ kind: u8 ]
//! ```
//!
//! so it can be *appended* in O(payload) and *walked backwards* from the
//! end of the frame (link layers delimit frames, so the packet end is
//! known; Sirpent carries no explicit length, §2). The source lays down a
//! zero-length **base** entry when building the packet, which terminates
//! the backwards walk; everything before the base is user data (possibly
//! null-padded, which the base boundary makes unambiguous).
//!
//! Entry kinds:
//! * `Base` — boundary marker written by the source.
//! * `ReturnHop` — a reversed header segment appended by a router.
//! * `Truncated` — "a special segment … which is not a legal Sirpent
//!   header segment, indicating that the packet has been truncated" (§2),
//!   appended when a cut-through router discovers mid-flight that the
//!   packet exceeds the next hop's MTU.

use crate::viper::SegmentRepr;
use crate::{Error, Result};

/// Bytes of fixed framing per entry (u16 length + u8 kind).
pub const ENTRY_OVERHEAD: usize = 3;

/// Wire values for entry kinds.
mod kind {
    pub const BASE: u8 = 0;
    pub const RETURN_HOP: u8 = 1;
    pub const TRUNCATED: u8 = 2;
}

/// One entry of the Sirpent trailer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Entry {
    /// The boundary marker laid down by the sending host.
    Base,
    /// A return-hop header segment appended by a router. The segment is a
    /// fully-formed VIPER segment whose `port` is the *return* port and
    /// whose `port_info` has already had its network-specific fields
    /// reversed (e.g. Ethernet src/dst swapped).
    ReturnHop(SegmentRepr),
    /// Truncation marker carrying the number of payload bytes that were
    /// cut off, as known to the truncating router.
    Truncated {
        /// How many bytes were dropped from the tail of the packet.
        lost_bytes: u32,
    },
}

impl Entry {
    /// Bytes appended by [`Entry::append_to`].
    pub fn encoded_len(&self) -> usize {
        self.payload_len() + ENTRY_OVERHEAD
    }

    fn payload_len(&self) -> usize {
        match self {
            Entry::Base => 0,
            Entry::ReturnHop(seg) => seg.buffer_len(),
            Entry::Truncated { .. } => 4,
        }
    }

    fn kind_byte(&self) -> u8 {
        match self {
            Entry::Base => kind::BASE,
            Entry::ReturnHop(_) => kind::RETURN_HOP,
            Entry::Truncated { .. } => kind::TRUNCATED,
        }
    }

    /// Validate that the entry payload fits the u16 length field of the
    /// framing. A return-hop segment can exceed it via the 255/32-bit
    /// length escape; writing `plen as u16` would silently corrupt the
    /// backwards walk, so oversize payloads are rejected instead.
    fn checked_payload_len(&self) -> Result<usize> {
        let plen = self.payload_len();
        if plen > u16::MAX as usize {
            return Err(Error::TrailerPayloadTooLong);
        }
        Ok(plen)
    }

    /// Append this entry to the end of a packet buffer.
    ///
    /// Fails with [`Error::TrailerPayloadTooLong`] when the payload
    /// exceeds the u16 length field; the packet is left untouched.
    pub fn append_to(&self, packet: &mut Vec<u8>) -> Result<()> {
        let plen = self.checked_payload_len()?;
        match self {
            Entry::Base => {}
            Entry::ReturnHop(seg) => {
                let at = packet.len();
                packet.resize(at + plen, 0);
                seg.emit(&mut packet[at..]).expect("sized exactly");
            }
            Entry::Truncated { lost_bytes } => {
                packet.extend_from_slice(&lost_bytes.to_be_bytes());
            }
        }
        packet.extend_from_slice(&(plen as u16).to_be_bytes());
        packet.push(self.kind_byte());
        Ok(())
    }

    /// Append this entry to a shared [`crate::buf::PacketBuf`]: in-place
    /// (no copy, no allocation) in the steady per-hop state where the
    /// router uniquely owns the packet.
    ///
    /// Fails with [`Error::TrailerPayloadTooLong`] when the payload
    /// exceeds the u16 length field; the packet is left untouched.
    pub fn append_to_buf(&self, packet: &mut crate::buf::PacketBuf) -> Result<()> {
        let plen = self.checked_payload_len()?;
        packet.append_with(plen + ENTRY_OVERHEAD, |dst| {
            match self {
                Entry::Base => {}
                Entry::ReturnHop(seg) => {
                    seg.emit(&mut dst[..plen]).expect("sized exactly");
                }
                Entry::Truncated { lost_bytes } => {
                    dst[..4].copy_from_slice(&lost_bytes.to_be_bytes());
                }
            }
            dst[plen..plen + 2].copy_from_slice(&(plen as u16).to_be_bytes());
            dst[plen + 2] = self.kind_byte();
        });
        Ok(())
    }

    /// Decode the entry whose framing ends at `end` (exclusive) within
    /// `buffer`. Returns the entry and the offset at which it *begins*
    /// (i.e. where the previous entry's framing ends).
    pub fn parse_backwards(buffer: &[u8], end: usize) -> Result<(Entry, usize)> {
        if end < ENTRY_OVERHEAD || end > buffer.len() {
            return Err(Error::Truncated);
        }
        let kind_b = buffer[end - 1];
        let plen = u16::from_be_bytes([buffer[end - 3], buffer[end - 2]]) as usize;
        let payload_end = end - ENTRY_OVERHEAD;
        if payload_end < plen {
            return Err(Error::Truncated);
        }
        let start = payload_end - plen;
        let payload = &buffer[start..payload_end];
        let entry = match kind_b {
            kind::BASE => {
                if plen != 0 {
                    return Err(Error::Malformed);
                }
                Entry::Base
            }
            kind::RETURN_HOP => {
                let (seg, used) = SegmentRepr::parse_prefix(payload)?;
                if used != plen {
                    return Err(Error::Malformed);
                }
                Entry::ReturnHop(seg)
            }
            kind::TRUNCATED => {
                if plen != 4 {
                    return Err(Error::Malformed);
                }
                Entry::Truncated {
                    lost_bytes: u32::from_be_bytes([
                        payload[0], payload[1], payload[2], payload[3],
                    ]),
                }
            }
            other => return Err(Error::UnknownTrailerKind(other)),
        };
        Ok((entry, start))
    }
}

/// The fully decoded trailer of a packet.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trailer {
    /// Return-hop segments in the order the routers appended them
    /// (first entry = first router on the forward path).
    pub return_hops: Vec<SegmentRepr>,
    /// Whether a truncation marker was present, and how many bytes it
    /// reported lost.
    pub truncated: Option<u32>,
    /// Offset within the packet buffer where the trailer begins (the
    /// start of the base entry's framing). User data ends at or before
    /// this offset.
    pub start_offset: usize,
}

impl Trailer {
    /// Walk the trailer backwards from the end of `buffer` until the base
    /// marker.
    ///
    /// If a **truncation marker** is encountered, the walk stops there:
    /// everything earlier in the packet was cut mid-flight and is
    /// unreliable, so the trailer reports `truncated = Some(..)` together
    /// with only the return hops appended by routers *after* the
    /// truncating one.
    pub fn parse(buffer: &[u8]) -> Result<Trailer> {
        let mut end = buffer.len();
        let mut hops_rev: Vec<SegmentRepr> = Vec::new();
        loop {
            let (entry, start) = Entry::parse_backwards(buffer, end).map_err(|e| match e {
                Error::Truncated => Error::MissingTrailerBase,
                other => other,
            })?;
            match entry {
                Entry::Base => {
                    hops_rev.reverse();
                    return Ok(Trailer {
                        return_hops: hops_rev,
                        truncated: None,
                        start_offset: start,
                    });
                }
                Entry::ReturnHop(seg) => hops_rev.push(seg),
                Entry::Truncated { lost_bytes } => {
                    hops_rev.reverse();
                    return Ok(Trailer {
                        return_hops: hops_rev,
                        truncated: Some(lost_bytes),
                        start_offset: start,
                    });
                }
            }
            end = start;
        }
    }

    /// Construct the **return route** per §2: "the receiver locates the
    /// beginning of the trailer of (former) header segments and copies
    /// each segment into a separate return address area in *reverse
    /// order*". Because each router already reversed the network-specific
    /// fields and substituted the return port, reversal here is entirely
    /// network-independent.
    pub fn return_route(&self) -> Vec<SegmentRepr> {
        let mut route = self.return_hops.clone();
        route.reverse();
        route
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::viper::{Flags, Priority};

    fn hop(port: u8) -> SegmentRepr {
        SegmentRepr {
            port,
            flags: Flags::default(),
            priority: Priority::NORMAL,
            port_token: vec![port; 8],
            port_info: vec![port ^ 0xFF; 14],
            alt: None,
        }
    }

    #[test]
    fn empty_trailer_parses() {
        let mut buf = b"data".to_vec();
        Entry::Base.append_to(&mut buf).unwrap();
        let t = Trailer::parse(&buf).unwrap();
        assert!(t.return_hops.is_empty());
        assert_eq!(t.truncated, None);
        assert_eq!(t.start_offset, 4);
    }

    #[test]
    fn hops_append_and_reverse() {
        let mut buf = b"payload".to_vec();
        Entry::Base.append_to(&mut buf).unwrap();
        for p in [1u8, 2, 3] {
            Entry::ReturnHop(hop(p)).append_to(&mut buf).unwrap();
        }
        let t = Trailer::parse(&buf).unwrap();
        assert_eq!(
            t.return_hops.iter().map(|s| s.port).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        // Return route is reversed: last router first.
        assert_eq!(
            t.return_route().iter().map(|s| s.port).collect::<Vec<_>>(),
            vec![3, 2, 1]
        );
        assert_eq!(t.start_offset, 7);
    }

    #[test]
    fn truncation_marker_detected() {
        // A truncating router cuts the tail (losing earlier trailer
        // entries) and appends the marker; later routers still append
        // their return hops after it.
        let mut buf = vec![0xAA; 20]; // remains of the cut packet
        Entry::Truncated { lost_bytes: 512 }
            .append_to(&mut buf)
            .unwrap();
        Entry::ReturnHop(hop(9)).append_to(&mut buf).unwrap();
        let t = Trailer::parse(&buf).unwrap();
        assert_eq!(t.truncated, Some(512));
        assert_eq!(t.return_hops.len(), 1, "hops after the marker survive");
        assert_eq!(t.return_hops[0].port, 9);
        assert_eq!(t.start_offset, 20);
    }

    #[test]
    fn missing_base_is_detected() {
        let mut buf = Vec::new();
        Entry::ReturnHop(hop(1)).append_to(&mut buf).unwrap();
        // No base entry anywhere — walk must fail, not loop or panic.
        assert_eq!(Trailer::parse(&buf).unwrap_err(), Error::MissingTrailerBase);
    }

    #[test]
    fn unknown_kind_reported() {
        let mut buf = Vec::new();
        Entry::Base.append_to(&mut buf).unwrap();
        buf.extend_from_slice(&0u16.to_be_bytes());
        buf.push(77);
        assert_eq!(
            Trailer::parse(&buf).unwrap_err(),
            Error::UnknownTrailerKind(77)
        );
    }

    #[test]
    fn null_padding_before_trailer_is_harmless() {
        // §2 footnote: "A packet can be padded with null bytes between the
        // end of the actual data and beginning of the Sirpent trailer
        // without confusion."
        let mut buf = b"data".to_vec();
        buf.extend_from_slice(&[0u8; 32]); // padding
        Entry::Base.append_to(&mut buf).unwrap();
        Entry::ReturnHop(hop(4)).append_to(&mut buf).unwrap();
        let t = Trailer::parse(&buf).unwrap();
        assert_eq!(t.return_hops.len(), 1);
        assert_eq!(t.start_offset, 4 + 32);
    }

    // A 255-escaped port token of T bytes encodes as FIXED_LEN(4) +
    // (4 + T) segment bytes, so T = 65527 lands the entry payload on
    // exactly u16::MAX.
    fn giant_hop(token_len: usize) -> SegmentRepr {
        SegmentRepr {
            port: 9,
            flags: Flags::default(),
            priority: Priority::NORMAL,
            port_token: vec![0xAB; token_len],
            port_info: Vec::new(),
            alt: None,
        }
    }

    #[test]
    fn payload_at_u16_boundary_frames_and_walks() {
        let entry = Entry::ReturnHop(giant_hop(65527));
        assert_eq!(entry.encoded_len(), u16::MAX as usize + ENTRY_OVERHEAD);
        let mut buf = b"data".to_vec();
        Entry::Base.append_to(&mut buf).unwrap();
        entry.append_to(&mut buf).unwrap();
        let t = Trailer::parse(&buf).unwrap();
        assert_eq!(t.return_hops.len(), 1);
        assert_eq!(t.return_hops[0].port_token.len(), 65527);
    }

    #[test]
    fn payload_past_u16_boundary_rejected_packet_untouched() {
        let entry = Entry::ReturnHop(giant_hop(65528)); // plen = 65536
        let mut buf = b"data".to_vec();
        Entry::Base.append_to(&mut buf).unwrap();
        let before = buf.clone();
        assert_eq!(
            entry.append_to(&mut buf).unwrap_err(),
            Error::TrailerPayloadTooLong
        );
        assert_eq!(buf, before, "failed append must leave the packet intact");

        let mut pb = crate::buf::PacketBuf::from_vec(before.clone());
        assert_eq!(
            entry.append_to_buf(&mut pb).unwrap_err(),
            Error::TrailerPayloadTooLong
        );
        assert_eq!(pb.as_slice(), &before[..]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn trailer_roundtrip(ports in proptest::collection::vec(any::<u8>(), 0..20),
                             data in proptest::collection::vec(any::<u8>(), 0..100)) {
            let mut buf = data.clone();
            Entry::Base.append_to(&mut buf).unwrap();
            for &p in &ports {
                Entry::ReturnHop(SegmentRepr::minimal(p)).append_to(&mut buf).unwrap();
            }
            let t = Trailer::parse(&buf).unwrap();
            prop_assert_eq!(t.start_offset, data.len());
            let got: Vec<u8> = t.return_hops.iter().map(|s| s.port).collect();
            prop_assert_eq!(got, ports.clone());
            let rev: Vec<u8> = t.return_route().iter().map(|s| s.port).collect();
            let mut want = ports.clone();
            want.reverse();
            prop_assert_eq!(rev, want);
        }

        #[test]
        fn parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = Trailer::parse(&bytes);
        }
    }
}
