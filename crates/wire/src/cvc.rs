//! Concatenated-virtual-circuit (X.75-style) framing — the second
//! baseline the paper argues against (§1): "The CVC approach requires a
//! circuit setup between endpoints before communication can take place,
//! introducing a full roundtrip delay. It also requires a significant
//! amount of state in the gateways."
//!
//! The format is deliberately minimal: circuits are identified per link by
//! a 16-bit VCI; a call-setup message carries the destination address the
//! switches use to pick the next hop (and allocate per-circuit state);
//! data packets carry only the VCI.

use crate::{Error, Result};

/// Message discriminants.
mod msgtype {
    pub const SETUP: u8 = 1;
    pub const ACCEPT: u8 = 2;
    pub const REJECT: u8 = 3;
    pub const TEARDOWN: u8 = 4;
    pub const DATA: u8 = 5;
}

/// A virtual-circuit identifier, meaningful per link.
pub type Vci = u16;

/// A parsed CVC message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Open a circuit toward `dest` using `vci` on this link. `reserve`
    /// is the bandwidth to reserve in bits/sec (the static resource
    /// allocation the paper criticizes; 0 = none).
    Setup {
        /// VCI chosen by the caller for this link.
        vci: Vci,
        /// Flat destination address (same space as the IP-like baseline).
        dest: u32,
        /// Reserved bandwidth in bits/sec, 0 for best effort.
        reserve: u32,
    },
    /// The circuit is open end-to-end.
    Accept {
        /// Echoed VCI.
        vci: Vci,
    },
    /// The circuit could not be opened (no state, no bandwidth, no route).
    Reject {
        /// Echoed VCI.
        vci: Vci,
        /// Diagnostic code.
        reason: u8,
    },
    /// Release the circuit and its switch state.
    Teardown {
        /// Echoed VCI.
        vci: Vci,
    },
    /// User data on an open circuit.
    Data {
        /// The circuit this belongs to.
        vci: Vci,
        /// Payload bytes.
        payload: Vec<u8>,
    },
}

/// Fixed overhead of a CVC data packet: type byte + VCI. This is the
/// per-packet header-size advantage circuits buy with their setup cost.
pub const DATA_HEADER_LEN: usize = 3;

impl Message {
    /// Bytes `emit` writes.
    pub fn buffer_len(&self) -> usize {
        match self {
            Message::Setup { .. } => 1 + 2 + 4 + 4,
            Message::Accept { .. } | Message::Teardown { .. } => 1 + 2,
            Message::Reject { .. } => 1 + 2 + 1,
            Message::Data { payload, .. } => DATA_HEADER_LEN + payload.len(),
        }
    }

    /// Serialize to a fresh vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(self.buffer_len());
        match self {
            Message::Setup { vci, dest, reserve } => {
                v.push(msgtype::SETUP);
                v.extend_from_slice(&vci.to_be_bytes());
                v.extend_from_slice(&dest.to_be_bytes());
                v.extend_from_slice(&reserve.to_be_bytes());
            }
            Message::Accept { vci } => {
                v.push(msgtype::ACCEPT);
                v.extend_from_slice(&vci.to_be_bytes());
            }
            Message::Reject { vci, reason } => {
                v.push(msgtype::REJECT);
                v.extend_from_slice(&vci.to_be_bytes());
                v.push(*reason);
            }
            Message::Teardown { vci } => {
                v.push(msgtype::TEARDOWN);
                v.extend_from_slice(&vci.to_be_bytes());
            }
            Message::Data { vci, payload } => {
                v.push(msgtype::DATA);
                v.extend_from_slice(&vci.to_be_bytes());
                v.extend_from_slice(payload);
            }
        }
        v
    }

    /// Parse from a byte slice.
    pub fn parse(buffer: &[u8]) -> Result<Message> {
        if buffer.len() < 3 {
            return Err(Error::Truncated);
        }
        let vci = u16::from_be_bytes([buffer[1], buffer[2]]);
        match buffer[0] {
            msgtype::SETUP => {
                if buffer.len() < 11 {
                    return Err(Error::Truncated);
                }
                Ok(Message::Setup {
                    vci,
                    dest: u32::from_be_bytes([buffer[3], buffer[4], buffer[5], buffer[6]]),
                    reserve: u32::from_be_bytes([buffer[7], buffer[8], buffer[9], buffer[10]]),
                })
            }
            msgtype::ACCEPT => Ok(Message::Accept { vci }),
            msgtype::REJECT => {
                if buffer.len() < 4 {
                    return Err(Error::Truncated);
                }
                Ok(Message::Reject {
                    vci,
                    reason: buffer[3],
                })
            }
            msgtype::TEARDOWN => Ok(Message::Teardown { vci }),
            msgtype::DATA => Ok(Message::Data {
                vci,
                payload: buffer[3..].to_vec(),
            }),
            _ => Err(Error::Malformed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_messages_roundtrip() {
        let msgs = [
            Message::Setup {
                vci: 42,
                dest: 0xC0A80105,
                reserve: 1_000_000,
            },
            Message::Accept { vci: 42 },
            Message::Reject { vci: 42, reason: 3 },
            Message::Teardown { vci: 42 },
            Message::Data {
                vci: 42,
                payload: b"circuit bytes".to_vec(),
            },
        ];
        for m in msgs {
            let bytes = m.to_bytes();
            assert_eq!(bytes.len(), m.buffer_len());
            assert_eq!(Message::parse(&bytes).unwrap(), m);
        }
    }

    #[test]
    fn data_header_is_three_bytes() {
        let m = Message::Data {
            vci: 1,
            payload: vec![0; 100],
        };
        assert_eq!(m.buffer_len() - 100, DATA_HEADER_LEN);
    }

    #[test]
    fn junk_rejected() {
        assert!(Message::parse(&[]).is_err());
        assert!(Message::parse(&[9, 0, 1]).is_err());
        assert!(Message::parse(&[msgtype::SETUP, 0, 1]).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn data_roundtrip(vci in any::<u16>(), payload in proptest::collection::vec(any::<u8>(), 0..512)) {
            let m = Message::Data { vci, payload };
            prop_assert_eq!(Message::parse(&m.to_bytes()).unwrap(), m);
        }

        #[test]
        fn parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = Message::parse(&bytes);
        }
    }
}
