//! Zero-copy packet buffers for the per-hop forwarding path.
//!
//! The paper's cost model is that a VIPER router does **constant** work
//! per hop: strip the leading header segment, pick an output port, append
//! a reversed segment to the trailer (§2). A `Vec<u8>` packet makes two
//! of those three steps O(packet length): stripping the front memmoves
//! the whole buffer, and every fan-out/retransmit clones it. This module
//! provides the buffer types that restore the paper's cost model:
//!
//! * [`PacketBuf`] — a shared (`Arc`-backed) byte buffer with a `head`
//!   offset cursor and a `tail` watermark. Stripping a header segment
//!   *advances* `head` (O(1)); truncation *lowers* `tail` (O(1));
//!   trailer appends extend in place while the buffer is uniquely owned
//!   (the steady state between hops) and copy-on-write otherwise.
//!   Cloning is an `Arc` bump — multicast fan-out, retry queues and
//!   transmit all share one allocation.
//! * [`SegmentView`] — a parsed leading VIPER segment whose variable
//!   fields (`portToken`, `portInfo`) are **borrowed** ranges into the
//!   shared store, not per-hop `Vec` copies. The view holds its own
//!   `Arc` so it stays valid even after the packet is advanced past it
//!   or cow-copied elsewhere.
//! * [`FrameBuf`] — a link frame as a small owned header plus a shared
//!   [`PacketBuf`] body, so prepending the link header on transmit does
//!   not copy the packet, and the receiver can take the body back out
//!   zero-copy.
//!
//! ## Ownership and offset semantics
//!
//! A `PacketBuf` is a window `store[head..tail]` into an immutable-once-
//! shared `Arc<Vec<u8>>`. The bytes *before* `head` are the header
//! segments already stripped by upstream routers — they are dead weight
//! carried until the next copy-on-write, mirroring how the real packet
//! shrinks at the front while the trailer grows at the back (total bytes
//! conserved). Mutation rules:
//!
//! * `advance`/`truncate` touch only the offsets — always O(1), never
//!   observable by other holders.
//! * `append` mutates the store **only** when this handle is the unique
//!   owner *and* `tail` is the true end of the store; otherwise it
//!   copies the live window into a fresh store (with headroom) first.
//!   Holders of the old store are unaffected; the appender's `head`
//!   resets to 0.
//!
//! In the steady per-hop state (one router owns the packet between
//! arrival and transmit) appends are in-place and the whole
//! strip→append→forward cycle does O(segment) work, independent of
//! payload length.

use std::sync::Arc;

use crate::viper::{AltBranch, Flags, Priority, Segment, SegmentRepr};
use crate::Result;

/// Headroom added when a copy-on-write happens, so the fresh store can
/// absorb the next few return-hop appends without reallocating.
const COW_HEADROOM: usize = 64;

/// A shared, cheaply-cloneable packet buffer with O(1) front strip and
/// tail truncation. See the [module docs](self) for semantics.
#[derive(Clone, Default)]
pub struct PacketBuf {
    store: Arc<Vec<u8>>,
    head: usize,
    tail: usize,
}

impl PacketBuf {
    /// An empty buffer.
    pub fn new() -> PacketBuf {
        PacketBuf::default()
    }

    /// Take ownership of `bytes` as the live window.
    pub fn from_vec(bytes: Vec<u8>) -> PacketBuf {
        let tail = bytes.len();
        PacketBuf {
            store: Arc::new(bytes),
            head: 0,
            tail,
        }
    }

    /// The live window `store[head..tail]`.
    pub fn as_slice(&self) -> &[u8] {
        // lint: allow(panic-free-dataplane) -- type invariant: every constructor and mutator keeps head <= tail <= store.len()
        &self.store[self.head..self.tail]
    }

    /// Length of the live window.
    pub fn len(&self) -> usize {
        self.tail - self.head
    }

    /// Whether the live window is empty.
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// Strip `n` bytes off the front by advancing the head offset. O(1).
    ///
    /// # Panics
    /// If `n` exceeds the live window.
    pub fn advance(&mut self, n: usize) {
        // lint: allow(panic-free-dataplane) -- documented `# Panics` contract; callers advance by a parsed segment length already validated against the window
        assert!(n <= self.len(), "advance past end of PacketBuf");
        self.head += n;
    }

    /// Keep only the first `keep` bytes of the live window by lowering
    /// the tail watermark. O(1). A `keep` beyond the window is a no-op.
    pub fn truncate(&mut self, keep: usize) {
        if keep < self.len() {
            self.tail = self.head + keep;
        }
    }

    /// Append `bytes` after the live window. In-place when uniquely
    /// owned, copy-on-write otherwise.
    pub fn append(&mut self, bytes: &[u8]) {
        self.append_with(bytes.len(), |dst| dst.copy_from_slice(bytes));
    }

    /// Append `n` bytes produced by `fill` (called on a zeroed window of
    /// exactly `n` bytes). Lets emit-style writers serialize directly
    /// into the store without a temporary `Vec`.
    pub fn append_with(&mut self, n: usize, fill: impl FnOnce(&mut [u8])) {
        match Arc::get_mut(&mut self.store) {
            Some(v) => {
                // Unique owner: drop anything beyond our tail (no other
                // holder can see it) and extend in place.
                v.truncate(self.tail);
                v.resize(self.tail + n, 0);
                // lint: allow(panic-free-dataplane) -- store was just resized to tail + n, so tail is in range
                fill(&mut v[self.tail..]);
                self.tail += n;
            }
            None => {
                // Shared: copy the live window into a fresh store with
                // headroom, then extend that.
                let live = self.len();
                let mut v = Vec::with_capacity(live + n + COW_HEADROOM);
                // lint: allow(panic-free-dataplane) -- type invariant: head <= tail <= store.len()
                v.extend_from_slice(&self.store[self.head..self.tail]);
                v.resize(live + n, 0);
                // lint: allow(panic-free-dataplane) -- fresh store was just resized to live + n, so live is in range
                fill(&mut v[live..]);
                self.store = Arc::new(v);
                self.head = 0;
                self.tail = live + n;
            }
        }
    }

    /// Copy the live window out as an owned `Vec` (edge/interop shim).
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// How many bytes have been stripped off the front of this store
    /// (diagnostic; the paper's "header shrinks, trailer grows").
    pub fn head_offset(&self) -> usize {
        self.head
    }

    /// Whether this handle is the unique owner of the store (appends
    /// will be in-place). Exposed for tests asserting the steady-state
    /// forwarding path never copies.
    pub fn is_unique(&self) -> bool {
        Arc::strong_count(&self.store) == 1
    }

    /// Whether `self` and `other` share one underlying store (fan-out
    /// copies should). Exposed for tests.
    pub fn shares_store_with(&self, other: &PacketBuf) -> bool {
        Arc::ptr_eq(&self.store, &other.store)
    }
}

impl From<Vec<u8>> for PacketBuf {
    fn from(bytes: Vec<u8>) -> PacketBuf {
        PacketBuf::from_vec(bytes)
    }
}

impl From<&[u8]> for PacketBuf {
    fn from(bytes: &[u8]) -> PacketBuf {
        PacketBuf::from_vec(bytes.to_vec())
    }
}

impl core::fmt::Debug for PacketBuf {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PacketBuf")
            .field("len", &self.len())
            .field("head", &self.head)
            .field("bytes", &self.as_slice())
            .finish()
    }
}

impl PartialEq for PacketBuf {
    fn eq(&self, other: &PacketBuf) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for PacketBuf {}

impl std::ops::Deref for PacketBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for PacketBuf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// A parsed leading VIPER header segment whose variable fields are
/// borrowed views into the shared store — no per-hop allocation.
///
/// The view holds its own `Arc` on the store plus absolute offsets, so
/// it remains valid after the originating [`PacketBuf`] advances past
/// the segment (the normal strip flow) or cow-copies elsewhere.
#[derive(Clone)]
pub struct SegmentView {
    store: Arc<Vec<u8>>,
    token: (usize, usize),
    info: (usize, usize),
    total: usize,
    port: u8,
    flags: Flags,
    priority: Priority,
    alt: Option<AltBranch>,
}

impl SegmentView {
    /// Parse the segment at the front of `buf`'s live window.
    pub fn parse(buf: &PacketBuf) -> Result<SegmentView> {
        let seg = Segment::new_checked(buf.as_slice())?;
        let (ts, te, is_, ie) = seg.field_offsets()?;
        let base = buf.head;
        Ok(SegmentView {
            store: Arc::clone(&buf.store),
            token: (base + ts, base + te),
            info: (base + is_, base + ie),
            total: seg.total_len(),
            port: seg.port(),
            flags: seg.flags(),
            priority: seg.priority(),
            alt: seg.alt(),
        })
    }

    /// The output-port identifier.
    pub fn port(&self) -> u8 {
        self.port
    }

    /// The segment flags.
    pub fn flags(&self) -> Flags {
        self.flags
    }

    /// The segment priority.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// The alternate (failover) branch, when the segment carries one.
    pub fn alt(&self) -> Option<AltBranch> {
        self.alt
    }

    /// Encoded length of the segment (what [`PacketBuf::advance`] should
    /// strip). Includes the alternate-branch suffix when present.
    pub fn encoded_len(&self) -> usize {
        self.total
    }

    /// The `portToken` bytes, borrowed from the shared store.
    pub fn port_token(&self) -> &[u8] {
        // lint: allow(panic-free-dataplane) -- offsets came from a checked parse of this store, which is immutable while shared
        &self.store[self.token.0..self.token.1]
    }

    /// The network-specific `portInfo` bytes, borrowed from the shared
    /// store.
    pub fn port_info(&self) -> &[u8] {
        // lint: allow(panic-free-dataplane) -- offsets came from a checked parse of this store, which is immutable while shared
        &self.store[self.info.0..self.info.1]
    }

    /// Materialize an owned [`SegmentRepr`] (edge paths that need
    /// ownership: building return hops with substituted fields, splice
    /// re-encoding, logging).
    pub fn to_repr(&self) -> SegmentRepr {
        SegmentRepr {
            port: self.port,
            flags: self.flags,
            priority: self.priority,
            port_token: self.port_token().to_vec(),
            port_info: self.port_info().to_vec(),
            alt: self.alt,
        }
    }
}

impl core::fmt::Debug for SegmentView {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SegmentView")
            .field("port", &self.port)
            .field("flags", &self.flags)
            .field("priority", &self.priority)
            .field("token_len", &(self.token.1 - self.token.0))
            .field("info_len", &(self.info.1 - self.info.0))
            .finish()
    }
}

/// A link-layer frame: a small owned header (link tag, Ethernet header,
/// …) in front of a shared packet body.
///
/// Prepending a link header onto a shared contiguous buffer cannot be
/// zero-copy, so the frame keeps the header (a few bytes, copied per
/// frame) separate from the body (shared via [`PacketBuf`]). Cloning a
/// `FrameBuf` — which the simulator does once per receiving tap, and the
/// router does per fan-out copy — copies only the header.
#[derive(Clone, Default)]
pub struct FrameBuf {
    header: Vec<u8>,
    body: PacketBuf,
}

impl FrameBuf {
    /// A frame with `header` prepended to `body`.
    pub fn new(header: Vec<u8>, body: PacketBuf) -> FrameBuf {
        FrameBuf { header, body }
    }

    /// Total on-the-wire length.
    pub fn len(&self) -> usize {
        self.header.len() + self.body.len()
    }

    /// Whether the frame has no bytes at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The owned header part (may be empty for frames built from a flat
    /// byte vector).
    pub fn header(&self) -> &[u8] {
        &self.header
    }

    /// The shared body part.
    pub fn body(&self) -> &PacketBuf {
        &self.body
    }

    /// Byte `i` of the frame (header and body concatenated).
    pub fn byte(&self, i: usize) -> Option<u8> {
        match self.header.get(i) {
            Some(&b) => Some(b),
            None => self.body.as_slice().get(i - self.header.len()).copied(),
        }
    }

    /// The first `n` bytes as one contiguous slice, borrowing when the
    /// split allows it (it does whenever the frame was composed with the
    /// link header in `header`, or arrived as one flat buffer) and
    /// copying only in the mixed case. Link-header parsers use this.
    pub fn prefix(&self, n: usize) -> Option<std::borrow::Cow<'_, [u8]>> {
        use std::borrow::Cow;
        if let Some(h) = self.header.get(..n) {
            Some(Cow::Borrowed(h))
        } else if self.header.is_empty() {
            self.body.as_slice().get(..n).map(Cow::Borrowed)
        } else {
            let rest = self.body.as_slice().get(..n - self.header.len())?;
            let mut v = Vec::with_capacity(n);
            v.extend_from_slice(&self.header);
            v.extend_from_slice(rest);
            Some(Cow::Owned(v))
        }
    }

    /// The frame payload after the first `n` bytes, as a shared
    /// [`PacketBuf`]. Zero-copy when the link header/body split matches
    /// (`n == header.len()`) or the frame is one flat buffer; copies
    /// only in the mixed case.
    pub fn strip_header(&self, n: usize) -> Option<PacketBuf> {
        match n.checked_sub(self.header.len()) {
            Some(extra) => {
                if extra > self.body.len() {
                    return None;
                }
                let mut b = self.body.clone();
                b.advance(extra);
                Some(b)
            }
            None => {
                // Header longer than n: keep the header remainder plus
                // the body (rare — only link formats we don't compose).
                let keep = self.header.get(n..)?;
                let mut v = Vec::with_capacity(keep.len() + self.body.len());
                v.extend_from_slice(keep);
                v.extend_from_slice(self.body.as_slice());
                Some(PacketBuf::from_vec(v))
            }
        }
    }

    /// Flatten to one owned byte vector (edge/interop shim, and the
    /// fault-injection corrupt path).
    pub fn to_vec(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(self.len());
        v.extend_from_slice(&self.header);
        v.extend_from_slice(self.body.as_slice());
        v
    }

    /// Whether this frame's body shares a store with `other` (fan-out
    /// copies should). Exposed for tests.
    pub fn shares_body_with(&self, other: &FrameBuf) -> bool {
        self.body.shares_store_with(&other.body)
    }
}

impl From<Vec<u8>> for FrameBuf {
    fn from(bytes: Vec<u8>) -> FrameBuf {
        FrameBuf {
            header: Vec::new(),
            body: PacketBuf::from_vec(bytes),
        }
    }
}

impl From<PacketBuf> for FrameBuf {
    fn from(body: PacketBuf) -> FrameBuf {
        FrameBuf {
            header: Vec::new(),
            body,
        }
    }
}

impl core::fmt::Debug for FrameBuf {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FrameBuf")
            .field("header_len", &self.header.len())
            .field("body_len", &self.body.len())
            .finish()
    }
}

impl PartialEq for FrameBuf {
    fn eq(&self, other: &FrameBuf) -> bool {
        if self.len() != other.len() {
            return false;
        }
        let a = self.header.iter().chain(self.body.as_slice());
        let b = other.header.iter().chain(other.body.as_slice());
        a.eq(b)
    }
}

impl Eq for FrameBuf {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_truncate_are_offset_only() {
        let mut b = PacketBuf::from_vec((0u8..32).collect());
        let peer = b.clone();
        b.advance(5);
        assert_eq!(b.as_slice(), &(5u8..32).collect::<Vec<_>>()[..]);
        b.truncate(10);
        assert_eq!(b.as_slice(), &(5u8..15).collect::<Vec<_>>()[..]);
        assert_eq!(b.head_offset(), 5);
        // The peer still sees the original window.
        assert_eq!(peer.as_slice(), &(0u8..32).collect::<Vec<_>>()[..]);
        assert!(b.shares_store_with(&peer), "offset ops never copy");
    }

    #[test]
    fn append_in_place_when_unique() {
        let mut b = PacketBuf::from_vec(vec![1, 2, 3]);
        assert!(b.is_unique());
        b.append(&[4, 5]);
        assert_eq!(b.as_slice(), &[1, 2, 3, 4, 5]);
        assert_eq!(b.head_offset(), 0, "no cow happened");
    }

    #[test]
    fn append_cows_when_shared_and_preserves_peer() {
        let mut b = PacketBuf::from_vec(vec![1, 2, 3]);
        let peer = b.clone();
        b.advance(1);
        b.append(&[9]);
        assert_eq!(b.as_slice(), &[2, 3, 9]);
        assert_eq!(peer.as_slice(), &[1, 2, 3], "peer unaffected by cow");
        assert!(!b.shares_store_with(&peer));
        assert_eq!(b.head_offset(), 0, "cow rebases the window");
    }

    #[test]
    fn append_after_truncate_drops_hidden_tail() {
        let mut b = PacketBuf::from_vec(vec![1, 2, 3, 4]);
        b.truncate(2);
        b.append(&[7]);
        assert_eq!(b.as_slice(), &[1, 2, 7]);
    }

    #[test]
    fn framebuf_prefix_and_strip() {
        let body = PacketBuf::from_vec(vec![10, 11, 12]);
        let f = FrameBuf::new(vec![1, 2], body);
        assert_eq!(f.len(), 5);
        assert_eq!(&*f.prefix(2).unwrap(), &[1, 2]);
        assert_eq!(&*f.prefix(4).unwrap(), &[1, 2, 10, 11]);
        assert!(f.prefix(6).is_none());
        // Header-aligned strip is zero-copy.
        let p = f.strip_header(2).unwrap();
        assert_eq!(p.as_slice(), &[10, 11, 12]);
        assert!(p.shares_store_with(f.body()));
        // Flat frames strip by advancing.
        let flat = FrameBuf::from(vec![1, 2, 10, 11, 12]);
        let p2 = flat.strip_header(2).unwrap();
        assert_eq!(p2.as_slice(), &[10, 11, 12]);
        assert!(p2.shares_store_with(flat.body()));
        assert_eq!(flat.to_vec(), f.to_vec());
        assert_eq!(flat, f);
    }

    #[test]
    fn segment_view_survives_advance_and_cow() {
        use crate::viper::SegmentRepr;
        let seg = SegmentRepr {
            port: 9,
            port_token: vec![0xAA; 16],
            port_info: vec![0x55; 14],
            ..Default::default()
        };
        let mut bytes = seg.to_bytes();
        bytes.extend_from_slice(b"payload");
        let mut buf = PacketBuf::from_vec(bytes);
        let view = SegmentView::parse(&buf).unwrap();
        assert_eq!(view.port(), 9);
        assert_eq!(view.port_token(), &[0xAA; 16][..]);
        assert_eq!(view.port_info(), &[0x55; 14][..]);
        buf.advance(view.encoded_len());
        assert_eq!(buf.as_slice(), b"payload");
        // Force a cow on the packet; the view still reads its store.
        let _held = buf.clone();
        buf.append(&[1, 2, 3]);
        assert_eq!(view.port_token(), &[0xAA; 16][..]);
        assert_eq!(view.to_repr(), seg);
    }
}
