//! A VMTP-like transport header and trailer.
//!
//! Sirpent "places greater requirements on the transport level" (§4):
//! because the internetwork layer has no checksum, no TTL and no
//! fragmentation, the transport must itself provide
//!
//! * **misdelivery detection** via a "64-bit transport layer identifier
//!   which is unique independent of the (inter)network layer addressing"
//!   (§4.1) — no pseudo-header;
//! * **maximum-packet-lifetime enforcement** via a "32-bit timestamp in
//!   the trailer of the packet (along with the checksum)" representing
//!   "the time in milliseconds since January 1, 1970, modulo 2³²" with 0
//!   reserved to mean *invalid/ignore* (§4.2);
//! * **large-message handling** via packet groups with selective
//!   retransmission instead of network fragmentation (§4.3).
//!
//! The header layout here is a simplification of RFC 1045 that keeps all
//! the fields those functions need.

use crate::{Error, Result};

/// A 64-bit network-independent transport entity identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct EntityId(pub u64);

impl core::fmt::Display for EntityId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "E{:016x}", self.0)
    }
}

/// Packet kind within a message transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A request (client → server) data packet.
    Request,
    /// A response (server → client) data packet.
    Response,
    /// Acknowledgement / selective-retransmission control packet; the
    /// `delivery_mask` reports which group members arrived.
    Ack,
}

impl Kind {
    fn to_u8(self) -> u8 {
        match self {
            Kind::Request => 1,
            Kind::Response => 2,
            Kind::Ack => 3,
        }
    }

    fn from_u8(v: u8) -> Result<Kind> {
        match v {
            1 => Ok(Kind::Request),
            2 => Ok(Kind::Response),
            3 => Ok(Kind::Ack),
            _ => Err(Error::Malformed),
        }
    }
}

/// Maximum packets in one packet group (the delivery mask is 32 bits).
pub const MAX_GROUP: usize = 32;

/// Fixed header length.
pub const HEADER_LEN: usize = 8 + 8 + 4 + 1 + 1 + 1 + 1 + 4 + 4 + 2;

/// Trailer length: 32-bit timestamp + 32-bit checksum (§4.2 / revised
/// VMTP: "a 32-bit timestamp in the trailer of the packet (along with the
/// checksum)").
pub const TRAILER_LEN: usize = 8;

/// Timestamp value reserved to mean "invalid, ignore" — "for use by query
/// operations when a machine is booting before it knows the current time"
/// (§4.2).
pub const TIMESTAMP_INVALID: u32 = 0;

/// An owned VMTP-like header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Sending transport entity (client for requests, server for
    /// responses).
    pub src: EntityId,
    /// Intended receiving transport entity. Misdelivered packets fail
    /// this check regardless of where the network dropped them.
    pub dst: EntityId,
    /// Transaction identifier; reuse is guarded by the MPL mechanism.
    pub transaction: u32,
    /// Request / response / ack.
    pub kind: Kind,
    /// Number of packets in this packet group (1..=32).
    pub group_size: u8,
    /// Index of this packet within its group (0-based).
    pub group_index: u8,
    /// Delivery mask: on `Ack`, the bitmap of received group members; on
    /// data packets, zero.
    pub delivery_mask: u32,
    /// Total length of the logical message carried by the group.
    pub message_len: u32,
    /// Length of this packet's payload.
    pub payload_len: u16,
}

impl Header {
    /// Bytes `emit` writes — always [`HEADER_LEN`].
    pub fn buffer_len(&self) -> usize {
        HEADER_LEN
    }

    /// Emit into the front of `buffer`.
    pub fn emit(&self, buffer: &mut [u8]) -> Result<usize> {
        if buffer.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        if self.group_size == 0
            || self.group_size as usize > MAX_GROUP
            || self.group_index >= self.group_size
        {
            return Err(Error::Malformed);
        }
        buffer[0..8].copy_from_slice(&self.src.0.to_be_bytes());
        buffer[8..16].copy_from_slice(&self.dst.0.to_be_bytes());
        buffer[16..20].copy_from_slice(&self.transaction.to_be_bytes());
        buffer[20] = self.kind.to_u8();
        buffer[21] = self.group_size;
        buffer[22] = self.group_index;
        buffer[23] = 0;
        buffer[24..28].copy_from_slice(&self.delivery_mask.to_be_bytes());
        buffer[28..32].copy_from_slice(&self.message_len.to_be_bytes());
        buffer[32..34].copy_from_slice(&self.payload_len.to_be_bytes());
        Ok(HEADER_LEN)
    }

    /// Parse from the front of `buffer`.
    pub fn parse(buffer: &[u8]) -> Result<Header> {
        if buffer.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let h = Header {
            src: EntityId(u64::from_be_bytes(buffer[0..8].try_into().unwrap())),
            dst: EntityId(u64::from_be_bytes(buffer[8..16].try_into().unwrap())),
            transaction: u32::from_be_bytes(buffer[16..20].try_into().unwrap()),
            kind: Kind::from_u8(buffer[20])?,
            group_size: buffer[21],
            group_index: buffer[22],
            delivery_mask: u32::from_be_bytes(buffer[24..28].try_into().unwrap()),
            message_len: u32::from_be_bytes(buffer[28..32].try_into().unwrap()),
            payload_len: u16::from_be_bytes(buffer[32..34].try_into().unwrap()),
        };
        if h.group_size == 0 || h.group_size as usize > MAX_GROUP || h.group_index >= h.group_size {
            return Err(Error::Malformed);
        }
        Ok(h)
    }
}

/// Fletcher-style 32-bit checksum over transport header + payload +
/// timestamp. (The transport owns end-to-end integrity; the network
/// carries no checksum at all.)
pub fn transport_checksum(data: &[u8]) -> u32 {
    let mut a: u32 = 0xF00D;
    let mut b: u32 = 0xBEEF;
    for &byte in data {
        a = (a.wrapping_add(byte as u32)) % 65521;
        b = (b.wrapping_add(a)) % 65521;
    }
    (b << 16) | a
}

/// A complete VMTP packet: header, payload, trailer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// The transport header.
    pub header: Header,
    /// User bytes.
    pub payload: Vec<u8>,
    /// Creation timestamp, milliseconds since the epoch mod 2³²;
    /// [`TIMESTAMP_INVALID`] means "ignore".
    pub timestamp: u32,
}

impl Packet {
    /// Serialize: header, payload, then the timestamp+checksum trailer.
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        if self.payload.len() != self.header.payload_len as usize {
            return Err(Error::Malformed);
        }
        let mut v = vec![0u8; HEADER_LEN];
        self.header.emit(&mut v)?;
        v.extend_from_slice(&self.payload);
        v.extend_from_slice(&self.timestamp.to_be_bytes());
        let csum = transport_checksum(&v);
        v.extend_from_slice(&csum.to_be_bytes());
        Ok(v)
    }

    /// Parse and verify the end-to-end checksum.
    ///
    /// `buffer` may carry trailing null padding (Sirpent permits padding
    /// between data and its own trailer); the transport's `payload_len`
    /// field delimits the real content, so extra bytes after the trailer
    /// are ignored.
    pub fn parse(buffer: &[u8]) -> Result<Packet> {
        let header = Header::parse(buffer)?;
        let need = HEADER_LEN + header.payload_len as usize + TRAILER_LEN;
        if buffer.len() < need {
            return Err(Error::Truncated);
        }
        let payload_end = HEADER_LEN + header.payload_len as usize;
        let timestamp =
            u32::from_be_bytes(buffer[payload_end..payload_end + 4].try_into().unwrap());
        let claimed =
            u32::from_be_bytes(buffer[payload_end + 4..payload_end + 8].try_into().unwrap());
        if transport_checksum(&buffer[..payload_end + 4]) != claimed {
            return Err(Error::Checksum);
        }
        Ok(Packet {
            header,
            payload: buffer[HEADER_LEN..payload_end].to_vec(),
            timestamp,
        })
    }

    /// Total wire size of this packet.
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.payload.len() + TRAILER_LEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(payload_len: u16) -> Header {
        Header {
            src: EntityId(0x1111_2222_3333_4444),
            dst: EntityId(0x5555_6666_7777_8888),
            transaction: 99,
            kind: Kind::Request,
            group_size: 4,
            group_index: 2,
            delivery_mask: 0,
            message_len: 4000,
            payload_len,
        }
    }

    #[test]
    fn packet_roundtrip() {
        let p = Packet {
            header: header(13),
            payload: b"thirteen byte".to_vec(),
            timestamp: 123_456_789,
        };
        let bytes = p.to_bytes().unwrap();
        assert_eq!(bytes.len(), p.wire_len());
        assert_eq!(Packet::parse(&bytes).unwrap(), p);
    }

    #[test]
    fn corruption_detected_anywhere() {
        let p = Packet {
            header: header(32),
            payload: vec![0xA5; 32],
            timestamp: 42,
        };
        let bytes = p.to_bytes().unwrap();
        let mut survived = 0;
        for i in 0..bytes.len() {
            let mut c = bytes.clone();
            c[i] ^= 0x01;
            if let Ok(q) = Packet::parse(&c) {
                // A flip in padding-insensitive fields may parse but must
                // not produce the same packet silently.
                if q == p {
                    survived += 1;
                }
            }
        }
        assert_eq!(survived, 0, "no single-bit flip may go unnoticed");
    }

    #[test]
    fn trailing_padding_ignored() {
        let p = Packet {
            header: header(5),
            payload: b"hello".to_vec(),
            timestamp: 1,
        };
        let mut bytes = p.to_bytes().unwrap();
        bytes.extend_from_slice(&[0u8; 40]);
        assert_eq!(Packet::parse(&bytes).unwrap(), p);
    }

    #[test]
    fn payload_len_mismatch_rejected() {
        let p = Packet {
            header: header(10),
            payload: vec![0; 5],
            timestamp: 1,
        };
        assert_eq!(p.to_bytes().unwrap_err(), Error::Malformed);
    }

    #[test]
    fn group_bounds_enforced() {
        let mut h = header(0);
        h.group_size = 0;
        assert!(h.emit(&mut [0u8; HEADER_LEN]).is_err());
        h.group_size = 33;
        assert!(h.emit(&mut [0u8; HEADER_LEN]).is_err());
        h.group_size = 4;
        h.group_index = 4;
        assert!(h.emit(&mut [0u8; HEADER_LEN]).is_err());
    }

    #[test]
    fn entity_ids_are_64_bit() {
        // §4.1: "The major cost, the larger size of transport identifiers
        // (64-bits in VMTP versus 16 bits in TCP), is not significant
        // with the higher network data rates."
        assert_eq!(std::mem::size_of::<EntityId>(), 8);
        assert_eq!(EntityId(0xABCD).to_string(), "E000000000000abcd");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn roundtrip(src in any::<u64>(), dst in any::<u64>(), txn in any::<u32>(),
                     gsize in 1u8..=32, payload in proptest::collection::vec(any::<u8>(), 0..600),
                     ts in any::<u32>()) {
            let h = Header {
                src: EntityId(src),
                dst: EntityId(dst),
                transaction: txn,
                kind: Kind::Response,
                group_size: gsize,
                group_index: gsize - 1,
                delivery_mask: 0,
                message_len: payload.len() as u32,
                payload_len: payload.len() as u16,
            };
            let p = Packet { header: h, payload, timestamp: ts };
            let bytes = p.to_bytes().unwrap();
            prop_assert_eq!(Packet::parse(&bytes).unwrap(), p);
        }

        #[test]
        fn parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = Packet::parse(&bytes);
            let _ = Header::parse(&bytes);
        }
    }
}
