//! Whole-packet assembly and the per-router byte operations.
//!
//! A Sirpent packet on the wire (after any link header) is
//!
//! ```text
//! [ seg 1 ][ seg 2 ] … [ seg N ][ user data ][ trailer … ]
//! ```
//!
//! where `seg i` is the VIPER header segment for the *i*-th router on the
//! route and the last segment addresses the destination host itself with
//! the reserved local port 0 (§2.2: "Sirpent unifies inter-host and
//! intra-host addressing" — the final segment's `portInfo` may select the
//! transport endpoint within the host).
//!
//! Routers never re-encode the whole packet: they **strip** the leading
//! segment, **append** a reversed return-hop entry to the trailer, and
//! forward the bytes in between untouched (§2). Those exact byte
//! operations live here so the router crate manipulates real buffers, and
//! header-overhead measurements are honest.

use crate::buf::{PacketBuf, SegmentView};
use crate::trailer::{Entry, Trailer, ENTRY_OVERHEAD};
use crate::viper::{AltBranch, Segment, SegmentRepr, PORT_LOCAL};
use crate::{Error, Result, VIPER_MAX_SEGMENTS, VIPER_TRANSMISSION_UNIT};

/// Builder for a fresh Sirpent packet at the sending host.
#[derive(Debug, Clone, Default)]
pub struct PacketBuilder {
    route: Vec<SegmentRepr>,
    recovery: Vec<SegmentRepr>,
    payload: Vec<u8>,
    enforce_mtu: bool,
}

impl PacketBuilder {
    /// Start building a packet.
    pub fn new() -> PacketBuilder {
        PacketBuilder {
            enforce_mtu: true,
            ..Default::default()
        }
    }

    /// Append one routing hop.
    pub fn segment(mut self, seg: SegmentRepr) -> PacketBuilder {
        self.route.push(seg);
        self
    }

    /// Append a whole route.
    pub fn route(mut self, segs: impl IntoIterator<Item = SegmentRepr>) -> PacketBuilder {
        self.route.extend(segs);
        self
    }

    /// Set the recovery segment list for Slick-Packets failover. Route
    /// segments reference entries of this list via their
    /// [`AltBranch::splice`] index; the list is encoded between the
    /// terminating local segment and the user data (see [`crate::alt`]).
    pub fn recovery(mut self, segs: impl IntoIterator<Item = SegmentRepr>) -> PacketBuilder {
        self.recovery = segs.into_iter().collect();
        self
    }

    /// Set the user data.
    pub fn payload(mut self, data: impl Into<Vec<u8>>) -> PacketBuilder {
        self.payload = data.into();
        self
    }

    /// Disable the 1500-byte transmission-unit check (used by tests that
    /// exercise MTU truncation at routers).
    pub fn without_mtu_check(mut self) -> PacketBuilder {
        self.enforce_mtu = false;
        self
    }

    /// Assemble the packet bytes: route segments, the recovery list (if
    /// any), payload, and the trailer base marker.
    pub fn build(mut self) -> Result<Vec<u8>> {
        if self.route.len() > VIPER_MAX_SEGMENTS || self.recovery.len() > VIPER_MAX_SEGMENTS {
            return Err(Error::TooManySegments);
        }
        if self.route.is_empty() || self.route.last().map(|s| s.port) != Some(PORT_LOCAL) {
            // Every route must terminate with a local-delivery segment.
            return Err(Error::Malformed);
        }
        self.validate_alternates()?;
        if !self.recovery.is_empty() {
            // Stamp the recovery-list descriptor onto the terminating
            // local segment (count in the `port` slot, splice 0).
            if let Some(last) = self.route.last_mut() {
                last.alt = Some(AltBranch {
                    port: self.recovery.len() as u8,
                    splice: 0,
                });
            }
        }
        let header: usize = self
            .route
            .iter()
            .chain(&self.recovery)
            .map(|s| s.buffer_len())
            .sum();
        // Reserve room for the return-hop trailer the route will grow in
        // flight: each transit hop appends roughly its own segment again
        // (token reused, portInfo swapped for the return network header)
        // plus the entry framing. Pre-reserving keeps every per-hop
        // append in-place on the zero-copy path — no reallocation, no
        // memmove, flat per-hop cost.
        let trailer_room: usize = self
            .route
            .iter()
            .map(|s| s.buffer_len() + RETURN_INFO_SLACK + ENTRY_OVERHEAD)
            .sum();
        let mut buf = Vec::with_capacity(header + self.payload.len() + trailer_room + 8);
        for seg in self.route.iter().chain(&self.recovery) {
            let at = buf.len();
            buf.resize(at + seg.buffer_len(), 0);
            seg.emit(&mut buf[at..])?;
        }
        buf.extend_from_slice(&self.payload);
        Entry::Base.append_to(&mut buf)?;
        if self.enforce_mtu && buf.len() > VIPER_TRANSMISSION_UNIT {
            return Err(Error::ExceedsTransmissionUnit);
        }
        Ok(buf)
    }

    /// Check the route/recovery cross-references before encoding: a
    /// branch needs a recovery list, every splice must land on a list
    /// entry with a local-delivery terminator at or after it, the list
    /// itself must be branch-free (the DAG is depth-1), and the
    /// builder-owned descriptor slot on the terminating segment must be
    /// free.
    fn validate_alternates(&self) -> Result<()> {
        if self.route.last().and_then(|s| s.alt).is_some() {
            return Err(Error::Malformed);
        }
        if self.recovery.iter().any(|s| s.alt.is_some()) {
            return Err(Error::Malformed);
        }
        if !self.recovery.is_empty() && self.recovery.last().map(|s| s.port) != Some(PORT_LOCAL) {
            // A terminator-less list would strand the highest splices.
            return Err(Error::Malformed);
        }
        for branch in self.route.iter().filter_map(|s| s.alt) {
            if self.recovery.is_empty() {
                return Err(Error::Malformed);
            }
            if branch.splice as usize >= self.recovery.len() {
                return Err(Error::BadSpliceIndex);
            }
        }
        Ok(())
    }

    /// Assemble the packet as a shared [`PacketBuf`] ready for the
    /// zero-copy forwarding path.
    pub fn build_buf(self) -> Result<PacketBuf> {
        self.build().map(PacketBuf::from_vec)
    }
}

/// Headroom reserved per hop for the return hop's `portInfo` growing
/// relative to the forward segment (e.g. a point-to-point forward hop
/// reversed onto an Ethernet arrival network: 14-byte header + lengths).
const RETURN_INFO_SLACK: usize = 20;

/// A fully parsed view of a Sirpent packet (owned representation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketView {
    /// Remaining route: the header segments still at the front, ending
    /// with the local-delivery segment (its recovery descriptor, if any,
    /// is normalized away — see [`PacketView::recovery`]).
    pub route: Vec<SegmentRepr>,
    /// The recovery segment list encoded after the route (empty for
    /// packets without alternates).
    pub recovery: Vec<SegmentRepr>,
    /// Offset where user data begins.
    pub data_start: usize,
    /// Offset where user data ends (= trailer start; may include null
    /// padding the transport layer trims via its own length field).
    pub data_end: usize,
    /// The decoded trailer.
    pub trailer: Trailer,
}

impl PacketView {
    /// Parse a complete Sirpent packet.
    pub fn parse(buffer: &[u8]) -> Result<PacketView> {
        let (route, recovery, data_start) = parse_route_full(buffer)?;
        let trailer = Trailer::parse(buffer)?;
        if trailer.start_offset < data_start {
            return Err(Error::Malformed);
        }
        Ok(PacketView {
            route,
            recovery,
            data_start,
            data_end: trailer.start_offset,
            trailer,
        })
    }

    /// The user-data bytes of `buffer` (which must be the same buffer
    /// passed to [`PacketView::parse`]).
    pub fn data<'a>(&self, buffer: &'a [u8]) -> &'a [u8] {
        &buffer[self.data_start..self.data_end]
    }
}

/// Walk the leading header segments of a packet. Segments are read until
/// (and including) the local-delivery segment (`port == 0`), then any
/// recovery list the local segment's descriptor announces. Returns the
/// route and the offset of the first byte after route **and** recovery
/// (i.e. where user data begins). See [`parse_route_full`] to also get
/// the recovery segments.
pub fn parse_route(buffer: &[u8]) -> Result<(Vec<SegmentRepr>, usize)> {
    let (route, _, at) = parse_route_full(buffer)?;
    Ok((route, at))
}

/// [`parse_route`] plus the decoded recovery segment list. The
/// terminating local segment's repr is normalized (its descriptor
/// branch is removed) so a route parsed back equals the one handed to
/// [`PacketBuilder`].
pub fn parse_route_full(buffer: &[u8]) -> Result<(Vec<SegmentRepr>, Vec<SegmentRepr>, usize)> {
    let mut at = 0usize;
    let mut route = Vec::new();
    loop {
        let seg = Segment::new_checked(buffer.get(at..).ok_or(Error::Truncated)?)?;
        let repr = SegmentRepr::parse(&seg)?;
        at += seg.total_len();
        let local = repr.port == PORT_LOCAL;
        route.push(repr);
        // Enforce the ≤48-segment budget *after* the push so a route of
        // exactly 48 segments passes and 49 is rejected even when the
        // 49th is the terminating local segment.
        if route.len() > VIPER_MAX_SEGMENTS {
            return Err(Error::TooManySegments);
        }
        if local {
            break;
        }
    }
    let mut recovery = Vec::new();
    if let Some(descriptor) = route.last_mut().and_then(|s| s.alt.take()) {
        let count = descriptor.port as usize;
        if count > VIPER_MAX_SEGMENTS {
            return Err(Error::TooManySegments);
        }
        for _ in 0..count {
            let seg = Segment::new_checked(buffer.get(at..).ok_or(Error::Truncated)?)?;
            recovery.push(SegmentRepr::parse(&seg)?);
            at += seg.total_len();
        }
    }
    Ok((route, recovery, at))
}

/// Router operation: strip the leading header segment off a packet,
/// returning the segment and leaving `packet` holding the rest (§2: "the
/// router removes the network header from the front of the packet as well
/// as the port, typeOfService and portToken fields").
pub fn strip_front_segment(packet: &mut Vec<u8>) -> Result<SegmentRepr> {
    let seg = Segment::new_checked(&packet[..])?;
    let len = seg.total_len();
    let repr = SegmentRepr::parse(&seg)?;
    packet.drain(..len);
    Ok(repr)
}

/// Zero-copy successor of [`strip_front_segment`]: strip the leading
/// header segment off a shared [`PacketBuf`] by advancing its head
/// offset — O(1), no memmove — and return a [`SegmentView`] whose
/// variable fields borrow the shared store instead of allocating.
pub fn strip_front_segment_buf(packet: &mut PacketBuf) -> Result<SegmentView> {
    let view = SegmentView::parse(packet)?;
    packet.advance(view.encoded_len());
    Ok(view)
}

/// Peek at the leading header segment without consuming it. This is what
/// a cut-through switch does: the decision fields arrive first and the
/// switch acts while the rest of the packet is still in flight.
pub fn peek_front_segment(packet: &[u8]) -> Result<SegmentRepr> {
    let seg = Segment::new_checked(packet)?;
    SegmentRepr::parse(&seg)
}

/// Router operation: append a reversed return-hop segment to the trailer
/// (§2: the router "revises the network-specific portion … so that it
/// constitutes a correct return hop through this router and appends the
/// return port and network header fields to the end of the packet").
pub fn append_return_hop(packet: &mut Vec<u8>, return_hop: SegmentRepr) -> Result<()> {
    Entry::ReturnHop(return_hop).append_to(packet)
}

/// Zero-copy successor of [`append_return_hop`]: appends in place when
/// the router uniquely owns the packet (the steady per-hop state).
pub fn append_return_hop_buf(packet: &mut PacketBuf, return_hop: SegmentRepr) -> Result<()> {
    Entry::ReturnHop(return_hop).append_to_buf(packet)
}

/// Router operation: mark a packet as truncated after `keep` bytes. The
/// tail is dropped and the truncation marker appended so "the receiver can
/// detect packet truncation even when it only affects the packet trailer"
/// (§2).
pub fn truncate_packet(packet: &mut Vec<u8>, keep: usize) {
    let lost = packet.len().saturating_sub(keep) as u32;
    packet.truncate(keep);
    Entry::Truncated { lost_bytes: lost }
        .append_to(packet)
        .expect("4-byte payload always fits the length field");
}

/// Zero-copy successor of [`truncate_packet`]: lowers the tail watermark
/// (O(1)) and appends the truncation marker in place.
pub fn truncate_packet_buf(packet: &mut PacketBuf, keep: usize) {
    let lost = packet.len().saturating_sub(keep) as u32;
    packet.truncate(keep);
    Entry::Truncated { lost_bytes: lost }
        .append_to_buf(packet)
        .expect("4-byte payload always fits the length field");
}

/// Receiver operation: given a delivered packet (single local segment at
/// the front), produce the route for a **reply** back to the source. The
/// trailer hops are reversed; the local segment that addressed *us* is
/// replaced at the end of the return route by a fresh local segment for
/// the peer (constructed by the caller's transport from the original
/// first-hop information if intra-host addressing is needed).
pub fn reply_route(view: &PacketView) -> Vec<SegmentRepr> {
    let mut route = view.trailer.return_route();
    route.push(SegmentRepr::minimal(PORT_LOCAL));
    route
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::viper::Flags;

    fn seg(port: u8) -> SegmentRepr {
        SegmentRepr {
            port,
            flags: Flags {
                vnt: true,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn local() -> SegmentRepr {
        SegmentRepr::minimal(PORT_LOCAL)
    }

    #[test]
    fn build_and_parse_two_hop_packet() {
        let bytes = PacketBuilder::new()
            .segment(seg(3))
            .segment(seg(1))
            .segment(local())
            .payload(b"hello sirpent".to_vec())
            .build()
            .unwrap();
        let view = PacketView::parse(&bytes).unwrap();
        assert_eq!(view.route.len(), 3);
        assert_eq!(view.route[0].port, 3);
        assert_eq!(view.route[2].port, PORT_LOCAL);
        assert_eq!(view.data(&bytes), b"hello sirpent");
        assert!(view.trailer.return_hops.is_empty());
    }

    #[test]
    fn route_must_end_local() {
        let err = PacketBuilder::new()
            .segment(seg(3))
            .payload(b"x".to_vec())
            .build()
            .unwrap_err();
        assert_eq!(err, Error::Malformed);
    }

    #[test]
    fn empty_route_rejected() {
        assert_eq!(
            PacketBuilder::new()
                .payload(b"x".to_vec())
                .build()
                .unwrap_err(),
            Error::Malformed
        );
    }

    #[test]
    fn too_many_segments_rejected() {
        let mut b = PacketBuilder::new().without_mtu_check();
        for _ in 0..49 {
            b = b.segment(seg(1));
        }
        let err = b.segment(local()).build().unwrap_err();
        assert_eq!(err, Error::TooManySegments);
    }

    /// Emit a route of `transit` forwarding segments plus the
    /// terminating local segment as raw bytes, bypassing the builder, so
    /// `parse_route`'s own bound is what gets exercised.
    fn raw_route(transit: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut emit = |s: SegmentRepr| {
            let at = buf.len();
            buf.resize(at + s.buffer_len(), 0);
            s.emit(&mut buf[at..]).unwrap();
        };
        for _ in 0..transit {
            emit(seg(1));
        }
        emit(local());
        buf
    }

    #[test]
    fn steady_state_hops_never_copy_or_reallocate() {
        // Per-hop forwarding on a uniquely-owned PacketBuf must be pure
        // offset motion: the strip advances `head`, the trailer append
        // lands in the pre-reserved tail. A COW would rebase `head` to 0
        // and a reallocation would move the store base address — assert
        // neither happens over a full 8-hop route.
        let mut b = PacketBuilder::new().without_mtu_check();
        for p in 1..=8u8 {
            b = b.segment(seg(p));
        }
        let mut pkt = b
            .segment(local())
            .payload(vec![0x5A; 600])
            .build_buf()
            .unwrap();
        let base = pkt.as_slice().as_ptr() as usize - pkt.head_offset();
        for i in 0..8 {
            let view = strip_front_segment_buf(&mut pkt).unwrap();
            let repr = view.to_repr();
            drop(view); // router drops its borrow before appending
            append_return_hop_buf(&mut pkt, repr).unwrap();
            assert!(pkt.is_unique(), "hop {i}: store must stay uniquely owned");
            assert!(pkt.head_offset() > 0, "hop {i}: COW rebased the head");
            assert_eq!(
                pkt.as_slice().as_ptr() as usize - pkt.head_offset(),
                base,
                "hop {i}: append reallocated the store"
            );
        }
    }

    #[test]
    fn parse_route_accepts_exactly_48_segments() {
        let buf = raw_route(VIPER_MAX_SEGMENTS - 1);
        let (route, _) = parse_route(&buf).unwrap();
        assert_eq!(route.len(), VIPER_MAX_SEGMENTS);
    }

    #[test]
    fn parse_route_rejects_49_segments_even_local_terminated() {
        // Regression: the bound used to be checked before the push, so a
        // 48-transit route whose 49th segment was the terminating local
        // one slipped through one over the §2.3 budget.
        let buf = raw_route(VIPER_MAX_SEGMENTS);
        assert_eq!(parse_route(&buf).unwrap_err(), Error::TooManySegments);
    }

    #[test]
    fn mtu_enforced_and_escapable() {
        let big = vec![0u8; 1600];
        let err = PacketBuilder::new()
            .segment(local())
            .payload(big.clone())
            .build()
            .unwrap_err();
        assert_eq!(err, Error::ExceedsTransmissionUnit);
        let ok = PacketBuilder::new()
            .without_mtu_check()
            .segment(local())
            .payload(big)
            .build();
        assert!(ok.is_ok());
    }

    #[test]
    fn simulated_router_pass() {
        // Emulate what one router does, then check receiver-side reversal.
        let mut pkt = PacketBuilder::new()
            .segment(seg(7))
            .segment(local())
            .payload(b"data".to_vec())
            .build()
            .unwrap();

        // Router: strip front, append reversed hop with the return port.
        let front = strip_front_segment(&mut pkt).unwrap();
        assert_eq!(front.port, 7);
        let return_hop = SegmentRepr {
            port: 2, // the port the packet arrived on
            ..front.clone()
        };
        append_return_hop(&mut pkt, return_hop).unwrap();

        // Receiver: only the local segment remains up front.
        let view = PacketView::parse(&pkt).unwrap();
        assert_eq!(view.route.len(), 1);
        assert_eq!(view.route[0].port, PORT_LOCAL);
        assert_eq!(view.data(&pkt), b"data");
        assert_eq!(view.trailer.return_hops.len(), 1);
        assert_eq!(view.trailer.return_hops[0].port, 2);

        // Reply route: reversed hops + fresh local segment.
        let reply = reply_route(&view);
        assert_eq!(reply.len(), 2);
        assert_eq!(reply[0].port, 2);
        assert_eq!(reply[1].port, PORT_LOCAL);
    }

    #[test]
    fn multi_hop_reversal_order() {
        let mut pkt = PacketBuilder::new()
            .segment(seg(10))
            .segment(seg(11))
            .segment(seg(12))
            .segment(local())
            .payload(b"p".to_vec())
            .build()
            .unwrap();
        // Three routers, arriving on ports 20, 21, 22 respectively.
        for arrive_port in [20u8, 21, 22] {
            let front = strip_front_segment(&mut pkt).unwrap();
            append_return_hop(
                &mut pkt,
                SegmentRepr {
                    port: arrive_port,
                    ..front
                },
            )
            .unwrap();
        }
        let view = PacketView::parse(&pkt).unwrap();
        let reply = reply_route(&view);
        // Return route visits the last router first.
        assert_eq!(
            reply.iter().map(|s| s.port).collect::<Vec<_>>(),
            vec![22, 21, 20, 0]
        );
    }

    #[test]
    fn truncation_roundtrip() {
        let mut pkt = PacketBuilder::new()
            .segment(local())
            .payload(vec![9u8; 100])
            .build()
            .unwrap();
        let orig = pkt.len();
        truncate_packet(&mut pkt, 40);
        // The trailer base was cut off with the tail; the walk stops at
        // the truncation marker and reports the loss.
        let t = Trailer::parse(&pkt).unwrap();
        assert_eq!(t.truncated, Some((orig - 40) as u32));
        assert!(t.return_hops.is_empty());
        assert!(pkt.len() < orig);
    }

    #[test]
    fn recovery_list_roundtrips_and_normalizes_descriptor() {
        use crate::viper::AltBranch;
        let bytes = PacketBuilder::new()
            .segment(SegmentRepr {
                port: 2,
                alt: Some(AltBranch { port: 3, splice: 0 }),
                ..Default::default()
            })
            .segment(local())
            .recovery(vec![SegmentRepr::minimal(2), local()])
            .payload(b"pay".to_vec())
            .build()
            .unwrap();
        let view = PacketView::parse(&bytes).unwrap();
        assert_eq!(view.route.len(), 2);
        assert_eq!(view.route[0].alt, Some(AltBranch { port: 3, splice: 0 }));
        assert_eq!(
            view.route[1].alt, None,
            "descriptor is builder-owned and parses back out"
        );
        assert_eq!(view.recovery.len(), 2);
        assert_eq!(view.recovery[1].port, PORT_LOCAL);
        assert_eq!(view.data(&bytes), b"pay");
    }

    #[test]
    fn branch_splice_one_past_recovery_list_rejected() {
        use crate::viper::AltBranch;
        let err = PacketBuilder::new()
            .segment(SegmentRepr {
                port: 2,
                alt: Some(AltBranch { port: 3, splice: 2 }),
                ..Default::default()
            })
            .segment(local())
            .recovery(vec![SegmentRepr::minimal(2), local()])
            .payload(b"x".to_vec())
            .build()
            .unwrap_err();
        assert_eq!(err, Error::BadSpliceIndex);
    }

    #[test]
    fn branch_without_recovery_list_rejected() {
        use crate::viper::AltBranch;
        let err = PacketBuilder::new()
            .segment(SegmentRepr {
                port: 2,
                alt: Some(AltBranch { port: 3, splice: 0 }),
                ..Default::default()
            })
            .segment(local())
            .payload(b"x".to_vec())
            .build()
            .unwrap_err();
        assert_eq!(err, Error::Malformed);
    }

    #[test]
    fn recovery_list_must_end_local_and_be_branch_free() {
        use crate::viper::AltBranch;
        let err = PacketBuilder::new()
            .segment(seg(2))
            .segment(local())
            .recovery(vec![SegmentRepr::minimal(2)])
            .payload(b"x".to_vec())
            .build()
            .unwrap_err();
        assert_eq!(err, Error::Malformed);
        let err = PacketBuilder::new()
            .segment(seg(2))
            .segment(local())
            .recovery(vec![
                SegmentRepr {
                    port: 2,
                    alt: Some(AltBranch { port: 4, splice: 0 }),
                    ..Default::default()
                },
                local(),
            ])
            .payload(b"x".to_vec())
            .build()
            .unwrap_err();
        assert_eq!(err, Error::Malformed);
    }

    #[test]
    fn recovery_list_at_max_count_roundtrips_and_over_rejected() {
        use crate::viper::AltBranch;
        let full: Vec<SegmentRepr> = (0..VIPER_MAX_SEGMENTS - 1)
            .map(|_| SegmentRepr::minimal(2))
            .chain([local()])
            .collect();
        let bytes = PacketBuilder::new()
            .without_mtu_check()
            .segment(SegmentRepr {
                port: 2,
                alt: Some(AltBranch {
                    port: 3,
                    splice: (VIPER_MAX_SEGMENTS - 1) as u8,
                }),
                ..Default::default()
            })
            .segment(local())
            .recovery(full.clone())
            .payload(b"x".to_vec())
            .build()
            .unwrap();
        let view = PacketView::parse(&bytes).unwrap();
        assert_eq!(view.recovery.len(), VIPER_MAX_SEGMENTS);

        let mut over = full;
        over.insert(0, SegmentRepr::minimal(2));
        let err = PacketBuilder::new()
            .without_mtu_check()
            .segment(seg(2))
            .segment(local())
            .recovery(over)
            .payload(b"x".to_vec())
            .build()
            .unwrap_err();
        assert_eq!(err, Error::TooManySegments);
    }

    #[test]
    fn every_transit_hop_can_carry_a_branch() {
        use crate::viper::AltBranch;
        // Max alternate count: all 47 transit hops of a full-size route
        // marked, each splicing one entry deeper.
        let mut b = PacketBuilder::new().without_mtu_check();
        for i in 0..VIPER_MAX_SEGMENTS - 1 {
            b = b.segment(SegmentRepr {
                port: 2,
                alt: Some(AltBranch {
                    port: 3,
                    splice: i.min(VIPER_MAX_SEGMENTS - 1) as u8,
                }),
                ..Default::default()
            });
        }
        let recovery: Vec<SegmentRepr> = (0..VIPER_MAX_SEGMENTS - 1)
            .map(|_| SegmentRepr::minimal(2))
            .chain([local()])
            .collect();
        let bytes = b
            .segment(local())
            .recovery(recovery)
            .payload(b"x".to_vec())
            .build()
            .unwrap();
        let view = PacketView::parse(&bytes).unwrap();
        assert_eq!(view.route.len(), VIPER_MAX_SEGMENTS);
        assert!(view.route[..VIPER_MAX_SEGMENTS - 1]
            .iter()
            .all(|s| s.alt.is_some()));
    }

    #[test]
    fn peek_does_not_consume() {
        let pkt = PacketBuilder::new()
            .segment(seg(5))
            .segment(local())
            .payload(b"z".to_vec())
            .build()
            .unwrap();
        let before = pkt.clone();
        let front = peek_front_segment(&pkt).unwrap();
        assert_eq!(front.port, 5);
        assert_eq!(pkt, before);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn full_path_reversal(ports in proptest::collection::vec(1u8..=255, 1..10),
                              arrive in proptest::collection::vec(1u8..=255, 10),
                              data in proptest::collection::vec(any::<u8>(), 0..200)) {
            // Build a route of N transit hops + local, push it through N
            // emulated routers, check the receiver reconstructs the exact
            // reversed arrival-port sequence.
            let mut b = PacketBuilder::new().without_mtu_check();
            for &p in &ports {
                b = b.segment(SegmentRepr::minimal(p));
            }
            let mut pkt = b
                .segment(SegmentRepr::minimal(PORT_LOCAL))
                .payload(data.clone())
                .build()
                .unwrap();

            for i in 0..ports.len() {
                let front = strip_front_segment(&mut pkt).unwrap();
                prop_assert_eq!(front.port, ports[i]);
                append_return_hop(&mut pkt, SegmentRepr { port: arrive[i], ..front }).unwrap();
            }

            let view = PacketView::parse(&pkt).unwrap();
            prop_assert_eq!(view.data(&pkt), &data[..]);
            let reply = reply_route(&view);
            let got: Vec<u8> = reply.iter().map(|s| s.port).collect();
            let mut want: Vec<u8> = arrive[..ports.len()].to_vec();
            want.reverse();
            want.push(PORT_LOCAL);
            prop_assert_eq!(got, want);
        }

        #[test]
        fn parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = PacketView::parse(&bytes);
            let _ = parse_route(&bytes);
        }

        /// The zero-copy forwarding path (PacketBuf offset moves +
        /// in-place/COW appends) must be byte-for-byte identical to the
        /// original Vec path across strip / return-hop append / truncate
        /// at every hop, including the receiver's reply route.
        #[test]
        fn buf_path_matches_vec_path(ports in proptest::collection::vec(1u8..=255, 1..10),
                                     arrive in proptest::collection::vec(1u8..=255, 10),
                                     trunc_at in 0usize..20, // >=10 means "never truncate"
                                     data in proptest::collection::vec(any::<u8>(), 0..200)) {
            let mut b = PacketBuilder::new().without_mtu_check();
            for &p in &ports {
                b = b.segment(SegmentRepr::minimal(p));
            }
            let built = b
                .segment(SegmentRepr::minimal(PORT_LOCAL))
                .payload(data.clone())
                .build()
                .unwrap();
            let mut vec_pkt = built.clone();
            let mut buf_pkt = PacketBuf::from_vec(built);

            for (i, &arrival_port) in arrive.iter().take(ports.len()).enumerate() {
                let front = strip_front_segment(&mut vec_pkt).unwrap();
                let view = strip_front_segment_buf(&mut buf_pkt).unwrap();
                prop_assert_eq!(view.port(), front.port);
                prop_assert_eq!(view.to_repr(), front.clone());
                drop(view); // release the store before the append, as the router does
                let rh = SegmentRepr { port: arrival_port, ..front };
                append_return_hop(&mut vec_pkt, rh.clone()).unwrap();
                append_return_hop_buf(&mut buf_pkt, rh).unwrap();
                if trunc_at == i && vec_pkt.len() > 8 {
                    let keep = vec_pkt.len() - 4;
                    truncate_packet(&mut vec_pkt, keep);
                    truncate_packet_buf(&mut buf_pkt, keep);
                }
                prop_assert_eq!(&vec_pkt[..], buf_pkt.as_slice());
            }

            // A mid-flight truncation may have cut the trailer walk; both
            // paths must then agree on the failure, not just on success.
            match (PacketView::parse(&vec_pkt), PacketView::parse(&buf_pkt)) {
                (Ok(vv), Ok(bv)) => prop_assert_eq!(reply_route(&vv), reply_route(&bv)),
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => prop_assert!(false, "paths diverged: vec={:?} buf={:?}",
                                       a.map(|_| ()), b.map(|_| ())),
            }
        }

        /// Hostile input must never panic the PacketBuf path either.
        #[test]
        fn buf_path_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let mut pkt = PacketBuf::from_vec(bytes);
            while let Ok(seg) = strip_front_segment_buf(&mut pkt) {
                if seg.encoded_len() == 0 || pkt.is_empty() {
                    break;
                }
            }
        }
    }
}
