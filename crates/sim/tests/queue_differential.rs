//! Heap-vs-calendar differential property suite (queue level) and the
//! sequence-allocation regression tests.
//!
//! The calendar queue replaces the reference `BinaryHeap` on the
//! engine's hot path; the only acceptable difference is speed. These
//! tests drive both implementations through adversarial random
//! schedules — same-tick bursts, far-future timers beyond the wheel
//! horizon, pushes landing at the instant just popped (how chaos
//! injects work) — and demand identical pop sequences. A second group
//! locks the `Scheduled` seq contract: the u64 sequence is allocated
//! strictly monotonically for the whole run, never rewound by chaos
//! purges or restarts, so same-instant tie-breaks stay deterministic.

use std::any::Any;

use sirpent_sim::queue::{CalendarQueue, EventQueue, HeapQueue, Keyed, SLOTS, SLOT_SHIFT};
use sirpent_sim::{
    ChaosAction, ChaosEvent, Context, Event, FaultSchedule, Node, QueueKind, SimTime, Simulator,
};

/// A queue item carrying its own key — what `Scheduled` looks like to
/// the queue.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Item {
    time: u64,
    seq: u64,
}

impl Keyed for Item {
    fn key(&self) -> (u64, u64) {
        (self.time, self.seq)
    }
}

/// Small deterministic xorshift64* generator — no external RNG in the
/// differential driver, so a failing seed is trivially replayable.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Drive both queues through an identical schedule derived from `seed`
/// and assert every pop matches. The schedule respects the engine's
/// caller contract (pushed keys are >= the last popped key) while
/// hitting the adversarial shapes:
///
/// * bursts of same-instant pushes (tie-break purely by seq),
/// * far-future times beyond the wheel horizon (overflow level),
/// * pushes at exactly the just-popped instant (chaos-style injection),
/// * drain-to-empty followed by re-push (wheel window jumps).
fn differential_run(seed: u64, ops: usize) {
    let mut rng = Rng(seed | 1);
    let mut heap: HeapQueue<Item> = HeapQueue::new();
    let mut wheel: CalendarQueue<Item> = CalendarQueue::new();
    let mut seq = 0u64;
    let mut floor = 0u64; // last popped time: pushes must not precede it
    let horizon = (SLOTS as u64) << SLOT_SHIFT;

    for _ in 0..ops {
        match rng.below(100) {
            // 55%: push a small cluster.
            0..=54 => {
                let base = match rng.below(10) {
                    // same instant as the floor (chaos-style)
                    0..=2 => floor,
                    // inside the wheel window
                    3..=7 => floor + rng.below(horizon / 2),
                    // far future: overflow level, sometimes several
                    // horizons out
                    _ => floor + horizon + rng.below(horizon * 3),
                };
                let burst = 1 + rng.below(4);
                for _ in 0..burst {
                    let item = Item { time: base, seq };
                    seq += 1;
                    heap.push(item.clone());
                    wheel.push(item);
                }
            }
            // 35%: pop once from both, compare.
            55..=89 => {
                let a = heap.pop();
                let b = wheel.pop();
                assert_eq!(a, b, "seed {seed}: pop diverged");
                if let Some(it) = a {
                    assert!(it.time >= floor, "seed {seed}: time went backwards");
                    floor = it.time;
                }
            }
            // 10%: drain a run (forces wheel window advances/jumps).
            _ => {
                let n = rng.below(16);
                for _ in 0..n {
                    let a = heap.pop();
                    let b = wheel.pop();
                    assert_eq!(a, b, "seed {seed}: drain diverged");
                    if let Some(it) = a {
                        floor = it.time;
                    }
                }
            }
        }
        assert_eq!(heap.len(), wheel.len(), "seed {seed}: length diverged");
        assert_eq!(heap.min_key(), wheel.min_key(), "seed {seed}: min diverged");
    }
    // Final full drain must agree to the last item.
    loop {
        let a = heap.pop();
        let b = wheel.pop();
        assert_eq!(a, b, "seed {seed}: final drain diverged");
        if a.is_none() {
            break;
        }
    }
}

#[test]
fn random_schedules_identical_pop_order_32_seeds() {
    for seed in 0..32u64 {
        differential_run(seed, 4_000);
    }
}

// ---------------------------------------------------------------------
// Satellite: seq allocation across chaos purges/restarts.
// ---------------------------------------------------------------------

/// Records every timer it sees; key 99 fans out three more timers at
/// the probe instant — allocating fresh seqs *mid-run*, after chaos has
/// crashed and restarted another node.
#[derive(Default)]
struct TimerLog {
    seen: Vec<(SimTime, u64)>,
    fan_out_at: Option<SimTime>,
}

impl Node for TimerLog {
    fn on_event(&mut self, ctx: &mut Context<'_>, ev: Event) {
        if let Event::Timer { key } = ev {
            self.seen.push((ctx.now(), key));
            if key == 99 {
                if let Some(at) = self.fan_out_at {
                    for k in 10..13u64 {
                        ctx.schedule_at(at, k);
                    }
                }
            }
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

const PROBE: SimTime = SimTime(5_000_000);

/// One node's observed `(fire_time, timer_key)` log.
type TimerTrace = Vec<(SimTime, u64)>;

/// One run: node X holds three pre-scheduled timers at the probe
/// instant plus three scheduled mid-run (after a crash/restart cycle on
/// node Y); node Y holds timers scheduled before its crash.
fn chaos_restart_run(kind: QueueKind) -> (TimerTrace, TimerTrace) {
    let mut sim = Simulator::with_queue(7, kind);
    let x = sim.add_node(Box::<TimerLog>::default());
    let y = sim.add_node(Box::<TimerLog>::default());
    sim.node_mut::<TimerLog>(x).fan_out_at = Some(PROBE);

    // Scheduled in this order at build time: seqs are consecutive.
    sim.kick(PROBE, x, 1);
    sim.kick(PROBE, x, 2);
    sim.kick(PROBE, x, 3);
    // Y's timers are scheduled before its crash — the crash must lose
    // them (epoch filter), and must NOT disturb X's allocation.
    sim.kick(SimTime(1_500_000), y, 201);
    sim.kick(PROBE, y, 202);
    // X's fan-out trigger fires between Y's crash and restart.
    sim.kick(SimTime(2_500_000), x, 99);

    sim.install_schedule(
        FaultSchedule::new(vec![
            ChaosEvent {
                at: SimTime(2_000_000),
                action: ChaosAction::RouterCrash { node: y },
            },
            ChaosEvent {
                at: SimTime(3_000_000),
                action: ChaosAction::RouterRestart { node: y },
            },
        ])
        .expect("valid schedule"),
    );
    sim.run_until(SimTime(10_000_000));
    (
        sim.node::<TimerLog>(x).seen.clone(),
        sim.node::<TimerLog>(y).seen.clone(),
    )
}

/// Tie-break determinism across a chaos purge: all six of X's timers
/// collide at one instant; three were allocated at build time, three
/// mid-run after the crash/restart epoch bumps. If the engine ever
/// rewound or reused seqs after a purge, the mid-run timers could
/// alias build-time seqs and jump ahead of them (or be swallowed by
/// the epoch filter). The order must be exactly allocation order, on
/// both queue implementations, twice.
#[test]
fn seq_allocation_survives_chaos_restart() {
    for kind in [QueueKind::Heap, QueueKind::Calendar] {
        let (x1, y1) = chaos_restart_run(kind);
        let (x2, y2) = chaos_restart_run(kind);
        assert_eq!(x1, x2, "{kind:?}: run-twice divergence");
        assert_eq!(y1, y2, "{kind:?}: run-twice divergence");

        let expect: Vec<(SimTime, u64)> = std::iter::once((SimTime(2_500_000), 99))
            .chain([1, 2, 3, 10, 11, 12].into_iter().map(|k| (PROBE, k)))
            .collect();
        assert_eq!(x1, expect, "{kind:?}: tie-break order drifted");

        // Y saw only the timer that fired before its crash; everything
        // scheduled pre-crash for later instants was purged by the
        // epoch filter — not resurrected, not re-sequenced.
        assert_eq!(
            y1,
            vec![(SimTime(1_500_000), 201)],
            "{kind:?}: purge leaked"
        );
    }
}

/// Same-instant timers spread across the wheel's bucket geometry: keys
/// whose times straddle bucket boundaries at exact multiples of the
/// slot width must still tie-break by seq within a bucket and by time
/// across buckets.
#[test]
fn bucket_boundary_ties_match_heap() {
    let width = 1u64 << SLOT_SHIFT;
    let mut heap: HeapQueue<Item> = HeapQueue::new();
    let mut wheel: CalendarQueue<Item> = CalendarQueue::new();
    let mut seq = 0u64;
    for round in 0..3u64 {
        for t in [0, 1, width - 1, width, width + 1, 7 * width, 7 * width] {
            let item = Item {
                time: t + round, // round shifts keep some exact collisions
                seq,
            };
            seq += 1;
            heap.push(item.clone());
            wheel.push(item);
        }
    }
    while let Some(a) = heap.pop() {
        assert_eq!(Some(a), wheel.pop());
    }
    assert!(wheel.pop().is_none());
}
