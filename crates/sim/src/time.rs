//! Simulation time: a nanosecond-resolution monotonic clock.
//!
//! All timing in the reproduction is expressed in [`SimTime`] instants and
//! [`SimDuration`] spans. Nanosecond resolution comfortably covers the
//! paper's regime: sub-microsecond switch decisions (§2.1) up to the
//! month-scale 32-bit millisecond timestamp wraparound (§4.2).

use core::ops::{Add, AddAssign, Sub};

/// An instant of simulated time, nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since the epoch.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the epoch (rounded down).
    pub fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since the epoch (rounded down).
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Whole + fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Span from `earlier` to `self`; saturates at zero.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    pub fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (rounds to nearest ns).
    pub fn from_secs_f64(s: f64) -> SimDuration {
        SimDuration((s * 1e9).round() as u64)
    }

    /// Nanoseconds in the span.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The span in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiply by an integer factor.
    pub fn times(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl core::fmt::Display for SimTime {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl core::fmt::Display for SimDuration {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}µs", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// Time to clock `bytes` onto a link of `rate_bps` bits per second.
pub fn transmission_time(bytes: usize, rate_bps: u64) -> SimDuration {
    debug_assert!(rate_bps > 0, "link rate must be positive");
    // ns = bits * 1e9 / rate. Use u128 to avoid overflow on fast links.
    let bits = bytes as u128 * 8;
    SimDuration(((bits * 1_000_000_000) / rate_bps as u128) as u64)
}

/// Number of whole bytes clocked onto a link of `rate_bps` within `dur`.
pub fn bytes_in(dur: SimDuration, rate_bps: u64) -> usize {
    ((dur.0 as u128 * rate_bps as u128) / (8 * 1_000_000_000)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_micros(5);
        assert_eq!(t.as_nanos(), 5_000);
        assert_eq!((t + SimDuration::from_nanos(1)) - t, SimDuration(1));
        assert_eq!(SimTime(3) - SimTime(10), SimDuration::ZERO, "saturating");
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
        assert_eq!(SimTime(1_500_000_000).as_millis(), 1500);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_nanos(), 250_000_000);
    }

    #[test]
    fn transmission_times_match_hand_calcs() {
        // 1500 bytes at 10 Mb/s = 1.2 ms.
        assert_eq!(
            transmission_time(1500, 10_000_000),
            SimDuration::from_micros(1200)
        );
        // 1500 bytes at 1 Gb/s = 12 µs.
        assert_eq!(
            transmission_time(1500, 1_000_000_000),
            SimDuration::from_micros(12)
        );
        // 1 byte at 8 bit/s = 1 s.
        assert_eq!(transmission_time(1, 8), SimDuration::from_secs(1));
    }

    #[test]
    fn bytes_in_inverts_transmission_time() {
        for rate in [10_000_000u64, 100_000_000, 1_000_000_000] {
            for n in [1usize, 64, 576, 1500] {
                let d = transmission_time(n, rate);
                assert_eq!(bytes_in(d, rate), n);
            }
        }
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000µs");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn no_overflow_at_high_rates_and_sizes() {
        // A terabit link and a huge burst must not overflow.
        let d = transmission_time(usize::MAX / 16, 1_000_000_000_000);
        assert!(d.0 > 0);
    }
}
