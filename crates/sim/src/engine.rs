//! The deterministic discrete-event engine.
//!
//! Nodes (hosts, routers, switches, shared segments) exchange byte frames
//! over **channels**. A channel models a transmission medium with a fixed
//! data rate and propagation delay and one or more taps; a point-to-point
//! full-duplex link is a pair of two-tap channels, a classic Ethernet is a
//! single many-tap channel (half-duplex broadcast bus).
//!
//! ## Partial arrival and cut-through
//!
//! The engine delivers a [`Event::Frame`] to every receiving tap at the
//! moment the **first bit** arrives, carrying the time at which the
//! **last bit** will arrive and the channel rate. A cut-through router
//! can therefore act as soon as the decision fields have arrived
//! (`first_bit + transmission_time(header_len, rate)`), while a
//! store-and-forward router simply waits for `last_bit` — both faithful
//! to the byte-level timing the paper's §6.1 delay arithmetic relies on.
//!
//! ## Preemption
//!
//! A sender may abort its own in-flight transmission
//! ([`Context::abort_current_tx`]) — this is how priorities 6 and 7
//! preempt lower-priority packets mid-transmission (§5). Downstream taps
//! receive [`Event::FrameAborted`] strictly before the aborted frame's
//! `last_bit`, so no receiver can have acted on a complete frame that
//! never fully arrived.
//!
//! ## Determinism
//!
//! Events are ordered by `(time, sequence)` where the sequence is the
//! scheduling order; the only randomness flows from the seeded RNG, so a
//! run is reproducible bit-for-bit from its seed.

use std::any::Any;
use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sirpent_telemetry::{Counter, FlightRecorder, HopEvent, HopKind, Registry, RegistryError};
use sirpent_wire::buf::FrameBuf;

use crate::chaos::{ChaosAction, ChaosEvent, FaultSchedule};
use crate::queue::{CalendarQueue, EventQueue, HeapQueue, Keyed, QueueKind};
use crate::stats::{DropReason, PipelineStats};
use crate::time::{bytes_in, transmission_time, SimDuration, SimTime};

/// Identifies a node within a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Identifies a channel within a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelId(pub usize);

/// Identifies one transmitted frame instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FrameId(pub u64);

/// A frame in flight: an identity plus its bytes.
///
/// The contents are a [`FrameBuf`]: an owned link header in front of a
/// shared, cheaply-cloneable packet body. The engine's per-tap fan-out
/// clones the `FrameBuf`, so a broadcast to N taps copies N small link
/// headers and zero packet bodies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Engine-assigned unique id.
    pub id: FrameId,
    /// The frame contents.
    pub payload: FrameBuf,
}

/// Delivery of a frame's first bit at a receiving tap.
#[derive(Debug, Clone)]
pub struct FrameEvent {
    /// The local port the frame is arriving on.
    pub port: u8,
    /// The arriving frame (complete bytes; timing fields say when they
    /// are *valid*).
    pub frame: Frame,
    /// When the first bit arrived (== the event's delivery time).
    pub first_bit: SimTime,
    /// When the last bit will have arrived.
    pub last_bit: SimTime,
    /// The channel's data rate, for computing per-byte arrival times.
    pub rate_bps: u64,
    /// Whether the fault injector corrupted this copy.
    pub corrupted: bool,
}

impl FrameEvent {
    /// The instant by which the first `n` bytes have arrived.
    pub fn byte_arrival(&self, n: usize) -> SimTime {
        self.first_bit + transmission_time(n, self.rate_bps)
    }
}

/// An event delivered to a node.
#[derive(Debug, Clone)]
pub enum Event {
    /// First bit of a frame has arrived on a port.
    Frame(FrameEvent),
    /// A frame previously announced on this port was aborted by its
    /// sender after `bytes_received` bytes.
    FrameAborted {
        /// The local receiving port.
        port: u8,
        /// Which frame was aborted.
        frame: FrameId,
        /// Bytes that made it onto the wire before the abort.
        bytes_received: usize,
    },
    /// A transmission this node started on `port` has finished clocking
    /// out.
    TxDone {
        /// The local transmitting port.
        port: u8,
        /// The completed frame.
        frame: FrameId,
    },
    /// A transmission this node started on `port` was killed by the
    /// engine (link went down mid-frame, chaos layer). The engine has
    /// already accounted the loss; the node should only release any
    /// soft state tied to the transmission (e.g. clear its "current
    /// frame" slot) — it must **not** count a drop of its own.
    TxAborted {
        /// The local transmitting port.
        port: u8,
        /// The killed frame.
        frame: FrameId,
    },
    /// A timer set via [`Context::schedule_in`] / [`Context::schedule_at`]
    /// fired.
    Timer {
        /// The caller-chosen key.
        key: u64,
    },
}

/// Information returned when a transmission is accepted.
#[derive(Debug, Clone, Copy)]
pub struct TxInfo {
    /// Engine-assigned frame id.
    pub frame: FrameId,
    /// When the first bit goes onto the wire (>= now; later if the
    /// channel was busy).
    pub start: SimTime,
    /// When the last bit goes onto the wire.
    pub end: SimTime,
}

/// Information returned when an in-flight transmission is aborted.
#[derive(Debug, Clone, Copy)]
pub struct AbortInfo {
    /// The aborted frame.
    pub frame: FrameId,
    /// Bytes already clocked out when the abort took effect.
    pub bytes_sent: usize,
}

/// Engine-level errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// The (node, port) pair is not attached to any channel for
    /// transmission.
    PortNotAttached,
    /// Abort was requested but the channel has queued transmissions
    /// behind the current one (aborting is only supported for a sole
    /// transmitter, e.g. a router output onto a point-to-point link).
    AbortWithQueue,
    /// Abort was requested but nothing this node sent is on the wire.
    NothingToAbort,
    /// The channel behind the port is administratively down (chaos
    /// layer); the transmission was refused.
    LinkDown,
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::PortNotAttached => write!(f, "port not attached to a channel"),
            SimError::AbortWithQueue => write!(f, "cannot abort with queued transmissions"),
            SimError::NothingToAbort => write!(f, "no in-flight transmission to abort"),
            SimError::LinkDown => write!(f, "channel is down"),
        }
    }
}

impl std::error::Error for SimError {}

/// Fault-injection configuration for a channel (applied independently per
/// receiving tap, seeded-deterministic).
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultConfig {
    /// Probability a delivered copy is dropped entirely.
    pub drop_prob: f64,
    /// Probability one random byte of a delivered copy is corrupted.
    pub corrupt_prob: f64,
}

impl FaultConfig {
    /// Check that both probabilities are finite and within `0.0..=1.0`.
    /// Validated once at [`Simulator::set_faults`] time so the delivery
    /// hot path can use them unclamped.
    pub fn validate(&self) -> Result<(), &'static str> {
        for p in [self.drop_prob, self.corrupt_prob] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err("fault probability must be finite and within 0.0..=1.0");
            }
        }
        Ok(())
    }
}

/// Per-channel counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChannelStats {
    /// Frames accepted for transmission.
    pub frames: u64,
    /// Bytes accepted for transmission.
    pub bytes: u64,
    /// Wire-busy time accumulated.
    pub busy: SimDuration,
    /// Copies dropped by fault injection.
    pub drops: u64,
    /// Copies corrupted by fault injection.
    pub corrupted: u64,
    /// Transmissions aborted by their sender.
    pub aborts: u64,
    /// Extra copies injected by a chaos duplication window.
    pub duplicated: u64,
}

impl ChannelStats {
    /// Fraction of `[0, horizon)` the wire was busy.
    pub fn utilization(&self, horizon: SimDuration) -> f64 {
        if horizon.as_nanos() == 0 {
            0.0
        } else {
            self.busy.as_nanos() as f64 / horizon.as_nanos() as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct TxRecord {
    sender: NodeId,
    frame: FrameId,
    start: SimTime,
    end: SimTime,
    /// Extra propagation delay drawn by an active jitter window (zero
    /// otherwise); added to every receiver-side instant for this frame.
    extra: SimDuration,
    /// Every receiver copy was suppressed at transmit time (partition
    /// cut or fault-injector drop) and accounted there. A later chaos
    /// kill must not count this record a second time.
    condemned: bool,
}

pub(crate) struct Channel {
    pub(crate) rate_bps: u64,
    pub(crate) prop: SimDuration,
    pub(crate) taps: Vec<(NodeId, u8)>,
    pub(crate) free_at: SimTime,
    pub(crate) in_flight: VecDeque<TxRecord>,
    pub(crate) faults: FaultConfig,
    pub(crate) stats: ChannelStats,
    /// Administrative link state (chaos layer). Down channels refuse
    /// transmissions.
    pub(crate) up: bool,
    /// Active duplication window probability (0 = no window).
    pub(crate) dup_prob: f64,
    /// Active jitter window bound (zero = no window).
    pub(crate) jitter_max: SimDuration,
    /// Active error-burst window probability (0 = no window).
    pub(crate) burst_prob: f64,
    /// Active error-burst window maximum run length, bytes.
    pub(crate) burst_run: usize,
}

impl Channel {
    /// An empty shell mirroring a channel owned by another shard: same
    /// wire parameters (so id-indexed lookups stay aligned) but no taps,
    /// so nothing can transmit into it and no state ever accrues.
    pub(crate) fn shell(rate_bps: u64, prop: SimDuration) -> Channel {
        Channel {
            rate_bps,
            prop,
            taps: Vec::new(),
            free_at: SimTime::ZERO,
            in_flight: VecDeque::new(),
            faults: FaultConfig::default(),
            stats: ChannelStats::default(),
            up: true,
            dup_prob: 0.0,
            jitter_max: SimDuration::ZERO,
            burst_prob: 0.0,
            burst_run: 0,
        }
    }
}

/// The behaviour of a simulated node.
///
/// `Send` is a supertrait so a [`Simulator`] (and therefore one shard of
/// a [`crate::shard::ShardedSimulator`]) can move across the scoped
/// worker threads of the parallel runner; node state is owned plain data,
/// never shared, so no `Sync` bound is needed.
pub trait Node: Send + 'static {
    /// Handle one event. `ctx` gives access to the clock, channels and
    /// scheduler.
    fn on_event(&mut self, ctx: &mut Context<'_>, ev: Event);

    /// Handle a batch of same-instant events addressed to this node, in
    /// scheduling order. The engine gathers maximal runs of events with
    /// the same `(time, target)` and delivers them through this entry
    /// point, amortizing dispatch overhead; `TxDone` is always delivered
    /// solo through [`Node::on_event`] (its transmit-retirement
    /// bookkeeping must interleave exactly with abort decisions).
    ///
    /// The default drains the batch through [`Node::on_event`] one
    /// event at a time, so overriding is purely an optimization; an
    /// override must preserve per-event observable behavior (stats,
    /// transmissions, timers) exactly — the golden-trace fixtures pin
    /// it.
    fn on_events(&mut self, ctx: &mut Context<'_>, batch: &mut Vec<Event>) {
        for ev in batch.drain(..) {
            self.on_event(ctx, ev);
        }
    }

    /// Downcast support (used by tests and harnesses to inspect node
    /// state after a run).
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// The node's uniform data-plane counters, if it keeps any. Nodes
    /// with a data plane (routers, switches, hosts) return their
    /// [`crate::stats::PipelineStats`] here so the engine, benches, and
    /// experiment scripts can scrape any node without downcasting.
    fn node_stats(&self) -> Option<&dyn crate::stats::NodeStats> {
        None
    }

    /// Called by the chaos layer when the node restarts after a crash.
    /// Implementations lose whatever their crash/restart contract says a
    /// reboot loses (soft state: queues, caches, pacing) — durable
    /// configuration and already-scraped counters survive. Default: the
    /// node is stateless across restarts.
    fn on_restart(&mut self) {}

    /// Publish this node's telemetry instruments into `reg` at scrape
    /// time, under static names from [`sirpent_telemetry::names`].
    /// [`Simulator::scrape_telemetry`] absorbs every node's registry
    /// into one fleet-wide scrape. Default: publishes nothing.
    fn publish_telemetry(&self, reg: &mut Registry) -> Result<(), RegistryError> {
        let _ = reg;
        Ok(())
    }
}

pub(crate) struct Scheduled {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) target: NodeId,
    pub(crate) event: Event,
}

impl Keyed for Scheduled {
    fn key(&self) -> (u64, u64) {
        (self.time.as_nanos(), self.seq)
    }
}

/// The engine's event queue: either implementation behind static
/// dispatch (an enum, not a trait object, keeps the per-event hot path
/// free of virtual calls). Both drain in identical `(time, seq)` order;
/// the differential suite in `tests/queue_differential.rs` holds them to
/// it.
pub(crate) enum EngineQueue {
    Heap(HeapQueue<Scheduled>),
    Wheel(CalendarQueue<Scheduled>),
}

impl EngineQueue {
    fn new(kind: QueueKind) -> EngineQueue {
        match kind {
            QueueKind::Heap => EngineQueue::Heap(HeapQueue::new()),
            QueueKind::Calendar => EngineQueue::Wheel(CalendarQueue::new()),
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, item: Scheduled) {
        match self {
            EngineQueue::Heap(q) => q.push(item),
            EngineQueue::Wheel(q) => q.push(item),
        }
    }

    #[inline]
    pub(crate) fn min_key(&mut self) -> Option<(u64, u64)> {
        match self {
            EngineQueue::Heap(q) => q.min_key(),
            EngineQueue::Wheel(q) => q.min_key(),
        }
    }

    #[inline]
    fn peek(&mut self) -> Option<&Scheduled> {
        match self {
            EngineQueue::Heap(q) => q.peek(),
            EngineQueue::Wheel(q) => q.peek(),
        }
    }

    #[inline]
    pub(crate) fn pop(&mut self) -> Option<Scheduled> {
        match self {
            EngineQueue::Heap(q) => q.pop(),
            EngineQueue::Wheel(q) => q.pop(),
        }
    }
}

/// A scheduling request that crossed a shard boundary. Produced by
/// [`Core::push`] when the target node lives on another shard (and by
/// [`Core::chaos_kill`] for tombstones of frames already exported); the
/// window runner in [`crate::sync`] exchanges these between shards at
/// window barriers. Conservative-lookahead windows guarantee every
/// `Deliver` lands at or after the next window's start, so the receiving
/// shard's clock has never passed it.
#[derive(Debug, Clone)]
pub(crate) enum OutMsg {
    /// Schedule `event` for `target` at `time` on the target's shard.
    Deliver {
        /// Absolute delivery instant (≥ the end of the window that
        /// produced it).
        time: SimTime,
        /// The remote node the event is addressed to.
        target: NodeId,
        /// The event itself.
        event: Event,
    },
    /// Tombstone a frame id on every other shard: its queued transmission
    /// was chaos-killed before the first bit, after delivery events may
    /// already have been exported. Exchanged at the window barrier, which
    /// always precedes the delivery's dispatch window.
    Cancel {
        /// The cancelled frame.
        frame: FrameId,
    },
}

/// Chaos-layer event counters (telemetry instruments; published by
/// [`Simulator::scrape_telemetry`] under the `chaos_*` names).
#[derive(Debug, Default)]
pub(crate) struct ChaosCounters {
    /// Every applied chaos action.
    pub(crate) events: Counter,
    /// Link up/down transitions.
    pub(crate) link: Counter,
    /// Router crash/restart transitions.
    pub(crate) router: Counter,
    /// Partition windows opened or closed.
    pub(crate) partition: Counter,
    /// Channel-condition window updates (dup / jitter / error burst).
    pub(crate) windows: Counter,
}

/// Everything in the simulator except the node objects themselves — this
/// split lets a node borrow the core mutably (through [`Context`]) while
/// it is itself borrowed for dispatch.
pub(crate) struct Core {
    pub(crate) now: SimTime,
    /// Scheduling sequence: strictly monotone for the whole run. Chaos
    /// restarts and purges never rewind it — `node_epoch` fences stale
    /// timers by remembering the sequence watermark instead — so a
    /// `(time, seq)` key is never reused and tie-breaks stay
    /// deterministic across crash/restart cycles.
    pub(crate) seq: u64,
    pub(crate) frame_seq: u64,
    pub(crate) queue: EngineQueue,
    pub(crate) channels: Vec<Channel>,
    /// Transmit attachment per node: `(port, channel)` pairs, linear
    /// scanned (nodes have a handful of ports; beats hashing on the
    /// per-event path).
    pub(crate) tx_map: Vec<Vec<(u8, ChannelId)>>,
    /// Reusable receiver scratch for `transmit_from`/`abort_from` — the
    /// per-transmission fan-out list without a per-call allocation.
    rx_scratch: Vec<(NodeId, u8)>,
    pub(crate) rng: StdRng,
    pub(crate) trace: Option<Vec<(SimTime, NodeId, String)>>,
    pub(crate) events_dispatched: u64,
    /// Remaining chaos events, time-sorted (front = next).
    pub(crate) chaos: VecDeque<ChaosEvent>,
    /// Engine-side accounting for chaos-layer losses (LinkDown,
    /// RouterDown, Partitioned), through the shared drop taxonomy.
    pub(crate) chaos_stats: PipelineStats,
    /// Per-node crashed flag (indexed by `NodeId`).
    pub(crate) down: Vec<bool>,
    /// Per-node restart epoch: timers scheduled before this sequence
    /// number are stale soft state from before the last crash and are
    /// swallowed.
    pub(crate) node_epoch: Vec<u64>,
    /// Active partition window: per-node side flag (`true` = side A).
    pub(crate) partition: Option<Vec<bool>>,
    /// Frames whose scheduled deliveries were cancelled before their
    /// first bit (queued transmissions killed by a link-down or crash).
    pub(crate) cancelled: std::collections::BTreeSet<FrameId>,
    /// Frames already charged to the chaos ledger by a mid-flight kill
    /// whose (stale) delivery events are still queued. [`admit`] drains
    /// entries as those events surface so a crashed receiver doesn't
    /// charge the same frame a second `RouterDown` drop.
    pub(crate) charged: std::collections::BTreeSet<FrameId>,
    /// Chaos-layer telemetry counters.
    pub(crate) chaos_counters: ChaosCounters,
    /// The per-packet flight recorder; `None` (the default) records
    /// nothing and leaves every instrumented path byte-identical.
    pub(crate) flight: Option<FlightRecorder>,
    /// The RNG seed this core was created with (recorded so the shard
    /// splitter can derive per-shard streams from the master seed).
    pub(crate) seed: u64,
    /// Which [`EngineQueue`] implementation this core runs on (recorded
    /// so shard shells inherit it).
    pub(crate) queue_kind: QueueKind,
    /// Sharding: `remote[n]` marks nodes owned by another shard. Empty
    /// (or all-false) in a serial simulator, so the single branch it adds
    /// to [`Core::push`] never fires and serial behavior — including seq
    /// allocation — is byte-identical.
    pub(crate) remote: Vec<bool>,
    /// Sharding: events addressed to remote nodes, awaiting the next
    /// window-barrier exchange. Always empty in a serial simulator.
    pub(crate) outbox: Vec<OutMsg>,
    /// Sharding: this shard holds a broadcast mirror of global chaos
    /// state (partition windows). Mirrors apply the state change but
    /// suppress the partition telemetry counters so a merged scrape
    /// counts each global event exactly once.
    pub(crate) chaos_mirror: bool,
}

impl Core {
    pub(crate) fn push(&mut self, time: SimTime, target: NodeId, event: Event) {
        debug_assert!(time >= self.now, "cannot schedule into the past");
        if self.remote.get(target.0).copied().unwrap_or(false) {
            self.outbox.push(OutMsg::Deliver {
                time,
                target,
                event,
            });
            return;
        }
        let seq = self.seq;
        self.seq += 1;
        // Sequence-reuse audit: the counter must never wrap within a run
        // (a reused `(time, seq)` key would silently break tie-break
        // determinism — and the calendar queue's drain contract).
        debug_assert!(self.seq != 0, "scheduling sequence wrapped");
        self.queue.push(Scheduled {
            time,
            seq,
            target,
            event,
        });
    }

    /// The channel `(node, port)` transmits into, if attached.
    #[inline]
    fn tx_lookup(&self, node: NodeId, port: u8) -> Option<ChannelId> {
        self.tx_map
            .get(node.0)?
            .iter()
            .find(|&&(p, _)| p == port)
            .map(|&(_, ch)| ch)
    }

    /// Record a transmit attachment. Returns `false` when the pair is
    /// already attached elsewhere.
    fn tx_insert(&mut self, node: NodeId, port: u8, ch: ChannelId) -> bool {
        while self.tx_map.len() <= node.0 {
            self.tx_map.push(Vec::new());
        }
        if self.tx_lookup(node, port).is_some() {
            return false;
        }
        if let Some(ports) = self.tx_map.get_mut(node.0) {
            ports.push((port, ch));
        }
        true
    }

    fn transmit_from(
        &mut self,
        sender: NodeId,
        port: u8,
        payload: FrameBuf,
    ) -> Result<TxInfo, SimError> {
        let ch_id = self
            .tx_lookup(sender, port)
            .ok_or(SimError::PortNotAttached)?;
        if !self.channels[ch_id.0].up {
            return Err(SimError::LinkDown);
        }
        let now = self.now;
        let frame = FrameId(self.frame_seq);
        self.frame_seq += 1;
        // Jitter window: one extra-propagation draw per transmission,
        // shared by every receiver of this frame so per-frame ordering
        // invariants (abort before tail) survive reordering. No draw —
        // and hence no RNG perturbation — outside a window.
        let jitter_max = self.channels[ch_id.0].jitter_max;
        let extra = if jitter_max > SimDuration::ZERO {
            SimDuration(self.rng.gen_range(0..=jitter_max.as_nanos()))
        } else {
            SimDuration::ZERO
        };
        let mut receivers = std::mem::take(&mut self.rx_scratch);
        receivers.clear();
        let (start, end, prop, rate) = {
            let ch = &mut self.channels[ch_id.0];
            let start = ch.free_at.max(now);
            let end = start + transmission_time(payload.len(), ch.rate_bps);
            ch.free_at = end;
            ch.in_flight.push_back(TxRecord {
                sender,
                frame,
                start,
                end,
                extra,
                condemned: false,
            });
            ch.stats.frames += 1;
            ch.stats.bytes += payload.len() as u64;
            ch.stats.busy = ch.stats.busy + (end - start);
            receivers.extend(ch.taps.iter().copied().filter(|&(n, _)| n != sender));
            (start, end, ch.prop, ch.rate_bps)
        };

        // Sender notification when the last bit clocks out.
        self.push(end, sender, Event::TxDone { port, frame });

        // Per-tap delivery with fault injection. The payload moves into
        // the final tap's copy — a point-to-point link (one receiver)
        // delivers with zero clones.
        let n_receivers = receivers.len();
        let mut suppressed = 0usize;
        let mut payload = Some(payload);
        for (i, &(node, rx_port)) in receivers.iter().enumerate() {
            // Partition window: suppression is deterministic (no RNG
            // draw), so an active partition never perturbs the fault
            // injector's sequence for unaffected flows.
            if let Some(sides) = self.partition.as_ref() {
                let side = |n: NodeId| sides.get(n.0).copied().unwrap_or(false);
                if side(sender) != side(node) {
                    self.chaos_stats.drop(DropReason::Partitioned);
                    suppressed += 1;
                    continue;
                }
            }
            let f = self.channels[ch_id.0].faults;
            let (drop_p, corrupt_p) = (f.drop_prob, f.corrupt_prob);
            if drop_p > 0.0 && self.rng.gen_bool(drop_p) {
                self.channels[ch_id.0].stats.drops += 1;
                suppressed += 1;
                continue;
            }
            // Sharing: each tap's copy is a FrameBuf clone (header bytes
            // only); the last tap takes the original. The body is
            // materialized into a private buffer only when the fault
            // injector actually corrupts this copy.
            let copy = if i + 1 == n_receivers {
                payload.take()
            } else {
                payload.clone()
            };
            let Some(mut copy) = copy else { continue };
            let mut corrupted = false;
            if corrupt_p > 0.0 && !copy.is_empty() && self.rng.gen_bool(corrupt_p) {
                let mut v = copy.to_vec();
                let i = self.rng.gen_range(0..v.len());
                let mut flip = 0u8;
                while flip == 0 {
                    flip = self.rng.gen();
                }
                v[i] ^= flip;
                copy = FrameBuf::from(v);
                corrupted = true;
                self.channels[ch_id.0].stats.corrupted += 1;
            }
            // Error-burst window: a contiguous run of bytes takes hits.
            let burst_p = self.channels[ch_id.0].burst_prob;
            if burst_p > 0.0 && !copy.is_empty() && self.rng.gen_bool(burst_p) {
                let mut v = copy.to_vec();
                let run_max = self.channels[ch_id.0].burst_run.min(v.len()).max(1);
                let run = self.rng.gen_range(1..=run_max);
                let at = self.rng.gen_range(0..=v.len() - run);
                for b in &mut v[at..at + run] {
                    let mut flip = 0u8;
                    while flip == 0 {
                        flip = self.rng.gen();
                    }
                    *b ^= flip;
                }
                copy = FrameBuf::from(v);
                if !corrupted {
                    corrupted = true;
                    self.channels[ch_id.0].stats.corrupted += 1;
                }
            }
            let fe = FrameEvent {
                port: rx_port,
                frame: Frame {
                    id: frame,
                    payload: copy,
                },
                first_bit: start + prop + extra,
                last_bit: end + prop + extra,
                rate_bps: rate,
                corrupted,
            };
            // Duplication window: the copy may be delivered twice.
            let dup_p = self.channels[ch_id.0].dup_prob;
            let dup = dup_p > 0.0 && self.rng.gen_bool(dup_p);
            if dup {
                self.channels[ch_id.0].stats.duplicated += 1;
                self.push(start + prop + extra, node, Event::Frame(fe.clone()));
            }
            self.push(start + prop + extra, node, Event::Frame(fe));
        }
        // Every copy was suppressed and accounted above: mark the record
        // so a chaos kill that later sweeps this channel doesn't charge
        // the same frame a second drop. The record still occupies the
        // wire until its last bit — the sender really transmitted.
        if n_receivers > 0 && suppressed == n_receivers {
            if let Some(rec) = self.channels[ch_id.0]
                .in_flight
                .iter_mut()
                .rev()
                .find(|r| r.frame == frame)
            {
                rec.condemned = true;
            }
        }
        self.rx_scratch = receivers;

        Ok(TxInfo { frame, start, end })
    }

    fn abort_from(&mut self, sender: NodeId, port: u8) -> Result<AbortInfo, SimError> {
        let ch_id = self
            .tx_lookup(sender, port)
            .ok_or(SimError::PortNotAttached)?;
        let now = self.now;
        let mut receivers = std::mem::take(&mut self.rx_scratch);
        receivers.clear();
        let (frame, bytes_sent, prop, extra) = {
            let ch = &mut self.channels[ch_id.0];
            let Some(front) = ch.in_flight.front().copied() else {
                self.rx_scratch = receivers;
                return Err(SimError::NothingToAbort);
            };
            if front.sender != sender || front.start > now || front.end <= now {
                self.rx_scratch = receivers;
                return Err(SimError::NothingToAbort);
            }
            if ch.in_flight.len() > 1 {
                self.rx_scratch = receivers;
                return Err(SimError::AbortWithQueue);
            }
            ch.in_flight.pop_front();
            ch.free_at = now;
            ch.stats.aborts += 1;
            // Give back the unspent busy time.
            let unspent = front.end - now;
            ch.stats.busy =
                SimDuration(ch.stats.busy.as_nanos().saturating_sub(unspent.as_nanos()));
            let bytes_sent = bytes_in(now - front.start, ch.rate_bps);
            receivers.extend(ch.taps.iter().copied().filter(|&(n, _)| n != sender));
            (front.frame, bytes_sent, ch.prop, front.extra)
        };
        // The abort rides the same (jittered) propagation path as the
        // frame itself, so it still lands strictly before the tail.
        for &(node, rx_port) in receivers.iter() {
            self.push(
                now + prop + extra,
                node,
                Event::FrameAborted {
                    port: rx_port,
                    frame,
                    bytes_received: bytes_sent,
                },
            );
        }
        self.rx_scratch = receivers;
        Ok(AbortInfo { frame, bytes_sent })
    }

    /// Chaos layer: kill every unfinished transmission on `ch_id` that
    /// matches `pred`, accounting each as a `why` drop. Mid-flight
    /// frames are aborted toward their receivers (same ordering contract
    /// as sender aborts); queued-but-unstarted frames are cancelled
    /// before their first bit ever appears. Records whose last bit has
    /// already clocked out are left for normal `TxDone` retirement. The
    /// sender of each killed transmission gets [`Event::TxAborted`].
    fn chaos_kill(&mut self, ch_id: ChannelId, why: DropReason, pred: impl Fn(&TxRecord) -> bool) {
        let now = self.now;
        let (prop, rate, taps, killed) = {
            let ch = &mut self.channels[ch_id.0];
            let mut kept = VecDeque::new();
            let mut killed = Vec::new();
            while let Some(rec) = ch.in_flight.pop_front() {
                if rec.end > now && pred(&rec) {
                    killed.push(rec);
                } else {
                    kept.push_back(rec);
                }
            }
            ch.in_flight = kept;
            if !killed.is_empty() {
                // The wire frees when the last survivor ends.
                let tail = ch.in_flight.iter().map(|r| r.end).max().unwrap_or(now);
                ch.free_at = tail.max(now);
                for rec in &killed {
                    // Give back the unspent busy time.
                    let unspent = rec.end - rec.start.max(now);
                    ch.stats.busy =
                        SimDuration(ch.stats.busy.as_nanos().saturating_sub(unspent.as_nanos()));
                    if rec.start <= now {
                        ch.stats.aborts += 1;
                    }
                }
            }
            (ch.prop, ch.rate_bps, ch.taps.clone(), killed)
        };
        for rec in killed {
            // A condemned record was already accounted (partition cut or
            // fault-injector drop) when its deliveries were suppressed at
            // transmit time; charging it again here would break packet
            // conservation. The wire-freeing and abort notices above and
            // below still apply — only the ledger entry is skipped.
            if !rec.condemned {
                self.chaos_stats.drop(why);
            }
            if rec.start <= now {
                // Mid-flight: receivers have (or will have) seen the
                // first bit — retract it ahead of the phantom tail. The
                // already-scheduled delivery events stay queued; remember
                // the charge so a crashed receiver's `admit` doesn't
                // count the frame again when they surface.
                if !rec.condemned {
                    self.charged.insert(rec.frame);
                }
                let bytes_sent = bytes_in(now - rec.start, rate);
                for &(node, rx_port) in taps.iter().filter(|&&(n, _)| n != rec.sender) {
                    self.push(
                        now + prop + rec.extra,
                        node,
                        Event::FrameAborted {
                            port: rx_port,
                            frame: rec.frame,
                            bytes_received: bytes_sent,
                        },
                    );
                }
            } else {
                // Queued: the scheduled first-bit deliveries are
                // tombstoned; receivers never hear of the frame. If any
                // tap lives on another shard, the delivery was already
                // exported — send the tombstone after it. The window
                // algebra guarantees it wins the race: the kill happens
                // inside the current window while the delivery dispatches
                // no earlier than the next one, and the barrier exchange
                // sits in between.
                self.cancelled.insert(rec.frame);
                if !self.remote.is_empty()
                    && taps
                        .iter()
                        .any(|&(n, _)| self.remote.get(n.0).copied().unwrap_or(false))
                {
                    self.outbox.push(OutMsg::Cancel { frame: rec.frame });
                }
            }
            if let Some(&(_, tx_port)) = taps.iter().find(|&&(n, _)| n == rec.sender) {
                self.push(
                    now,
                    rec.sender,
                    Event::TxAborted {
                        port: tx_port,
                        frame: rec.frame,
                    },
                );
            }
        }
    }
}

/// The node-facing handle into the simulation during event dispatch.
pub struct Context<'a> {
    core: &'a mut Core,
    me: NodeId,
}

impl Context<'_> {
    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// This node's id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Queue a frame for transmission out `port`. Accepts anything that
    /// converts into a [`FrameBuf`] — a composed header+body frame, a
    /// shared [`sirpent_wire::buf::PacketBuf`], or a plain `Vec<u8>`. If
    /// the channel is busy the transmission starts when it frees (FIFO in
    /// call order); use [`Context::channel_free_at`] to implement smarter
    /// queueing above.
    pub fn transmit(&mut self, port: u8, frame: impl Into<FrameBuf>) -> Result<TxInfo, SimError> {
        self.core.transmit_from(self.me, port, frame.into())
    }

    /// When the channel behind `port` becomes idle (now or earlier means
    /// idle already).
    pub fn channel_free_at(&self, port: u8) -> Result<SimTime, SimError> {
        let ch = self
            .core
            .tx_lookup(self.me, port)
            .ok_or(SimError::PortNotAttached)?;
        Ok(self.core.channels[ch.0].free_at)
    }

    /// The data rate of the channel behind `port`.
    pub fn channel_rate(&self, port: u8) -> Result<u64, SimError> {
        let ch = self
            .core
            .tx_lookup(self.me, port)
            .ok_or(SimError::PortNotAttached)?;
        Ok(self.core.channels[ch.0].rate_bps)
    }

    /// The propagation delay of the channel behind `port`.
    pub fn channel_prop(&self, port: u8) -> Result<SimDuration, SimError> {
        let ch = self
            .core
            .tx_lookup(self.me, port)
            .ok_or(SimError::PortNotAttached)?;
        Ok(self.core.channels[ch.0].prop)
    }

    /// Whether the channel behind `port` is up (chaos link state). This
    /// is what a real switch learns from loss-of-carrier on the failed
    /// link — local knowledge, available at route-decision time.
    pub fn link_up(&self, port: u8) -> Result<bool, SimError> {
        let ch = self
            .core
            .tx_lookup(self.me, port)
            .ok_or(SimError::PortNotAttached)?;
        Ok(self.core.channels[ch.0].up)
    }

    /// Whether the peer behind `port` is up. Exact for point-to-point
    /// links (one non-self tap: that node's crashed flag); conservative
    /// `true` for shared-bus channels, where no single peer owns the
    /// medium. Models link-level liveness detection (keepalive /
    /// carrier) between adjacent routers — still strictly local state.
    pub fn peer_up(&self, port: u8) -> Result<bool, SimError> {
        let ch = self
            .core
            .tx_lookup(self.me, port)
            .ok_or(SimError::PortNotAttached)?;
        let mut peers = self.core.channels[ch.0]
            .taps
            .iter()
            .filter(|&&(n, _)| n != self.me)
            .map(|&(n, _)| n);
        match (peers.next(), peers.next()) {
            (Some(peer), None) => Ok(!self.core.down.get(peer.0).copied().unwrap_or(false)),
            _ => Ok(true),
        }
    }

    /// Abort this node's own in-flight transmission on `port` (priority
    /// 6/7 preemption, §5). Downstream taps are notified.
    pub fn abort_current_tx(&mut self, port: u8) -> Result<AbortInfo, SimError> {
        self.core.abort_from(self.me, port)
    }

    /// Deliver a [`Event::Timer`] with `key` to this node after `delay`.
    pub fn schedule_in(&mut self, delay: SimDuration, key: u64) {
        let at = self.core.now + delay;
        self.core.push(at, self.me, Event::Timer { key });
    }

    /// Deliver a [`Event::Timer`] with `key` to this node at `time`
    /// (clamped to now).
    pub fn schedule_at(&mut self, time: SimTime, key: u64) {
        let at = time.max(self.core.now);
        self.core.push(at, self.me, Event::Timer { key });
    }

    /// The seeded simulation RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.core.rng
    }

    /// Record a trace line (no-op unless tracing was enabled on the
    /// simulator).
    pub fn trace(&mut self, msg: impl FnOnce() -> String) {
        if let Some(t) = self.core.trace.as_mut() {
            let line = msg();
            t.push((self.core.now, self.me, line));
        }
    }

    /// Whether the flight recorder is on. Callers use this to skip key
    /// extraction entirely when disabled, keeping the off path free.
    pub fn flight_enabled(&self) -> bool {
        self.core.flight.is_some()
    }

    /// Record a flight hop event for packet `key` at the current instant
    /// (no-op when the recorder is disabled). Draws no randomness.
    pub fn flight_record(&mut self, key: u64, kind: HopKind) {
        let now = self.core.now;
        self.flight_record_at(now, key, kind);
    }

    /// Record a flight hop event at an explicit instant — e.g. a frame's
    /// first-bit arrival, which precedes the dispatch instant the node
    /// runs at (no-op when the recorder is disabled).
    pub fn flight_record_at(&mut self, t: SimTime, key: u64, kind: HopKind) {
        let node = self.me.0 as u32;
        if let Some(fr) = self.core.flight.as_mut() {
            fr.record(HopEvent {
                key,
                node,
                t_ns: t.as_nanos(),
                kind,
            });
        }
    }
}

/// The simulator: nodes + core.
pub struct Simulator {
    pub(crate) core: Core,
    pub(crate) nodes: Vec<Option<Box<dyn Node>>>,
    /// Reusable same-instant dispatch batch (see [`Node::on_events`]).
    pub(crate) batch: Vec<Event>,
}

impl Simulator {
    /// Create a simulator with the given RNG seed, on the default
    /// (calendar-queue) scheduler.
    pub fn new(seed: u64) -> Simulator {
        Simulator::with_queue(seed, QueueKind::default())
    }

    /// Create a simulator on an explicit [`QueueKind`] — the reference
    /// heap or the calendar queue. Identical seeds must produce
    /// identical runs on either; the differential suite asserts it.
    pub fn with_queue(seed: u64, kind: QueueKind) -> Simulator {
        Simulator {
            core: Core {
                now: SimTime::ZERO,
                seq: 0,
                frame_seq: 0,
                queue: EngineQueue::new(kind),
                channels: Vec::new(),
                tx_map: Vec::new(),
                rx_scratch: Vec::new(),
                rng: StdRng::seed_from_u64(seed),
                trace: None,
                events_dispatched: 0,
                chaos: VecDeque::new(),
                chaos_stats: PipelineStats::new(),
                down: Vec::new(),
                node_epoch: Vec::new(),
                partition: None,
                cancelled: std::collections::BTreeSet::new(),
                charged: std::collections::BTreeSet::new(),
                chaos_counters: ChaosCounters::default(),
                flight: None,
                seed,
                queue_kind: kind,
                remote: Vec::new(),
                outbox: Vec::new(),
                chaos_mirror: false,
            },
            nodes: Vec::new(),
            batch: Vec::new(),
        }
    }

    /// Turn on trace collection.
    pub fn enable_trace(&mut self) {
        self.core.trace = Some(Vec::new());
    }

    /// The collected trace (empty unless enabled).
    pub fn trace(&self) -> &[(SimTime, NodeId, String)] {
        self.core.trace.as_deref().unwrap_or(&[])
    }

    /// Add a node; returns its id.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Some(node));
        self.core.down.push(false);
        self.core.node_epoch.push(0);
        if !self.core.remote.is_empty() {
            self.core.remote.push(false);
        }
        id
    }

    /// Create a channel (no taps yet).
    pub fn add_channel(&mut self, rate_bps: u64, prop: SimDuration) -> ChannelId {
        let id = ChannelId(self.core.channels.len());
        self.core.channels.push(Channel {
            rate_bps,
            prop,
            taps: Vec::new(),
            free_at: SimTime::ZERO,
            in_flight: VecDeque::new(),
            faults: FaultConfig::default(),
            stats: ChannelStats::default(),
            up: true,
            dup_prob: 0.0,
            jitter_max: SimDuration::ZERO,
            burst_prob: 0.0,
            burst_run: 0,
        });
        id
    }

    /// Attach `(node, port)` as a tap: it both transmits into and
    /// receives from the channel.
    ///
    /// # Panics
    /// Panics if the `(node, port)` pair is already attached for
    /// transmission elsewhere — a port fronts exactly one channel.
    pub fn attach(&mut self, ch: ChannelId, node: NodeId, port: u8) {
        assert!(
            self.core.tx_insert(node, port, ch),
            "port {port} of node {node:?} already attached"
        );
        self.core.channels[ch.0].taps.push((node, port));
    }

    /// Convenience: a full-duplex point-to-point link as two simplex
    /// channels. Returns `(a_to_b, b_to_a)`.
    pub fn p2p(
        &mut self,
        a: NodeId,
        a_port: u8,
        b: NodeId,
        b_port: u8,
        rate_bps: u64,
        prop: SimDuration,
    ) -> (ChannelId, ChannelId) {
        let ab = self.add_channel(rate_bps, prop);
        let ba = self.add_channel(rate_bps, prop);
        // Simplex: the tx side is attached via tx_map; the rx side is a
        // tap that never transmits. Attach sender to its channel and add
        // the receiver as a bare tap.
        assert!(self.core.tx_insert(a, a_port, ab), "port already attached");
        self.core.channels[ab.0].taps.push((a, a_port));
        self.core.channels[ab.0].taps.push((b, b_port));
        assert!(self.core.tx_insert(b, b_port, ba), "port already attached");
        self.core.channels[ba.0].taps.push((b, b_port));
        self.core.channels[ba.0].taps.push((a, a_port));
        (ab, ba)
    }

    /// Set fault injection for a channel.
    ///
    /// # Panics
    /// Panics if either probability is NaN, infinite, or outside
    /// `0.0..=1.0` — validated here once so the delivery hot path never
    /// re-clamps.
    pub fn set_faults(&mut self, ch: ChannelId, faults: FaultConfig) {
        if let Err(e) = faults.validate() {
            panic!("set_faults on channel {}: {e}", ch.0);
        }
        self.core.channels[ch.0].faults = faults;
    }

    /// Install a chaos [`FaultSchedule`]. Events apply when simulated
    /// time reaches them, before node events at the same instant.
    /// Replaces any previously installed schedule's remaining events.
    pub fn install_schedule(&mut self, schedule: FaultSchedule) {
        self.core.chaos = schedule.into_events().into();
    }

    /// Engine-side chaos accounting: losses the chaos layer itself
    /// inflicted (link kills, crashed-receiver drops, partition
    /// suppressions), through the shared drop taxonomy.
    pub fn chaos_stats(&self) -> &PipelineStats {
        &self.core.chaos_stats
    }

    /// Turn on the per-packet flight recorder with a ring bound of
    /// `capacity` hop events. Off by default: a disabled recorder draws
    /// no randomness, allocates nothing, and leaves every instrumented
    /// path — and therefore golden digests — byte-identical.
    ///
    /// # Panics
    /// Panics if `capacity` is zero or its byte size overflows the
    /// address space — validated here once (the [`Simulator::set_faults`]
    /// hoist pattern) so the record hot path never re-checks.
    pub fn enable_flight(&mut self, capacity: usize) {
        match FlightRecorder::new(capacity) {
            Ok(fr) => self.core.flight = Some(fr),
            Err(e) => panic!("enable_flight: {e}"),
        }
    }

    /// The flight recorder, when enabled.
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.core.flight.as_ref()
    }

    /// Scrape telemetry fleet-wide: every node's
    /// [`Node::publish_telemetry`] registry plus the engine's own chaos
    /// and flight-recorder instruments, absorbed into one [`Registry`]
    /// (counters and gauges add, histograms merge — order-independent).
    pub fn scrape_telemetry(&self) -> Result<Registry, RegistryError> {
        let mut fleet = Registry::new();
        for node in self.nodes.iter().flatten() {
            let mut reg = Registry::new();
            node.publish_telemetry(&mut reg)?;
            fleet.absorb(reg)?;
        }
        let mut engine = Registry::new();
        let c = &self.core.chaos_counters;
        engine.publish_counter(sirpent_telemetry::names::CHAOS_EVENTS_TOTAL, &c.events)?;
        engine.publish_counter(
            sirpent_telemetry::names::CHAOS_LINK_TRANSITIONS_TOTAL,
            &c.link,
        )?;
        engine.publish_counter(
            sirpent_telemetry::names::CHAOS_ROUTER_TRANSITIONS_TOTAL,
            &c.router,
        )?;
        engine.publish_counter(
            sirpent_telemetry::names::CHAOS_PARTITION_WINDOWS_TOTAL,
            &c.partition,
        )?;
        engine.publish_counter(
            sirpent_telemetry::names::CHAOS_WINDOW_UPDATES_TOTAL,
            &c.windows,
        )?;
        if let Some(fr) = &self.core.flight {
            engine.publish_counter(
                sirpent_telemetry::names::FLIGHT_EVENTS_RECORDED_TOTAL,
                &fr.recorded,
            )?;
            engine.publish_counter(
                sirpent_telemetry::names::FLIGHT_EVENTS_EVICTED_TOTAL,
                &fr.evicted,
            )?;
        }
        fleet.absorb(engine)?;
        Ok(fleet)
    }

    /// Whether `node` is currently crashed by the chaos layer.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.core.down.get(node.0).copied().unwrap_or(false)
    }

    /// Whether a channel is administratively up.
    pub fn is_link_up(&self, ch: ChannelId) -> bool {
        self.core.channels[ch.0].up
    }

    /// Counters for a channel.
    pub fn channel_stats(&self, ch: ChannelId) -> ChannelStats {
        self.core.channels[ch.0].stats
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Total events dispatched so far.
    pub fn events_dispatched(&self) -> u64 {
        self.core.events_dispatched
    }

    /// Schedule an initial event from outside (e.g. kick a host to start
    /// sending at t=0). Instants in the past are clamped to now.
    pub fn kick(&mut self, at: SimTime, node: NodeId, key: u64) {
        let at = at.max(self.core.now);
        self.core.push(at, node, Event::Timer { key });
    }

    /// Apply the front chaos event if it is due before (or at the same
    /// instant as) the next node event. Returns whether one was applied.
    fn step_chaos(&mut self) -> bool {
        let next_key = self.core.queue.min_key();
        let due = match (self.core.chaos.front(), next_key) {
            (Some(ce), Some(k)) => ce.at.as_nanos() <= k.0,
            (Some(_), None) => true,
            (None, _) => return false,
        };
        if !due {
            return false;
        }
        let Some(ce) = self.core.chaos.pop_front() else {
            return false;
        };
        self.core.now = self.core.now.max(ce.at);
        self.apply_chaos(ce.action);
        true
    }

    /// Apply one chaos action at the current instant.
    fn apply_chaos(&mut self, action: ChaosAction) {
        // Partition windows are global state, broadcast to every shard;
        // only the primary (shard 0, or a serial simulator) counts them,
        // so a merged scrape sees each global event exactly once. Router
        // crash/restart is likewise broadcast (adjacent routers on other
        // shards read the crashed flag through `Context::peer_up`); only
        // the shard hosting the node object counts it.
        let resident = match action {
            ChaosAction::RouterCrash { node } | ChaosAction::RouterRestart { node } => {
                self.nodes.get(node.0).map(|n| n.is_some()).unwrap_or(false)
            }
            _ => true,
        };
        let mirror_silent = (self.core.chaos_mirror
            && matches!(
                action,
                ChaosAction::PartitionStart { .. } | ChaosAction::PartitionEnd
            ))
            || !resident;
        if !mirror_silent {
            let c = &mut self.core.chaos_counters;
            c.events.inc();
            match action {
                ChaosAction::LinkDown { .. } | ChaosAction::LinkUp { .. } => c.link.inc(),
                ChaosAction::RouterCrash { .. } | ChaosAction::RouterRestart { .. } => {
                    c.router.inc()
                }
                ChaosAction::PartitionStart { .. } | ChaosAction::PartitionEnd => c.partition.inc(),
                ChaosAction::DuplicateStart { .. }
                | ChaosAction::DuplicateEnd { .. }
                | ChaosAction::JitterStart { .. }
                | ChaosAction::JitterEnd { .. }
                | ChaosAction::ErrorBurstStart { .. }
                | ChaosAction::ErrorBurstEnd { .. } => c.windows.inc(),
            }
        }
        match action {
            ChaosAction::LinkDown { ch } => {
                self.core.channels[ch.0].up = false;
                self.core.chaos_kill(ch, DropReason::LinkDown, |_| true);
            }
            ChaosAction::LinkUp { ch } => {
                let now = self.core.now;
                let c = &mut self.core.channels[ch.0];
                c.up = true;
                c.free_at = c.free_at.max(now);
            }
            ChaosAction::RouterCrash { node } => {
                if let Some(d) = self.core.down.get_mut(node.0) {
                    *d = true;
                }
                // The node's own transmissions die with it, wherever
                // they are on the wire.
                for i in 0..self.core.channels.len() {
                    self.core
                        .chaos_kill(ChannelId(i), DropReason::RouterDown, |r| r.sender == node);
                }
            }
            ChaosAction::RouterRestart { node } => {
                if let Some(d) = self.core.down.get_mut(node.0) {
                    *d = false;
                }
                // Timers set before the crash are stale soft state.
                if let Some(e) = self.core.node_epoch.get_mut(node.0) {
                    *e = self.core.seq;
                }
                if let Some(n) = self.nodes.get_mut(node.0).and_then(|n| n.as_mut()) {
                    n.on_restart();
                }
            }
            ChaosAction::PartitionStart { side_a } => {
                let mut sides = vec![false; self.nodes.len()];
                for n in side_a {
                    if let Some(s) = sides.get_mut(n.0) {
                        *s = true;
                    }
                }
                self.core.partition = Some(sides);
            }
            ChaosAction::PartitionEnd => self.core.partition = None,
            ChaosAction::DuplicateStart { ch, prob } => self.core.channels[ch.0].dup_prob = prob,
            ChaosAction::DuplicateEnd { ch } => self.core.channels[ch.0].dup_prob = 0.0,
            ChaosAction::JitterStart { ch, max_extra } => {
                self.core.channels[ch.0].jitter_max = max_extra;
            }
            ChaosAction::JitterEnd { ch } => {
                self.core.channels[ch.0].jitter_max = SimDuration::ZERO;
            }
            ChaosAction::ErrorBurstStart { ch, prob, max_run } => {
                let c = &mut self.core.channels[ch.0];
                c.burst_prob = prob;
                c.burst_run = max_run;
            }
            ChaosAction::ErrorBurstEnd { ch } => self.core.channels[ch.0].burst_prob = 0.0,
        }
    }

    /// Filter one popped event against the chaos bookkeeping (cancelled
    /// frames, crashed targets, pre-crash timers) and, for `TxDone`,
    /// retire the matching tx record. Returns `false` when the event is
    /// swallowed without dispatch.
    fn admit(core: &mut Core, sched: &Scheduled) -> bool {
        // Engine-internal bookkeeping: retire the matching tx record so
        // stale TxDones from aborted transmissions are suppressed.
        if let Event::TxDone { port, .. } = sched.event {
            let valid = if let Some(ch) = core.tx_lookup(sched.target, port) {
                let inflight = &mut core.channels[ch.0].in_flight;
                if let Some(pos) = inflight
                    .iter()
                    .position(|t| t.end == sched.time && t.sender == sched.target)
                {
                    inflight.remove(pos);
                    true
                } else {
                    false
                }
            } else {
                false
            };
            if !valid {
                return false; // aborted transmission: swallow the TxDone
            }
        }
        // Chaos: deliveries of frames whose queued transmission was
        // killed before its first bit never happened.
        let mut charged = false;
        if let Event::Frame(fe) = &sched.event {
            if !core.cancelled.is_empty() && core.cancelled.contains(&fe.frame.id) {
                return false;
            }
            // Drain the charged tombstone either way — the frame's loss
            // (if any) is settled once its delivery event surfaces.
            charged = !core.charged.is_empty() && core.charged.remove(&fe.frame.id);
        }
        // Chaos: a crashed node receives nothing. Arriving frames are
        // accounted as RouterDown losses — unless a mid-flight kill
        // already charged them — and everything else addressed to it
        // dies silently.
        if core.down.get(sched.target.0).copied().unwrap_or(false) {
            if matches!(sched.event, Event::Frame(_)) && !charged {
                core.chaos_stats.drop(DropReason::RouterDown);
            }
            return false;
        }
        // Chaos: timers set before the node's last restart belong to
        // soft state the crash destroyed.
        if matches!(sched.event, Event::Timer { .. })
            && sched.seq < core.node_epoch.get(sched.target.0).copied().unwrap_or(0)
        {
            return false;
        }
        true
    }

    /// Dispatch the next event — along with any same-instant events for
    /// the same node, batched through [`Node::on_events`] — or apply the
    /// next due chaos action. Returns `false` when both queues are
    /// empty.
    ///
    /// Batching is dispatch-order preserving: the gathered run is
    /// exactly the consecutive `(time, seq)` prefix addressed to one
    /// node, every chaos filter is applied per event, and
    /// `events_dispatched` counts each event individually — so digests
    /// and traces are byte-identical to one-at-a-time dispatch. `TxDone`
    /// never joins or extends a batch: its in-flight retirement (done
    /// here, engine-side) must stay exactly interleaved with any abort
    /// decisions the node makes in between.
    pub fn step(&mut self) -> bool {
        if self.step_chaos() {
            return true;
        }
        let Some(sched) = self.core.queue.pop() else {
            return false;
        };
        self.core.now = sched.time;
        if !Self::admit(&mut self.core, &sched) {
            return true;
        }
        self.core.events_dispatched += 1;
        let target = sched.target;
        let now = sched.time;
        let solo = matches!(sched.event, Event::TxDone { .. });
        let mut batch = std::mem::take(&mut self.batch);
        batch.clear();
        batch.push(sched.event);
        if !solo {
            // Gather the same-instant run for this node. Chaos cannot
            // fire mid-run (every action due at `now` was applied before
            // the first pop), so the filters in `admit` see the same
            // state each event would have seen dispatched one at a time.
            while let Some(next) = self.core.queue.peek() {
                if next.time != now
                    || next.target != target
                    || matches!(next.event, Event::TxDone { .. })
                {
                    break;
                }
                let Some(next) = self.core.queue.pop() else {
                    break;
                };
                if Self::admit(&mut self.core, &next) {
                    self.core.events_dispatched += 1;
                    batch.push(next.event);
                }
            }
        }
        let mut node = self.nodes[target.0]
            .take()
            .expect("node re-entrancy is impossible in a sequential engine");
        {
            let mut ctx = Context {
                core: &mut self.core,
                me: target,
            };
            if batch.len() == 1 {
                if let Some(ev) = batch.pop() {
                    node.on_event(&mut ctx, ev);
                }
            } else {
                node.on_events(&mut ctx, &mut batch);
            }
        }
        self.nodes[target.0] = Some(node);
        batch.clear();
        self.batch = batch;
        true
    }

    /// Run until the queue drains or `max_events` have been dispatched.
    pub fn run(&mut self, max_events: u64) {
        let limit = self.core.events_dispatched + max_events;
        while self.core.events_dispatched < limit && self.step() {}
    }

    /// Run until simulated `deadline` (events at exactly `deadline` are
    /// processed; later ones stay queued).
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            let next_queue = self.core.queue.min_key().map(|k| SimTime(k.0));
            let next_chaos = self.core.chaos.front().map(|c| c.at);
            let next = match (next_queue, next_chaos) {
                (Some(h), Some(c)) => h.min(c),
                (Some(h), None) => h,
                (None, Some(c)) => c,
                (None, None) => break,
            };
            if next > deadline {
                break;
            }
            self.step();
        }
        self.core.now = self.core.now.max(deadline);
    }

    /// Run strictly *before* `end`: process every event and chaos action
    /// with `time < end`, then advance the clock to `end`. This is the
    /// window primitive of the parallel runner — events at exactly `end`
    /// belong to the next window (they may be preceded by cross-shard
    /// arrivals landing at `end`, which the barrier exchange has not yet
    /// delivered).
    pub(crate) fn run_before(&mut self, end: SimTime) {
        loop {
            let next_queue = self.core.queue.min_key().map(|k| SimTime(k.0));
            let next_chaos = self.core.chaos.front().map(|c| c.at);
            let next = match (next_queue, next_chaos) {
                (Some(h), Some(c)) => h.min(c),
                (Some(h), None) => h,
                (None, Some(c)) => c,
                (None, None) => break,
            };
            if next >= end {
                break;
            }
            self.step();
        }
        self.core.now = self.core.now.max(end);
    }

    /// The instant of the next pending work item — node event or chaos
    /// action — in nanoseconds, if any. The parallel runner's window
    /// placement starts each window at the global minimum of these.
    pub(crate) fn next_event_ns(&mut self) -> Option<u64> {
        let next_queue = self.core.queue.min_key().map(|k| k.0);
        let next_chaos = self.core.chaos.front().map(|c| c.at.as_nanos());
        match (next_queue, next_chaos) {
            (Some(h), Some(c)) => Some(h.min(c)),
            (Some(h), None) => Some(h),
            (None, Some(c)) => Some(c),
            (None, None) => None,
        }
    }

    /// Take this shard's accumulated cross-shard messages (empty for a
    /// serial simulator).
    pub(crate) fn take_outbox(&mut self) -> Vec<OutMsg> {
        std::mem::take(&mut self.core.outbox)
    }

    /// Schedule a cross-shard arrival on this (owning) shard. The caller
    /// — the window runner — guarantees `time >= now` via the lookahead
    /// window algebra; `target` must be local to this shard.
    pub(crate) fn inject(&mut self, time: SimTime, target: NodeId, event: Event) {
        debug_assert!(
            !self.core.remote.get(target.0).copied().unwrap_or(false),
            "cross-shard injection must target the owning shard"
        );
        self.core.push(time, target, event);
    }

    /// Tombstone a frame cancelled on another shard: any of its delivery
    /// events still queued here will be swallowed by `admit`.
    pub(crate) fn inject_cancel(&mut self, frame: FrameId) {
        self.core.cancelled.insert(frame);
    }

    /// Immutable access to a node, downcast to its concrete type.
    pub fn node<T: 'static>(&self, id: NodeId) -> &T {
        self.nodes[id.0]
            .as_ref()
            .expect("node present")
            .as_any()
            .downcast_ref::<T>()
            .expect("node type mismatch")
    }

    /// Mutable access to a node, downcast to its concrete type.
    pub fn node_mut<T: 'static>(&mut self, id: NodeId) -> &mut T {
        self.nodes[id.0]
            .as_mut()
            .expect("node present")
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("node type mismatch")
    }

    /// Scrape one node's uniform stats surface (see [`Node::node_stats`]).
    pub fn scrape(&self, id: NodeId) -> Option<&dyn crate::stats::NodeStats> {
        self.nodes[id.0]
            .as_ref()
            .expect("node present")
            .node_stats()
    }

    /// Scrape every node that exposes the uniform stats surface, in node
    /// id order (deterministic).
    pub fn scrape_all(&self) -> Vec<(NodeId, &dyn crate::stats::NodeStats)> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| {
                n.as_ref()
                    .and_then(|n| n.node_stats())
                    .map(|s| (NodeId(i), s))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A test node that records everything it sees and can be scripted to
    /// transmit on timers.
    #[derive(Default)]
    struct Probe {
        frames: Vec<(SimTime, SimTime, Vec<u8>, bool)>,
        aborted: Vec<(SimTime, usize)>,
        tx_aborted: Vec<(SimTime, FrameId)>,
        tx_done: Vec<SimTime>,
        timers: Vec<(SimTime, u64)>,
        send_on_timer: Option<(u8, Vec<u8>)>,
        abort_on_timer: Option<(u64, u8)>,
        restarts: u32,
    }

    impl Node for Probe {
        fn on_event(&mut self, ctx: &mut Context<'_>, ev: Event) {
            match ev {
                Event::Frame(fe) => self.frames.push((
                    fe.first_bit,
                    fe.last_bit,
                    fe.frame.payload.to_vec(),
                    fe.corrupted,
                )),
                Event::FrameAborted { bytes_received, .. } => {
                    self.aborted.push((ctx.now(), bytes_received))
                }
                Event::TxDone { .. } => self.tx_done.push(ctx.now()),
                Event::TxAborted { frame, .. } => self.tx_aborted.push((ctx.now(), frame)),
                Event::Timer { key } => {
                    self.timers.push((ctx.now(), key));
                    if let Some((abort_key, port)) = self.abort_on_timer {
                        if key == abort_key {
                            ctx.abort_current_tx(port).unwrap();
                            return;
                        }
                    }
                    if let Some((port, bytes)) = self.send_on_timer.clone() {
                        ctx.transmit(port, bytes).unwrap();
                    }
                }
            }
        }
        fn on_restart(&mut self) {
            self.restarts += 1;
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    const MBPS_10: u64 = 10_000_000;

    #[test]
    fn frame_timing_is_byte_accurate() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(Box::<Probe>::default());
        let b = sim.add_node(Box::<Probe>::default());
        sim.p2p(a, 0, b, 0, MBPS_10, SimDuration::from_micros(5));
        sim.node_mut::<Probe>(a).send_on_timer = Some((0, vec![0xAA; 1000]));
        sim.kick(SimTime::ZERO, a, 1);
        sim.run(1000);

        // 1000 bytes at 10 Mb/s = 800 µs; prop 5 µs.
        let probe_b = sim.node::<Probe>(b);
        assert_eq!(probe_b.frames.len(), 1);
        let (first, last, ref bytes, corrupted) = probe_b.frames[0];
        assert_eq!(first, SimTime(5_000));
        assert_eq!(last, SimTime(805_000));
        assert_eq!(bytes.len(), 1000);
        assert!(!corrupted);
        // Sender's TxDone at 800 µs (no prop).
        assert_eq!(sim.node::<Probe>(a).tx_done, vec![SimTime(800_000)]);
    }

    #[test]
    fn byte_arrival_math() {
        let fe = FrameEvent {
            port: 0,
            frame: Frame {
                id: FrameId(0),
                payload: FrameBuf::from(vec![0; 100]),
            },
            first_bit: SimTime(1000),
            last_bit: SimTime(2000),
            rate_bps: 8_000_000_000, // 1 byte/ns
            corrupted: false,
        };
        assert_eq!(fe.byte_arrival(0), SimTime(1000));
        assert_eq!(fe.byte_arrival(18), SimTime(1018));
    }

    #[test]
    fn busy_channel_serializes_fifo() {
        let mut sim = Simulator::new(2);
        let a = sim.add_node(Box::<Probe>::default());
        let b = sim.add_node(Box::<Probe>::default());
        sim.p2p(a, 0, b, 0, MBPS_10, SimDuration::ZERO);
        // Two back-to-back transmissions queued at the same instant.
        sim.node_mut::<Probe>(a).send_on_timer = Some((0, vec![1; 125])); // 100 µs each
        sim.kick(SimTime::ZERO, a, 1);
        sim.kick(SimTime::ZERO, a, 2);
        sim.run(1000);
        let probe_b = sim.node::<Probe>(b);
        assert_eq!(probe_b.frames.len(), 2);
        assert_eq!(probe_b.frames[0].0, SimTime::ZERO);
        assert_eq!(probe_b.frames[1].0, SimTime(100_000), "second waits");
    }

    #[test]
    fn abort_notifies_receiver_before_tail() {
        let mut sim = Simulator::new(3);
        let a = sim.add_node(Box::<Probe>::default());
        let b = sim.add_node(Box::<Probe>::default());
        sim.p2p(a, 0, b, 0, MBPS_10, SimDuration::from_micros(1));
        {
            let pa = sim.node_mut::<Probe>(a);
            pa.send_on_timer = Some((0, vec![9; 1250])); // 1 ms tx time
            pa.abort_on_timer = Some((99, 0));
        }
        sim.kick(SimTime::ZERO, a, 1);
        sim.kick(SimTime(400_000), a, 99); // abort 40% through
        sim.run(1000);

        let probe_b = sim.node::<Probe>(b);
        assert_eq!(probe_b.frames.len(), 1, "header already announced");
        let tail = probe_b.frames[0].1;
        assert_eq!(probe_b.aborted.len(), 1);
        let (abort_seen, bytes_rx) = probe_b.aborted[0];
        assert!(abort_seen < tail, "abort must precede the phantom tail");
        // 400 µs at 10 Mb/s = 500 bytes.
        assert_eq!(bytes_rx, 500);
        // Sender never gets a TxDone for the aborted frame.
        assert!(sim.node::<Probe>(a).tx_done.is_empty());
    }

    #[test]
    fn abort_frees_the_channel() {
        let mut sim = Simulator::new(4);
        let a = sim.add_node(Box::<Probe>::default());
        let b = sim.add_node(Box::<Probe>::default());
        let (ab, _) = sim.p2p(a, 0, b, 0, MBPS_10, SimDuration::ZERO);
        {
            let pa = sim.node_mut::<Probe>(a);
            pa.send_on_timer = Some((0, vec![7; 1250]));
            pa.abort_on_timer = Some((99, 0));
        }
        sim.kick(SimTime::ZERO, a, 1);
        sim.kick(SimTime(100_000), a, 99);
        // A new transmission right after the abort goes out immediately.
        sim.kick(SimTime(100_000), a, 2);
        sim.run(1000);
        let probe_b = sim.node::<Probe>(b);
        assert_eq!(probe_b.frames.len(), 2);
        assert_eq!(probe_b.frames[1].0, SimTime(100_000));
        assert_eq!(sim.channel_stats(ab).aborts, 1);
    }

    #[test]
    fn shared_bus_broadcasts_to_all_other_taps() {
        let mut sim = Simulator::new(5);
        let a = sim.add_node(Box::<Probe>::default());
        let b = sim.add_node(Box::<Probe>::default());
        let c = sim.add_node(Box::<Probe>::default());
        let bus = sim.add_channel(MBPS_10, SimDuration::from_micros(2));
        sim.attach(bus, a, 0);
        sim.attach(bus, b, 0);
        sim.attach(bus, c, 0);
        sim.node_mut::<Probe>(a).send_on_timer = Some((0, vec![3; 100]));
        sim.kick(SimTime::ZERO, a, 1);
        sim.run(100);
        assert_eq!(sim.node::<Probe>(b).frames.len(), 1);
        assert_eq!(sim.node::<Probe>(c).frames.len(), 1);
        assert_eq!(sim.node::<Probe>(a).frames.len(), 0, "no self-delivery");
    }

    #[test]
    fn bus_fanout_shares_packet_body() {
        use sirpent_wire::buf::PacketBuf;

        #[derive(Default)]
        struct Cap {
            got: Vec<FrameBuf>,
        }
        impl Node for Cap {
            fn on_event(&mut self, _ctx: &mut Context<'_>, ev: Event) {
                if let Event::Frame(fe) = ev {
                    self.got.push(fe.frame.payload);
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        struct Sender(FrameBuf);
        impl Node for Sender {
            fn on_event(&mut self, ctx: &mut Context<'_>, ev: Event) {
                if matches!(ev, Event::Timer { .. }) {
                    ctx.transmit(0, self.0.clone()).unwrap();
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let body = PacketBuf::from(vec![0xEE; 512]);
        let frame = FrameBuf::new(vec![1, 0], body.clone());
        let mut sim = Simulator::new(12);
        let a = sim.add_node(Box::new(Sender(frame)));
        let b = sim.add_node(Box::<Cap>::default());
        let c = sim.add_node(Box::<Cap>::default());
        let bus = sim.add_channel(MBPS_10, SimDuration::ZERO);
        sim.attach(bus, a, 0);
        sim.attach(bus, b, 0);
        sim.attach(bus, c, 0);
        sim.kick(SimTime::ZERO, a, 1);
        sim.run(100);
        for id in [b, c] {
            let cap = sim.node::<Cap>(id);
            assert_eq!(cap.got.len(), 1);
            // The delivered copy shares the sender's body store: the
            // engine fanned out without copying the packet.
            assert!(cap.got[0].body().shares_store_with(&body));
        }
    }

    #[test]
    fn fault_injection_drops_and_corrupts() {
        let mut sim = Simulator::new(6);
        let a = sim.add_node(Box::<Probe>::default());
        let b = sim.add_node(Box::<Probe>::default());
        let (ab, _) = sim.p2p(a, 0, b, 0, MBPS_10, SimDuration::ZERO);
        sim.set_faults(
            ab,
            FaultConfig {
                drop_prob: 0.3,
                corrupt_prob: 0.3,
            },
        );
        sim.node_mut::<Probe>(a).send_on_timer = Some((0, vec![0x55; 64]));
        for i in 0..200 {
            sim.kick(SimTime(i * 1_000_000), a, 1);
        }
        sim.run(10_000);
        let st = sim.channel_stats(ab);
        assert!(st.drops > 20, "drops={}", st.drops);
        assert!(st.corrupted > 20, "corrupted={}", st.corrupted);
        let probe_b = sim.node::<Probe>(b);
        assert_eq!(probe_b.frames.len() as u64, 200 - st.drops);
        let corrupt_seen = probe_b.frames.iter().filter(|f| f.3).count() as u64;
        assert_eq!(corrupt_seen, st.corrupted);
        // Corruption really flips a byte.
        for f in probe_b.frames.iter().filter(|f| f.3) {
            assert_ne!(f.2, vec![0x55; 64]);
        }
    }

    #[test]
    fn determinism_same_seed_same_run() {
        fn run(seed: u64) -> Vec<(SimTime, usize)> {
            let mut sim = Simulator::new(seed);
            let a = sim.add_node(Box::<Probe>::default());
            let b = sim.add_node(Box::<Probe>::default());
            let (ab, _) = sim.p2p(a, 0, b, 0, MBPS_10, SimDuration::from_micros(3));
            sim.set_faults(
                ab,
                FaultConfig {
                    drop_prob: 0.2,
                    corrupt_prob: 0.2,
                },
            );
            sim.node_mut::<Probe>(a).send_on_timer = Some((0, vec![1; 99]));
            for i in 0..50 {
                sim.kick(SimTime(i * 500_000), a, 1);
            }
            sim.run(10_000);
            sim.node::<Probe>(b)
                .frames
                .iter()
                .map(|f| (f.0, f.2.len()))
                .collect()
        }
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds diverge");
    }

    #[test]
    fn utilization_accounting() {
        let mut sim = Simulator::new(7);
        let a = sim.add_node(Box::<Probe>::default());
        let b = sim.add_node(Box::<Probe>::default());
        let (ab, _) = sim.p2p(a, 0, b, 0, MBPS_10, SimDuration::ZERO);
        sim.node_mut::<Probe>(a).send_on_timer = Some((0, vec![1; 125])); // 100 µs
        sim.kick(SimTime::ZERO, a, 1);
        sim.kick(SimTime(500_000), a, 1);
        sim.run_until(SimTime(1_000_000));
        let st = sim.channel_stats(ab);
        assert_eq!(st.frames, 2);
        assert_eq!(st.busy, SimDuration::from_micros(200));
        let u = st.utilization(SimDuration::from_millis(1));
        assert!((u - 0.2).abs() < 1e-9, "u={u}");
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut sim = Simulator::new(8);
        sim.run_until(SimTime(5_000_000));
        assert_eq!(sim.now(), SimTime(5_000_000));
    }

    #[test]
    #[should_panic(expected = "already attached")]
    fn double_attach_panics() {
        let mut sim = Simulator::new(9);
        let a = sim.add_node(Box::<Probe>::default());
        let ch1 = sim.add_channel(MBPS_10, SimDuration::ZERO);
        let ch2 = sim.add_channel(MBPS_10, SimDuration::ZERO);
        sim.attach(ch1, a, 0);
        sim.attach(ch2, a, 0);
    }

    #[test]
    fn abort_without_tx_errors() {
        struct Aborter(Option<SimError>);
        impl Node for Aborter {
            fn on_event(&mut self, ctx: &mut Context<'_>, ev: Event) {
                if matches!(ev, Event::Timer { .. }) {
                    self.0 = ctx.abort_current_tx(0).err();
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim = Simulator::new(10);
        let a = sim.add_node(Box::new(Aborter(None)));
        let b = sim.add_node(Box::<Probe>::default());
        sim.p2p(a, 0, b, 0, MBPS_10, SimDuration::ZERO);
        sim.kick(SimTime::ZERO, a, 0);
        sim.run(10);
        assert_eq!(sim.node::<Aborter>(a).0, Some(SimError::NothingToAbort));
    }

    #[test]
    fn trace_collection() {
        struct Tracer;
        impl Node for Tracer {
            fn on_event(&mut self, ctx: &mut Context<'_>, _ev: Event) {
                ctx.trace(|| "hello".to_string());
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim = Simulator::new(11);
        let a = sim.add_node(Box::new(Tracer));
        sim.enable_trace();
        sim.kick(SimTime(100), a, 0);
        sim.run(10);
        assert_eq!(sim.trace().len(), 1);
        assert_eq!(sim.trace()[0].2, "hello");
    }

    // ----- chaos layer ---------------------------------------------------

    fn schedule(events: Vec<(u64, ChaosAction)>) -> FaultSchedule {
        FaultSchedule::new(
            events
                .into_iter()
                .map(|(at, action)| ChaosEvent {
                    at: SimTime(at),
                    action,
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn link_down_aborts_midflight_before_tail() {
        let mut sim = Simulator::new(20);
        let a = sim.add_node(Box::<Probe>::default());
        let b = sim.add_node(Box::<Probe>::default());
        let (ab, _) = sim.p2p(a, 0, b, 0, MBPS_10, SimDuration::from_micros(1));
        sim.node_mut::<Probe>(a).send_on_timer = Some((0, vec![9; 1250])); // 1 ms
        sim.kick(SimTime::ZERO, a, 1);
        sim.install_schedule(schedule(vec![(400_000, ChaosAction::LinkDown { ch: ab })]));
        sim.run(1000);

        let probe_b = sim.node::<Probe>(b);
        assert_eq!(probe_b.frames.len(), 1, "header already announced");
        let tail = probe_b.frames[0].1;
        assert_eq!(probe_b.aborted.len(), 1);
        let (abort_seen, bytes_rx) = probe_b.aborted[0];
        assert!(abort_seen < tail, "abort must precede the phantom tail");
        assert_eq!(bytes_rx, 500, "400 µs at 10 Mb/s");
        let probe_a = sim.node::<Probe>(a);
        assert!(probe_a.tx_done.is_empty(), "no TxDone for a killed frame");
        assert_eq!(probe_a.tx_aborted.len(), 1);
        assert_eq!(probe_a.tx_aborted[0].0, SimTime(400_000));
        assert_eq!(sim.chaos_stats().drops[DropReason::LinkDown], 1);
        assert!(!sim.is_link_up(ab));
    }

    #[test]
    fn link_down_cancels_queued_and_link_up_restores() {
        let mut sim = Simulator::new(21);
        let a = sim.add_node(Box::<Probe>::default());
        let b = sim.add_node(Box::<Probe>::default());
        let (ab, _) = sim.p2p(a, 0, b, 0, MBPS_10, SimDuration::ZERO);
        sim.node_mut::<Probe>(a).send_on_timer = Some((0, vec![1; 125])); // 100 µs
                                                                          // Two back-to-back at t=0: the first is mid-flight at 50 µs, the
                                                                          // second still queued behind it.
        sim.kick(SimTime::ZERO, a, 1);
        sim.kick(SimTime::ZERO, a, 2);
        // A third send after the link comes back.
        sim.kick(SimTime(400_000), a, 3);
        sim.install_schedule(schedule(vec![
            (50_000, ChaosAction::LinkDown { ch: ab }),
            (300_000, ChaosAction::LinkUp { ch: ab }),
        ]));
        sim.run(1000);

        let probe_b = sim.node::<Probe>(b);
        // First frame: announced, then aborted. Second: cancelled before
        // its first bit — the receiver never hears of it. Third: clean.
        assert_eq!(probe_b.frames.len(), 2);
        assert_eq!(probe_b.aborted.len(), 1);
        assert_eq!(probe_b.frames[1].0, SimTime(400_000));
        assert_eq!(sim.chaos_stats().drops[DropReason::LinkDown], 2);
        let probe_a = sim.node::<Probe>(a);
        assert_eq!(probe_a.tx_aborted.len(), 2, "both kills notify the sender");
        assert_eq!(probe_a.tx_done.len(), 1, "only the clean frame completes");
        assert!(sim.is_link_up(ab));
    }

    #[test]
    fn transmit_on_down_link_reports_error() {
        struct TxTry(Option<SimError>);
        impl Node for TxTry {
            fn on_event(&mut self, ctx: &mut Context<'_>, ev: Event) {
                if matches!(ev, Event::Timer { .. }) {
                    self.0 = ctx.transmit(0, vec![1; 10]).err();
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim = Simulator::new(22);
        let a = sim.add_node(Box::new(TxTry(None)));
        let b = sim.add_node(Box::<Probe>::default());
        let (ab, _) = sim.p2p(a, 0, b, 0, MBPS_10, SimDuration::ZERO);
        sim.install_schedule(schedule(vec![(0, ChaosAction::LinkDown { ch: ab })]));
        sim.kick(SimTime(1_000), a, 1);
        sim.run(100);
        assert_eq!(sim.node::<TxTry>(a).0, Some(SimError::LinkDown));
        assert!(sim.node::<Probe>(b).frames.is_empty());
    }

    #[test]
    fn crash_swallows_traffic_and_restart_loses_timers() {
        let mut sim = Simulator::new(23);
        let a = sim.add_node(Box::<Probe>::default());
        let b = sim.add_node(Box::<Probe>::default());
        sim.p2p(a, 0, b, 0, MBPS_10, SimDuration::ZERO);
        sim.node_mut::<Probe>(a).send_on_timer = Some((0, vec![5; 125]));
        // A frame lands while b is down; a timer armed pre-crash would
        // fire after the restart.
        sim.kick(SimTime(100_000), a, 1);
        sim.kick(SimTime(150_000), b, 77);
        // After the restart a second frame goes through.
        sim.kick(SimTime(300_000), a, 2);
        sim.install_schedule(schedule(vec![
            (50_000, ChaosAction::RouterCrash { node: b }),
            (120_000, ChaosAction::RouterRestart { node: b }),
        ]));
        sim.run(1000);

        let probe_b = sim.node::<Probe>(b);
        assert_eq!(probe_b.restarts, 1, "the restart hook ran");
        assert!(
            probe_b.timers.is_empty(),
            "pre-crash timers are lost soft state"
        );
        // The down-window frame was swallowed and accounted; the
        // post-restart frame arrived.
        assert_eq!(probe_b.frames.len(), 1);
        assert_eq!(probe_b.frames[0].0, SimTime(300_000));
        assert_eq!(sim.chaos_stats().drops[DropReason::RouterDown], 1);
        assert!(!sim.is_down(b));
    }

    #[test]
    fn crash_kills_the_crashed_nodes_own_transmissions() {
        let mut sim = Simulator::new(24);
        let a = sim.add_node(Box::<Probe>::default());
        let b = sim.add_node(Box::<Probe>::default());
        sim.p2p(a, 0, b, 0, MBPS_10, SimDuration::ZERO);
        sim.node_mut::<Probe>(a).send_on_timer = Some((0, vec![8; 1250])); // 1 ms
        sim.kick(SimTime::ZERO, a, 1);
        sim.install_schedule(schedule(vec![(
            400_000,
            ChaosAction::RouterCrash { node: a },
        )]));
        sim.run(1000);
        // The sender crashed mid-transmission: the receiver must see the
        // retraction, and the loss is accounted as RouterDown.
        let probe_b = sim.node::<Probe>(b);
        assert_eq!(probe_b.aborted.len(), 1);
        assert_eq!(sim.chaos_stats().drops[DropReason::RouterDown], 1);
        assert!(sim.is_down(a));
    }

    #[test]
    fn partition_suppresses_cross_side_delivery_only() {
        let mut sim = Simulator::new(25);
        let a = sim.add_node(Box::<Probe>::default());
        let b = sim.add_node(Box::<Probe>::default());
        let c = sim.add_node(Box::<Probe>::default());
        let bus = sim.add_channel(MBPS_10, SimDuration::ZERO);
        sim.attach(bus, a, 0);
        sim.attach(bus, b, 0);
        sim.attach(bus, c, 0);
        sim.node_mut::<Probe>(a).send_on_timer = Some((0, vec![3; 100]));
        sim.kick(SimTime(100_000), a, 1);
        sim.kick(SimTime(600_000), a, 2);
        sim.install_schedule(schedule(vec![
            (0, ChaosAction::PartitionStart { side_a: vec![a, b] }),
            (500_000, ChaosAction::PartitionEnd),
        ]));
        sim.run(1000);
        // During the window: same-side b hears a, far-side c does not.
        // After the window heals, everyone hears everything.
        assert_eq!(sim.node::<Probe>(b).frames.len(), 2);
        assert_eq!(sim.node::<Probe>(c).frames.len(), 1);
        assert_eq!(sim.chaos_stats().drops[DropReason::Partitioned], 1);
    }

    #[test]
    fn duplication_window_delivers_twice() {
        let mut sim = Simulator::new(26);
        let a = sim.add_node(Box::<Probe>::default());
        let b = sim.add_node(Box::<Probe>::default());
        let (ab, _) = sim.p2p(a, 0, b, 0, MBPS_10, SimDuration::ZERO);
        sim.node_mut::<Probe>(a).send_on_timer = Some((0, vec![4; 50]));
        sim.kick(SimTime(100_000), a, 1);
        sim.kick(SimTime(600_000), a, 2);
        sim.install_schedule(schedule(vec![
            (0, ChaosAction::DuplicateStart { ch: ab, prob: 1.0 }),
            (500_000, ChaosAction::DuplicateEnd { ch: ab }),
        ]));
        sim.run(1000);
        let probe_b = sim.node::<Probe>(b);
        assert_eq!(probe_b.frames.len(), 3, "one doubled + one clean");
        assert_eq!(probe_b.frames[0].2, probe_b.frames[1].2);
        assert_eq!(sim.channel_stats(ab).duplicated, 1);
    }

    #[test]
    fn jitter_keeps_abort_before_tail() {
        let mut sim = Simulator::new(27);
        let a = sim.add_node(Box::<Probe>::default());
        let b = sim.add_node(Box::<Probe>::default());
        let (ab, _) = sim.p2p(a, 0, b, 0, MBPS_10, SimDuration::from_micros(2));
        sim.node_mut::<Probe>(a).send_on_timer = Some((0, vec![6; 1250])); // 1 ms
        sim.kick(SimTime(100_000), a, 1);
        sim.install_schedule(schedule(vec![
            (
                0,
                ChaosAction::JitterStart {
                    ch: ab,
                    max_extra: SimDuration::from_micros(50),
                },
            ),
            (500_000, ChaosAction::LinkDown { ch: ab }),
        ]));
        sim.run(1000);
        let probe_b = sim.node::<Probe>(b);
        assert_eq!(probe_b.frames.len(), 1);
        assert_eq!(probe_b.aborted.len(), 1);
        // The abort rides the same jittered path as the frame: it still
        // lands strictly before the phantom tail.
        assert!(probe_b.aborted[0].0 < probe_b.frames[0].1);
        assert!(probe_b.frames[0].0 >= SimTime(102_000), "prop + jitter ≥ 0");
    }

    #[test]
    fn error_burst_flips_a_contiguous_run() {
        let mut sim = Simulator::new(28);
        let a = sim.add_node(Box::<Probe>::default());
        let b = sim.add_node(Box::<Probe>::default());
        let (ab, _) = sim.p2p(a, 0, b, 0, MBPS_10, SimDuration::ZERO);
        sim.node_mut::<Probe>(a).send_on_timer = Some((0, vec![0x55; 64]));
        sim.kick(SimTime(100_000), a, 1);
        sim.install_schedule(schedule(vec![(
            0,
            ChaosAction::ErrorBurstStart {
                ch: ab,
                prob: 1.0,
                max_run: 4,
            },
        )]));
        sim.run(1000);
        let probe_b = sim.node::<Probe>(b);
        assert_eq!(probe_b.frames.len(), 1);
        assert!(probe_b.frames[0].3, "flagged corrupted");
        let diffs: Vec<usize> = probe_b.frames[0]
            .2
            .iter()
            .enumerate()
            .filter_map(|(i, &byte)| (byte != 0x55).then_some(i))
            .collect();
        assert!(!diffs.is_empty() && diffs.len() <= 4);
        assert_eq!(
            diffs.last().unwrap() - diffs[0] + 1,
            diffs.len(),
            "the burst is one contiguous run"
        );
        assert_eq!(sim.channel_stats(ab).corrupted, 1);
    }

    #[test]
    fn empty_schedule_is_inert() {
        fn run(install: bool) -> Vec<(SimTime, usize)> {
            let mut sim = Simulator::new(29);
            let a = sim.add_node(Box::<Probe>::default());
            let b = sim.add_node(Box::<Probe>::default());
            let (ab, _) = sim.p2p(a, 0, b, 0, MBPS_10, SimDuration::from_micros(3));
            sim.set_faults(
                ab,
                FaultConfig {
                    drop_prob: 0.2,
                    corrupt_prob: 0.2,
                },
            );
            if install {
                sim.install_schedule(schedule(vec![]));
            }
            sim.node_mut::<Probe>(a).send_on_timer = Some((0, vec![1; 99]));
            for i in 0..50 {
                sim.kick(SimTime(i * 500_000), a, 1);
            }
            sim.run(10_000);
            sim.node::<Probe>(b)
                .frames
                .iter()
                .map(|f| (f.0, f.2.len()))
                .collect()
        }
        assert_eq!(run(false), run(true), "chaos present-but-idle is free");
    }

    #[test]
    fn scrape_telemetry_counts_chaos_and_flight_events() {
        use sirpent_telemetry::names;

        let mut sim = Simulator::new(31);
        let a = sim.add_node(Box::<Probe>::default());
        let b = sim.add_node(Box::<Probe>::default());
        let (ab, _) = sim.p2p(a, 0, b, 0, MBPS_10, SimDuration::ZERO);
        sim.enable_flight(64);
        sim.node_mut::<Probe>(a).send_on_timer = Some((0, vec![9; 1250]));
        sim.kick(SimTime::ZERO, a, 1);
        sim.install_schedule(schedule(vec![
            (400_000, ChaosAction::LinkDown { ch: ab }),
            (500_000, ChaosAction::LinkUp { ch: ab }),
            (600_000, ChaosAction::DuplicateStart { ch: ab, prob: 0.5 }),
            (700_000, ChaosAction::DuplicateEnd { ch: ab }),
        ]));
        sim.run(1000);
        let reg = sim.scrape_telemetry().unwrap();
        assert_eq!(reg.counter(names::CHAOS_EVENTS_TOTAL), 4);
        assert_eq!(reg.counter(names::CHAOS_LINK_TRANSITIONS_TOTAL), 2);
        assert_eq!(reg.counter(names::CHAOS_WINDOW_UPDATES_TOTAL), 2);
        assert_eq!(reg.counter(names::CHAOS_ROUTER_TRANSITIONS_TOTAL), 0);
        // The recorder is live (Probe records nothing itself, so zero
        // events is correct) and its instruments are published.
        assert!(reg.get(names::FLIGHT_EVENTS_RECORDED_TOTAL).is_some());
        assert!(sim.flight().unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "enable_flight")]
    fn enable_flight_rejects_zero_capacity() {
        let mut sim = Simulator::new(32);
        sim.enable_flight(0);
    }

    #[test]
    fn flight_record_via_context_is_stamped_with_node_and_time() {
        struct Recorder;
        impl Node for Recorder {
            fn on_event(&mut self, ctx: &mut Context<'_>, ev: Event) {
                if matches!(ev, Event::Timer { .. }) {
                    assert!(ctx.flight_enabled());
                    ctx.flight_record(0xFEED, HopKind::Inject);
                    ctx.flight_record_at(SimTime(9_999_999), 0xFEED, HopKind::Delivered);
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim = Simulator::new(33);
        let a = sim.add_node(Box::new(Recorder));
        sim.enable_flight(8);
        sim.kick(SimTime(1_000), a, 0);
        sim.run(10);
        let fr = sim.flight().unwrap();
        let evs: Vec<HopEvent> = fr.events().copied().collect();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].node, a.0 as u32);
        assert_eq!(evs[0].t_ns, 1_000);
        assert_eq!(evs[1].t_ns, 9_999_999);
        let traces = fr.reconstruct();
        assert_eq!(traces.len(), 1);
        assert!(traces[0].is_complete());
    }

    #[test]
    #[should_panic(expected = "set_faults")]
    fn set_faults_rejects_nan() {
        let mut sim = Simulator::new(30);
        let a = sim.add_node(Box::<Probe>::default());
        let b = sim.add_node(Box::<Probe>::default());
        let (ab, _) = sim.p2p(a, 0, b, 0, MBPS_10, SimDuration::ZERO);
        sim.set_faults(
            ab,
            FaultConfig {
                drop_prob: f64::NAN,
                corrupt_prob: 0.0,
            },
        );
    }
}
