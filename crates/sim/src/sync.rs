//! Conservative time-window execution of sharded simulators.
//!
//! The runner advances all shards in lockstep windows `[W, W + L)` where
//! `L` is the partition's lookahead (minimum propagation delay of any
//! cross-shard channel). Safety argument, spelled out in DESIGN.md §11:
//! every cross-shard message produced while a shard executes inside
//! `[W, W + L)` carries an arrival time `>= send_time + prop >= W + L`,
//! i.e. it lands at or after the *next* window's start — so executing
//! the current window without seeing it can never violate causality.
//!
//! Window starts hop straight to the global minimum pending event time
//! (published through per-shard atomics, reduced after a barrier), so
//! sparse regions of simulated time cost one barrier round, not
//! `horizon / L` of them.
//!
//! Worker threads own disjoint, contiguous slices of the shard vector.
//! All cross-thread traffic flows through per-shard mailboxes locked
//! only at window edges; the two barriers per iteration order "publish
//! next-event times" and "exchange mailboxes" so that a mailbox is
//! never written and drained in the same half-window. Thread count
//! therefore cannot affect any simulation-visible ordering — only which
//! OS thread happens to execute a shard's (already deterministic) work.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use crate::engine::{OutMsg, Simulator};
use crate::time::SimTime;

/// If a worker's node code panics while other workers wait on a
/// barrier, the process would deadlock (std's `Barrier` has no poison
/// protocol). This guard turns such a panic into a process abort with
/// the panic message already printed — loud and immediate beats hung.
struct AbortOnPanic;

impl Drop for AbortOnPanic {
    fn drop(&mut self) {
        if std::thread::panicking() {
            std::process::abort();
        }
    }
}

/// Run every shard up to and including `deadline` using at most
/// `threads` worker threads (clamped to the shard count).
pub(crate) fn run_windows(
    shards: &mut [Simulator],
    owner: &[usize],
    lookahead_ns: Option<u64>,
    deadline: SimTime,
    threads: usize,
) {
    let s = shards.len();
    if s == 0 {
        return;
    }
    if s == 1 {
        if let Some(sim) = shards.first_mut() {
            sim.run_until(deadline);
        }
        return;
    }
    // No cross-shard link: every shard is causally independent and can
    // run to the deadline in one shot (lookahead saturates the window).
    let lookahead = lookahead_ns.unwrap_or(u64::MAX);

    let workers = threads.clamp(1, s);
    let chunk = s.div_ceil(workers);
    let spawned = s.div_ceil(chunk);
    let barrier = Barrier::new(spawned);
    let mailboxes: Vec<Mutex<Vec<(u32, OutMsg)>>> =
        (0..s).map(|_| Mutex::new(Vec::new())).collect();
    let next_times: Vec<AtomicU64> = (0..s).map(|_| AtomicU64::new(u64::MAX)).collect();

    std::thread::scope(|scope| {
        for (w, slice) in shards.chunks_mut(chunk).enumerate() {
            let base = w * chunk;
            let barrier = &barrier;
            let mailboxes = &mailboxes;
            let next_times = &next_times;
            scope.spawn(move || {
                let _guard = AbortOnPanic;
                worker_loop(
                    slice, base, owner, s, lookahead, deadline, barrier, mailboxes, next_times,
                );
            });
        }
    });
}

/// One worker's share of the window protocol. `sims` is the contiguous
/// run of shards starting at global index `base`.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    sims: &mut [Simulator],
    base: usize,
    owner: &[usize],
    total_shards: usize,
    lookahead: u64,
    deadline: SimTime,
    barrier: &Barrier,
    mailboxes: &[Mutex<Vec<(u32, OutMsg)>>],
    next_times: &[AtomicU64],
) {
    loop {
        // Publish each owned shard's next pending event time. Relaxed
        // suffices: the barrier provides the ordering edge.
        for (i, sim) in sims.iter_mut().enumerate() {
            let t = sim.next_event_ns().unwrap_or(u64::MAX);
            if let Some(slot) = next_times.get(base + i) {
                slot.store(t, Ordering::Relaxed);
            }
        }
        barrier.wait();
        // Every worker computes the same global minimum from the same
        // (barrier-frozen) slots, so all take the same branch below.
        let global_next = next_times
            .iter()
            .map(|slot| slot.load(Ordering::Relaxed))
            .min()
            .unwrap_or(u64::MAX);

        if global_next > deadline.as_nanos() {
            // Nothing left inside the horizon anywhere: finish clocks
            // (chaos scheduled exactly at the deadline still applies)
            // and stop. Mailboxes are provably empty here — every
            // window's sends were drained before its next publish.
            for sim in sims.iter_mut() {
                sim.run_until(deadline);
            }
            barrier.wait();
            return;
        }

        let w_end = global_next.saturating_add(lookahead);
        if w_end > deadline.as_nanos() {
            // Final window: run through the deadline inclusively, then
            // do one last exchange so deliveries landing beyond the
            // deadline are queued (not lost) for any later phase.
            for (i, sim) in sims.iter_mut().enumerate() {
                sim.run_until(deadline);
                flush_outbox(base + i, sim, owner, total_shards, mailboxes);
            }
        } else {
            // Interior window [global_next, w_end): strictly-before so
            // events at exactly w_end see mail sent during this window.
            let end = SimTime(w_end);
            for (i, sim) in sims.iter_mut().enumerate() {
                sim.run_before(end);
                flush_outbox(base + i, sim, owner, total_shards, mailboxes);
            }
        }
        barrier.wait();
        // Drain after the barrier: every producer finished flushing, and
        // nobody writes mailboxes again until after the next barrier.
        for (i, sim) in sims.iter_mut().enumerate() {
            deliver_inbox(base + i, sim, mailboxes);
        }
    }
}

/// Route one shard's outbox into the destination mailboxes: deliveries
/// to the shard owning the target node, cancel tombstones to every
/// other shard (any of them may hold an undelivered copy).
fn flush_outbox(
    me: usize,
    sim: &mut Simulator,
    owner: &[usize],
    total_shards: usize,
    mailboxes: &[Mutex<Vec<(u32, OutMsg)>>],
) {
    let out = sim.take_outbox();
    if out.is_empty() {
        return;
    }
    // Group per destination first so each mailbox is locked once per
    // window, not once per message.
    let mut per: Vec<Vec<(u32, OutMsg)>> = (0..total_shards).map(|_| Vec::new()).collect();
    for msg in out {
        let dest = match &msg {
            OutMsg::Deliver { target, .. } => Some(owner.get(target.0).copied().unwrap_or(0)),
            OutMsg::Cancel { .. } => None,
        };
        match dest {
            Some(d) => {
                if let Some(v) = per.get_mut(d) {
                    v.push((me as u32, msg));
                }
            }
            None => {
                for (d, v) in per.iter_mut().enumerate() {
                    if d != me {
                        v.push((me as u32, msg.clone()));
                    }
                }
            }
        }
    }
    for (d, batch) in per.into_iter().enumerate() {
        if batch.is_empty() {
            continue;
        }
        if let Some(m) = mailboxes.get(d) {
            let mut guard = match m.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.extend(batch);
        }
    }
}

/// Drain this shard's mailbox in a deterministic order: cancels first
/// (tombstones must beat the deliveries they refer to), then deliveries
/// by (arrival time, source shard); `sort_by_key` is stable, so each
/// source's in-order batch stays in order on ties.
fn deliver_inbox(me: usize, sim: &mut Simulator, mailboxes: &[Mutex<Vec<(u32, OutMsg)>>]) {
    let mut inbox = match mailboxes.get(me) {
        Some(m) => {
            let mut guard = match m.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            std::mem::take(&mut *guard)
        }
        None => return,
    };
    if inbox.is_empty() {
        return;
    }
    inbox.sort_by_key(|(src, msg)| match msg {
        OutMsg::Cancel { .. } => (0u64, *src),
        // Arrival times are strictly positive (>= window end), so
        // clamping to 1 keeps cancels unambiguously first.
        OutMsg::Deliver { time, .. } => (time.as_nanos().max(1), *src),
    });
    for (_, msg) in inbox {
        match msg {
            OutMsg::Deliver {
                time,
                target,
                event,
            } => sim.inject(time, target, event),
            OutMsg::Cancel { frame } => sim.inject_cancel(frame),
        }
    }
}
