//! The chaos layer: a deterministic, seeded schedule of timed fault
//! events applied by the engine between node events.
//!
//! A [`FaultSchedule`] is a time-sorted list of [`ChaosEvent`]s. The
//! engine applies each event when simulated time reaches it — **before**
//! any node event at the same instant — so a schedule is reproducible
//! bit-for-bit: chaos consumes no RNG draws, and with no schedule
//! installed the engine's behaviour (including RNG draw order) is
//! untouched.
//!
//! Fault classes:
//!
//! * **Link down / up** — a down channel refuses new transmissions
//!   ([`crate::engine::SimError::LinkDown`]) and kills everything it was
//!   carrying: mid-flight frames are aborted toward their receivers
//!   (the same `FrameAborted`-before-`last_bit` contract as sender
//!   aborts), queued-but-unstarted frames vanish without a first bit,
//!   and each killed transmission is accounted as a
//!   [`DropReason::LinkDown`](crate::stats::DropReason::LinkDown) drop
//!   in the engine's chaos stats plus a
//!   [`Event::TxAborted`](crate::engine::Event::TxAborted) notification
//!   to the sender.
//! * **Router crash / restart** — a crashed node receives nothing:
//!   frames arriving while it is down are
//!   [`DropReason::RouterDown`](crate::stats::DropReason::RouterDown)
//!   drops, its own in-flight transmissions are killed, and timers set
//!   before the crash never fire (soft state dies with the node). On
//!   restart the node's [`Node::on_restart`](crate::engine::Node::on_restart)
//!   hook runs, losing whatever state its contract says a reboot loses.
//! * **Partition windows** — while active, deliveries between the two
//!   sides are suppressed
//!   ([`DropReason::Partitioned`](crate::stats::DropReason::Partitioned));
//!   frames already in flight when the window opens still arrive.
//! * **Duplication windows** — each delivered copy may be delivered
//!   twice on a channel (probabilistic, seeded).
//! * **Jitter windows** — each transmission may see extra propagation
//!   delay (uniform in `0..=max_extra`), reordering frames across a
//!   channel while preserving abort-before-tail ordering per frame.
//! * **Error-burst windows** — a contiguous run of bytes may be
//!   corrupted in a delivered copy, on top of the per-channel
//!   single-byte [`FaultConfig`](crate::engine::FaultConfig) model.

use crate::engine::{ChannelId, NodeId};
use crate::time::{SimDuration, SimTime};

/// One scheduled fault action.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosAction {
    /// Take a channel down, killing in-flight and queued transmissions.
    LinkDown {
        /// The affected channel.
        ch: ChannelId,
    },
    /// Bring a channel back up.
    LinkUp {
        /// The affected channel.
        ch: ChannelId,
    },
    /// Crash a node: it stops receiving, its transmissions die, its
    /// timers are lost.
    RouterCrash {
        /// The crashed node.
        node: NodeId,
    },
    /// Restart a crashed node, running its
    /// [`Node::on_restart`](crate::engine::Node::on_restart) state-loss
    /// hook.
    RouterRestart {
        /// The restarted node.
        node: NodeId,
    },
    /// Open a partition window: nodes in `side_a` cannot exchange
    /// frames with nodes outside it.
    PartitionStart {
        /// One side of the partition (everything else is the other side).
        side_a: Vec<NodeId>,
    },
    /// Close the partition window.
    PartitionEnd,
    /// Open a duplication window on a channel.
    DuplicateStart {
        /// The affected channel.
        ch: ChannelId,
        /// Probability each delivered copy is delivered twice.
        prob: f64,
    },
    /// Close the duplication window.
    DuplicateEnd {
        /// The affected channel.
        ch: ChannelId,
    },
    /// Open a jitter window on a channel: each transmission gets extra
    /// propagation delay drawn uniformly from `0..=max_extra`.
    JitterStart {
        /// The affected channel.
        ch: ChannelId,
        /// Largest extra propagation delay.
        max_extra: SimDuration,
    },
    /// Close the jitter window.
    JitterEnd {
        /// The affected channel.
        ch: ChannelId,
    },
    /// Open an error-burst window on a channel: delivered copies may
    /// have a contiguous run of up to `max_run` bytes corrupted.
    ErrorBurstStart {
        /// The affected channel.
        ch: ChannelId,
        /// Probability a delivered copy takes a burst.
        prob: f64,
        /// Largest corrupted run, in bytes (>= 1).
        max_run: usize,
    },
    /// Close the error-burst window.
    ErrorBurstEnd {
        /// The affected channel.
        ch: ChannelId,
    },
}

/// A fault action bound to its firing time.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosEvent {
    /// When the action applies (before node events at the same instant).
    pub at: SimTime,
    /// What happens.
    pub action: ChaosAction,
}

/// Why a schedule was rejected at construction time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosError {
    /// A probability was NaN, infinite, or outside `0.0..=1.0`.
    BadProbability,
    /// An error burst's `max_run` was zero.
    BadBurstRun,
}

impl core::fmt::Display for ChaosError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ChaosError::BadProbability => {
                write!(f, "chaos probability must be finite and within 0.0..=1.0")
            }
            ChaosError::BadBurstRun => write!(f, "error burst max_run must be at least 1"),
        }
    }
}

impl std::error::Error for ChaosError {}

/// A validated, time-sorted fault schedule, installed on a simulator via
/// [`Simulator::install_schedule`](crate::engine::Simulator::install_schedule).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    events: Vec<ChaosEvent>,
}

impl FaultSchedule {
    /// Build a schedule from events in any order; sorts them by time
    /// (stably, so same-instant events keep their given order) and
    /// rejects invalid probabilities up front.
    pub fn new(mut events: Vec<ChaosEvent>) -> Result<FaultSchedule, ChaosError> {
        for ev in &events {
            match ev.action {
                ChaosAction::DuplicateStart { prob, .. } => check_prob(prob)?,
                ChaosAction::ErrorBurstStart { prob, max_run, .. } => {
                    check_prob(prob)?;
                    if max_run == 0 {
                        return Err(ChaosError::BadBurstRun);
                    }
                }
                _ => {}
            }
        }
        events.sort_by_key(|e| e.at);
        Ok(FaultSchedule { events })
    }

    /// The events, time-sorted.
    pub fn events(&self) -> &[ChaosEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Consume into the sorted event list.
    pub fn into_events(self) -> Vec<ChaosEvent> {
        self.events
    }
}

fn check_prob(p: f64) -> Result<(), ChaosError> {
    if p.is_finite() && (0.0..=1.0).contains(&p) {
        Ok(())
    } else {
        Err(ChaosError::BadProbability)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_sorts_by_time_stably() {
        let s = FaultSchedule::new(vec![
            ChaosEvent {
                at: SimTime(20),
                action: ChaosAction::LinkUp { ch: ChannelId(0) },
            },
            ChaosEvent {
                at: SimTime(10),
                action: ChaosAction::LinkDown { ch: ChannelId(0) },
            },
            ChaosEvent {
                at: SimTime(10),
                action: ChaosAction::PartitionEnd,
            },
        ])
        .unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.events()[0].at, SimTime(10));
        assert!(matches!(s.events()[0].action, ChaosAction::LinkDown { .. }));
        assert!(matches!(s.events()[1].action, ChaosAction::PartitionEnd));
        assert_eq!(s.events()[2].at, SimTime(20));
    }

    #[test]
    fn schedule_rejects_bad_probabilities() {
        for bad in [f64::NAN, -0.1, 1.1, f64::INFINITY] {
            let r = FaultSchedule::new(vec![ChaosEvent {
                at: SimTime::ZERO,
                action: ChaosAction::DuplicateStart {
                    ch: ChannelId(0),
                    prob: bad,
                },
            }]);
            assert_eq!(r, Err(ChaosError::BadProbability), "prob={bad}");
        }
        let r = FaultSchedule::new(vec![ChaosEvent {
            at: SimTime::ZERO,
            action: ChaosAction::ErrorBurstStart {
                ch: ChannelId(0),
                prob: 0.5,
                max_run: 0,
            },
        }]);
        assert_eq!(r, Err(ChaosError::BadBurstRun));
    }
}
