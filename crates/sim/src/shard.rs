//! Spatial sharding of a [`Simulator`] for parallel execution.
//!
//! A serial simulator is *split* into N shard simulators along topology
//! boundaries: a deterministic partitioner groups nodes so that every
//! transmitter of a channel lives in one shard, each shard gets its own
//! event queue and RNG stream, and the shards advance together in
//! conservative time windows whose width is the minimum propagation
//! delay of any cross-shard channel (see [`crate::sync`] for the window
//! runner and DESIGN.md §11 for the full contract).
//!
//! The split is a pure refactoring of state: `split(sim, 1)` wraps the
//! original simulator untouched, so single-shard runs are byte-identical
//! to the serial engine. After the parallel phase, [`ShardedSimulator::
//! into_serial`] merges the shards back into one ordinary [`Simulator`]
//! so downstream code (scrapes, phase-two workloads, invariants) needs
//! no knowledge of the sharding.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sirpent_telemetry::{FlightRecorder, HopEvent, Registry, RegistryError};

use crate::chaos::{ChaosAction, ChaosEvent};
use crate::engine::{Channel, Event, NodeId, Simulator};
use crate::queue::QueueKind;
use crate::time::{SimDuration, SimTime};

/// SplitMix64 finalizer — a strong bijective mixer used to derive
/// statistically independent per-shard seeds from the master seed.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derive the RNG seed for `shard` of `total`.
///
/// A single shard keeps the master seed unchanged (the serial engine's
/// stream), so `shards=1` draws are byte-identical to an unsharded run.
/// With more shards, each stream is the master seed XOR-mixed with the
/// splitmix64 image of the shard index — deterministic in the shard
/// *index*, not in thread scheduling, so digests depend only on the
/// partition, never on how many worker threads executed it.
pub fn shard_seed(master: u64, shard: usize, total: usize) -> u64 {
    if total <= 1 {
        master
    } else {
        master ^ splitmix64(shard as u64)
    }
}

/// Union-find over node indices with union-by-minimum: the root of every
/// component is its smallest node id, which makes component enumeration
/// order deterministic without any extra sorting state.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Dsu {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        loop {
            let p = self.parent.get(x).copied().unwrap_or(x);
            if p == x {
                return x;
            }
            // Path halving: point x at its grandparent as we walk up.
            let gp = self.parent.get(p).copied().unwrap_or(p);
            if let Some(slot) = self.parent.get_mut(x) {
                *slot = gp;
            }
            x = gp;
        }
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        // Attach the larger root under the smaller so roots are minima.
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        if let Some(slot) = self.parent.get_mut(hi) {
            *slot = lo;
        }
    }
}

/// Result of partitioning a topology into shards.
///
/// Produced by [`partition_topology`]; deterministic in the topology and
/// the requested shard count (no RNG, no hashing over addresses).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Shard index owning each node (indexed by `NodeId.0`).
    pub owner: Vec<usize>,
    /// Shard index owning each channel (indexed by `ChannelId.0`). A
    /// channel is owned by the shard of its transmitters; deliveries to
    /// taps in other shards cross via the window mailboxes.
    pub ch_owner: Vec<usize>,
    /// Effective shard count (may be lower than requested when the
    /// topology has fewer connected components than shards asked for).
    pub shards: usize,
    /// Conservative lookahead: minimum propagation delay in nanoseconds
    /// over all channels whose taps span two shards. `None` when no
    /// channel crosses a shard boundary (shards are fully independent).
    pub lookahead_ns: Option<u64>,
}

/// Deterministically partition a simulator's topology into at most
/// `shards` shards.
///
/// Constraints honoured:
/// * all transmitters of a channel land in one shard (the engine's
///   channel state — FIFO busy time, fault windows, in-flight records —
///   lives with the transmitters; only *deliveries* cross shards);
/// * every tap of a zero-propagation channel is co-located with its
///   transmitters (zero lookahead across a boundary would force
///   zero-width windows, so such channels never cross);
/// * components are assigned greedily, largest-root-last, to the least
///   loaded shard (ties to the lowest shard index).
pub fn partition_topology(sim: &Simulator, shards: usize) -> Partition {
    let n = sim.core.tx_map.len().max(sim.core.down.len());
    let n_ch = sim.core.channels.len();

    // Transmitters per channel, from the attach-time port map.
    let mut senders: Vec<Vec<usize>> = vec![Vec::new(); n_ch];
    for (node, ports) in sim.core.tx_map.iter().enumerate() {
        for &(_, ch) in ports {
            if let Some(v) = senders.get_mut(ch.0) {
                v.push(node);
            }
        }
    }

    let mut dsu = Dsu::new(n);
    for (ci, ch) in sim.core.channels.iter().enumerate() {
        if let Some(list) = senders.get(ci) {
            let mut it = list.iter();
            if let Some(&first) = it.next() {
                for &other in it {
                    dsu.union(first, other);
                }
            }
        }
        if ch.prop.as_nanos() == 0 {
            // Zero-prop channels must never cross a boundary: merge all
            // taps with the transmitters (or with each other).
            let mut anchor: Option<usize> = senders.get(ci).and_then(|l| l.first().copied());
            for &(nid, _) in ch.taps.iter() {
                match anchor {
                    None => anchor = Some(nid.0),
                    Some(a) => dsu.union(a, nid.0),
                }
            }
        }
    }

    // Component roots in ascending order (root == smallest member id).
    let roots: Vec<usize> = (0..n).map(|i| dsu.find(i)).collect();
    let mut size = vec![0usize; n];
    for &r in &roots {
        if let Some(s) = size.get_mut(r) {
            *s += 1;
        }
    }
    let order: Vec<usize> = (0..n)
        .filter(|&i| size.get(i).copied().unwrap_or(0) > 0)
        .collect();

    // Greedy balance: each component goes to the currently lightest
    // shard; ties break to the lowest shard index.
    let s_eff = shards.max(1).min(order.len().max(1));
    let mut load = vec![0usize; s_eff];
    let mut comp_shard = vec![0usize; n];
    for &r in &order {
        let mut best = 0usize;
        let mut best_load = usize::MAX;
        for (k, &l) in load.iter().enumerate() {
            if l < best_load {
                best = k;
                best_load = l;
            }
        }
        if let Some(slot) = comp_shard.get_mut(r) {
            *slot = best;
        }
        if let Some(l) = load.get_mut(best) {
            *l += size.get(r).copied().unwrap_or(0);
        }
    }
    let owner: Vec<usize> = roots
        .iter()
        .map(|&r| comp_shard.get(r).copied().unwrap_or(0))
        .collect();

    // Channel owners and the cross-shard lookahead.
    let mut lookahead: Option<u64> = None;
    let mut ch_owner = Vec::with_capacity(n_ch);
    for (ci, ch) in sim.core.channels.iter().enumerate() {
        let own = senders
            .get(ci)
            .and_then(|l| l.first())
            .or_else(|| ch.taps.first().map(|(nid, _)| &nid.0))
            .map(|&x| owner.get(x).copied().unwrap_or(0))
            .unwrap_or(0);
        ch_owner.push(own);
        let crosses = ch
            .taps
            .iter()
            .any(|&(nid, _)| owner.get(nid.0).copied().unwrap_or(0) != own);
        if crosses {
            let p = ch.prop.as_nanos();
            lookahead = Some(lookahead.map_or(p, |l| l.min(p)));
        }
    }

    if lookahead == Some(0) {
        // Defensive: the zero-prop merge above makes this unreachable,
        // but a zero window would livelock the runner, so collapse.
        return Partition {
            owner: vec![0; n],
            ch_owner: vec![0; n_ch],
            shards: 1,
            lookahead_ns: None,
        };
    }

    Partition {
        owner,
        ch_owner,
        shards: s_eff,
        lookahead_ns: lookahead,
    }
}

/// Upper bits of per-shard frame-id namespaces: shard `k > 0` allocates
/// frame ids starting at `k << FRAME_SHARD_SHIFT`, so ids stay globally
/// unique without cross-shard coordination. 2^48 frames per shard is
/// far beyond any run the engine can execute.
const FRAME_SHARD_SHIFT: u32 = 48;

enum Inner {
    /// One shard: the untouched serial simulator (byte-identical path).
    Single(Box<Simulator>),
    /// N > 1 shard simulators plus the bookkeeping to run and re-merge.
    Many {
        shards: Vec<Simulator>,
        owner: Vec<usize>,
        ch_owner: Vec<usize>,
        lookahead_ns: Option<u64>,
        master_seed: u64,
        kind: QueueKind,
        orig_chaos: Vec<ChaosEvent>,
    },
}

/// A simulator split into spatial shards that advance in conservative
/// time windows on a scoped thread pool.
///
/// Lifecycle: build a serial [`Simulator`], [`ShardedSimulator::split`]
/// it, [`ShardedSimulator::run_until`] the parallel phase, then
/// [`ShardedSimulator::into_serial`] to get an ordinary simulator back
/// for scrapes and any remaining serial work.
pub struct ShardedSimulator {
    inner: Inner,
}

impl ShardedSimulator {
    /// Split `sim` into at most `shards` shards.
    ///
    /// With `shards <= 1`, or when the topology collapses to one shard
    /// (fewer components than shards, or a zero-prop cross link), the
    /// original simulator is wrapped untouched and every subsequent call
    /// is exactly the serial engine. Splitting is intended for a
    /// freshly built simulator (before any events ran); splitting after
    /// a crash/restart cycle is rejected in debug builds.
    pub fn split(sim: Simulator, shards: usize) -> ShardedSimulator {
        if shards <= 1 {
            return ShardedSimulator {
                inner: Inner::Single(Box::new(sim)),
            };
        }
        let part = partition_topology(&sim, shards);
        if part.shards <= 1 {
            return ShardedSimulator {
                inner: Inner::Single(Box::new(sim)),
            };
        }

        let Simulator {
            mut core,
            nodes,
            batch: _,
        } = sim;
        let n = nodes.len();
        let s = part.shards;
        debug_assert!(
            core.node_epoch.iter().all(|&e| e == 0),
            "split expects a simulator that has not crash-cycled nodes"
        );
        debug_assert!(
            core.frame_seq < (1u64 << FRAME_SHARD_SHIFT),
            "frame-id namespace exhausted before split"
        );

        let seed = core.seed;
        let kind = core.queue_kind;
        let flight_cap = core.flight.as_ref().map(|f| f.capacity());
        let trace_on = core.trace.is_some();
        let orig_chaos: Vec<ChaosEvent> = core.chaos.iter().cloned().collect();

        let mut sims: Vec<Simulator> = (0..s)
            .map(|k| Simulator::with_queue(shard_seed(seed, k, s), kind))
            .collect();

        for (k, sx) in sims.iter_mut().enumerate() {
            sx.core.now = core.now;
            sx.core.down = core.down.clone();
            sx.core.node_epoch = vec![0; n];
            sx.core.remote = part.owner.iter().map(|&o| o != k).collect();
            // Shard 0 continues the original id stream; others get a
            // disjoint namespace so ids never collide at merge.
            sx.core.frame_seq = if k == 0 {
                core.frame_seq
            } else {
                (k as u64) << FRAME_SHARD_SHIFT
            };
            // Partition flips are broadcast to every shard so reachability
            // checks agree; mirrors suppress the chaos counters so merged
            // scrapes count each global event exactly once.
            sx.core.chaos_mirror = k != 0;
            sx.core.partition = core.partition.clone();
            sx.core.cancelled = core.cancelled.clone();
            sx.core.charged = core.charged.clone();
            if let Some(cap) = flight_cap {
                if let Ok(fr) = FlightRecorder::new(cap) {
                    sx.core.flight = Some(fr);
                }
            }
            if trace_on {
                sx.core.trace = Some(Vec::new());
            }
            sx.core.chaos = core
                .chaos
                .iter()
                .filter(|ev| chaos_goes_to(&ev.action, k, &part))
                .cloned()
                .collect::<VecDeque<ChaosEvent>>();
            sx.core.tx_map = (0..n)
                .map(|i| {
                    if part.owner.get(i).copied() == Some(k) {
                        core.tx_map.get(i).cloned().unwrap_or_default()
                    } else {
                        Vec::new()
                    }
                })
                .collect();
            sx.nodes = (0..n).map(|_| None).collect();
        }

        // Hand each node object to its owning shard.
        for (i, nd) in nodes.into_iter().enumerate() {
            let own = part.owner.get(i).copied().unwrap_or(0);
            if let Some(slot) = sims.get_mut(own).and_then(|sx| sx.nodes.get_mut(i)) {
                *slot = nd;
            }
        }

        // Channels: the owner gets the live channel; every other shard
        // gets a shell with the same geometry so ids and per-port rate
        // and propagation queries stay valid everywhere.
        for ch in std::mem::take(&mut core.channels) {
            let rate = ch.rate_bps;
            let prop = ch.prop;
            let ci = sims.first().map(|sx| sx.core.channels.len()).unwrap_or(0);
            let own = part.ch_owner.get(ci).copied().unwrap_or(0);
            let mut real = Some(ch);
            for (k, sx) in sims.iter_mut().enumerate() {
                if k == own {
                    match real.take() {
                        Some(c) => sx.core.channels.push(c),
                        None => sx.core.channels.push(Channel::shell(rate, prop)),
                    }
                } else {
                    sx.core.channels.push(Channel::shell(rate, prop));
                }
            }
        }

        // Dispatch ledger and any pre-split trace lines live in shard 0.
        if let Some(s0) = sims.get_mut(0) {
            s0.core.events_dispatched = core.events_dispatched;
            if let (Some(dst), Some(src)) = (s0.core.trace.as_mut(), core.trace.as_mut()) {
                dst.append(src);
            }
        }

        // Route pre-scheduled events (kicks, planned workload timers) to
        // the shard owning their target, preserving (time, seq) order —
        // pops come out sorted, so per-shard sequence numbers preserve
        // the serial tie-break order within each shard.
        while let Some(sch) = core.queue.pop() {
            let own = part.owner.get(sch.target.0).copied().unwrap_or(0);
            if let Some(sx) = sims.get_mut(own) {
                sx.core.push(sch.time, sch.target, sch.event);
            }
        }

        ShardedSimulator {
            inner: Inner::Many {
                shards: sims,
                owner: part.owner,
                ch_owner: part.ch_owner,
                lookahead_ns: part.lookahead_ns,
                master_seed: seed,
                kind,
                orig_chaos,
            },
        }
    }

    /// Effective shard count (1 when the split collapsed to serial).
    pub fn shards(&self) -> usize {
        match &self.inner {
            Inner::Single(_) => 1,
            Inner::Many { shards, .. } => shards.len(),
        }
    }

    /// Conservative window width, if any channel crosses shards.
    pub fn lookahead(&self) -> Option<SimDuration> {
        match &self.inner {
            Inner::Single(_) => None,
            Inner::Many { lookahead_ns, .. } => lookahead_ns.map(SimDuration),
        }
    }

    /// Total events dispatched across all shards so far.
    pub fn events_dispatched(&self) -> u64 {
        match &self.inner {
            Inner::Single(sim) => sim.events_dispatched(),
            Inner::Many { shards, .. } => shards.iter().map(|s| s.events_dispatched()).sum(),
        }
    }

    /// The global clock: the furthest point every shard has reached.
    pub fn now(&self) -> SimTime {
        match &self.inner {
            Inner::Single(sim) => sim.now(),
            Inner::Many { shards, .. } => shards
                .iter()
                .map(|s| s.now())
                .min()
                .unwrap_or(SimTime::ZERO),
        }
    }

    /// Run all shards forward to `deadline` on up to `threads` worker
    /// threads (clamped to the shard count; `threads <= 1` still runs
    /// the windowed protocol, just on the caller's thread).
    ///
    /// The digest of a run depends only on the shard *partition*, never
    /// on `threads`: workers own disjoint shard slices and only meet at
    /// window barriers, so scheduling cannot reorder anything visible.
    pub fn run_until(&mut self, deadline: SimTime, threads: usize) {
        match &mut self.inner {
            Inner::Single(sim) => sim.run_until(deadline),
            Inner::Many {
                shards,
                owner,
                lookahead_ns,
                ..
            } => crate::sync::run_windows(shards, owner, *lookahead_ns, deadline, threads),
        }
    }

    /// Merge the per-shard registries in shard order into one scrape.
    ///
    /// At `shards=1` this is exactly the serial scrape. With more
    /// shards, counters add (chaos mirrors already suppressed their
    /// duplicate partition counts at apply time), so the merged totals
    /// equal what a serial run over the same events would publish.
    pub fn scrape_telemetry(&self) -> Result<Registry, RegistryError> {
        match &self.inner {
            Inner::Single(sim) => sim.scrape_telemetry(),
            Inner::Many { shards, .. } => {
                let mut merged = Registry::new();
                for sim in shards {
                    merged.absorb(sim.scrape_telemetry()?)?;
                }
                Ok(merged)
            }
        }
    }

    /// Collapse back into one serial [`Simulator`].
    ///
    /// Merge rules (DESIGN.md §11): clock = max shard clock; channels
    /// and per-node state come from their owners; pending events from
    /// all shard queues re-sequence in (time, shard) order; chaos
    /// statistics and telemetry counters sum; flight events re-sort by
    /// (timestamp, shard); the RNG continues shard 0's stream.
    pub fn into_serial(self) -> Simulator {
        match self.inner {
            Inner::Single(sim) => *sim,
            Inner::Many {
                shards,
                owner,
                ch_owner,
                master_seed,
                kind,
                orig_chaos,
                ..
            } => merge_shards(shards, &owner, &ch_owner, master_seed, kind, orig_chaos),
        }
    }
}

/// Which shard(s) a chaos event belongs to: channel-scoped events go to
/// the channel's owner; router crash/restart and global partition flips
/// go to every shard (mirrors apply the state change but suppress the
/// counters). Broadcasting crashes keeps the per-node `down` flags —
/// which adjacent routers on *other* shards read through
/// `Context::peer_up` at route-decision time — coherent across the
/// fleet: chaos applies at window barriers, so every shard sees the
/// flip before any event in the affected window dispatches.
fn chaos_goes_to(action: &ChaosAction, shard: usize, part: &Partition) -> bool {
    match action {
        ChaosAction::LinkDown { ch }
        | ChaosAction::LinkUp { ch }
        | ChaosAction::DuplicateStart { ch, .. }
        | ChaosAction::DuplicateEnd { ch }
        | ChaosAction::JitterStart { ch, .. }
        | ChaosAction::JitterEnd { ch }
        | ChaosAction::ErrorBurstStart { ch, .. }
        | ChaosAction::ErrorBurstEnd { ch } => {
            part.ch_owner.get(ch.0).copied().unwrap_or(0) == shard
        }
        ChaosAction::RouterCrash { .. }
        | ChaosAction::RouterRestart { .. }
        | ChaosAction::PartitionStart { .. }
        | ChaosAction::PartitionEnd => true,
    }
}

fn merge_shards(
    shard_sims: Vec<Simulator>,
    owner: &[usize],
    ch_owner: &[usize],
    master_seed: u64,
    kind: QueueKind,
    orig_chaos: Vec<ChaosEvent>,
) -> Simulator {
    let n = owner.len();
    let mut cores = Vec::with_capacity(shard_sims.len());
    let mut shard_nodes = Vec::with_capacity(shard_sims.len());
    for sim in shard_sims {
        let Simulator {
            core,
            nodes,
            batch: _,
        } = sim;
        cores.push(core);
        shard_nodes.push(nodes);
    }

    let mut merged = Simulator::with_queue(master_seed, kind);
    let now = cores.iter().map(|c| c.now).max().unwrap_or(SimTime::ZERO);
    merged.core.now = now;

    // Channels come back from their owners (shells elsewhere carry no
    // state). A missing slot is unreachable; a default shell keeps the
    // id space aligned rather than shifting every later channel.
    let n_ch = cores.first().map(|c| c.channels.len()).unwrap_or(0);
    let mut ch_pools: Vec<Vec<Option<Channel>>> = cores
        .iter_mut()
        .map(|c| {
            std::mem::take(&mut c.channels)
                .into_iter()
                .map(Some)
                .collect()
        })
        .collect();
    let mut channels = Vec::with_capacity(n_ch);
    for ci in 0..n_ch {
        let own = ch_owner.get(ci).copied().unwrap_or(0);
        let ch = ch_pools
            .get_mut(own)
            .and_then(|p| p.get_mut(ci))
            .and_then(|o| o.take());
        match ch {
            Some(c) => channels.push(c),
            None => channels.push(Channel::shell(0, SimDuration::ZERO)),
        }
    }
    merged.core.channels = channels;

    // Per-node state from each node's owner.
    let mut nodes: Vec<Option<Box<dyn crate::engine::Node>>> = (0..n).map(|_| None).collect();
    let mut tx_map = vec![Vec::new(); n];
    let mut down = vec![false; n];
    for (i, slot) in nodes.iter_mut().enumerate() {
        let own = owner.get(i).copied().unwrap_or(0);
        if let Some(sn) = shard_nodes.get_mut(own).and_then(|v| v.get_mut(i)) {
            *slot = sn.take();
        }
        if let Some(c) = cores.get(own) {
            if let (Some(src), Some(dst)) = (c.tx_map.get(i), tx_map.get_mut(i)) {
                *dst = src.clone();
            }
            if let (Some(&src), Some(dst)) = (c.down.get(i), down.get_mut(i)) {
                *dst = src;
            }
        }
    }
    merged.core.tx_map = tx_map;
    merged.core.down = down;
    // Crash/restart epochs guarded stale timers inside each shard; the
    // drain below filters against them, so the merged engine restarts
    // from a clean epoch space.
    merged.core.node_epoch = vec![0; n];

    // Summable ledgers.
    merged.core.events_dispatched = cores.iter().map(|c| c.events_dispatched).sum();
    merged.core.frame_seq = cores.iter().map(|c| c.frame_seq).max().unwrap_or(0);
    for c in &cores {
        merged.core.chaos_stats.absorb(&c.chaos_stats);
        merged
            .core
            .chaos_counters
            .events
            .add(c.chaos_counters.events.get());
        merged
            .core
            .chaos_counters
            .link
            .add(c.chaos_counters.link.get());
        merged
            .core
            .chaos_counters
            .router
            .add(c.chaos_counters.router.get());
        merged
            .core
            .chaos_counters
            .partition
            .add(c.chaos_counters.partition.get());
        merged
            .core
            .chaos_counters
            .windows
            .add(c.chaos_counters.windows.get());
        for f in &c.cancelled {
            merged.core.cancelled.insert(*f);
        }
        for f in &c.charged {
            merged.core.charged.insert(*f);
        }
    }
    merged.core.partition = cores.first().and_then(|c| c.partition.clone());
    // Not-yet-applied chaos: re-filter the original schedule so channel
    // and router events land once (shards held disjoint copies, plus
    // broadcast partition mirrors we must not double-apply).
    merged.core.chaos = orig_chaos
        .into_iter()
        .filter(|ev| ev.at > now)
        .collect::<VecDeque<ChaosEvent>>();

    // The merged engine continues shard 0's RNG stream (the stream that
    // carried the master seed), keeping `split(sim, 1)`-equivalent runs
    // on the serial draw sequence.
    if let Some(c0) = cores.get_mut(0) {
        merged.core.rng = std::mem::replace(&mut c0.rng, StdRng::seed_from_u64(0));
    }

    // Pending events: drain shard queues in shard order; pops are
    // already (time, seq)-sorted within a shard, and fresh sequence
    // numbers give a deterministic (time, shard) global order. Stale
    // timers (pre-crash epochs) are dropped here because the merged
    // epoch space restarts at zero.
    for c in cores.iter_mut() {
        while let Some(sch) = c.queue.pop() {
            if matches!(sch.event, Event::Timer { .. })
                && sch.seq < c.node_epoch.get(sch.target.0).copied().unwrap_or(0)
            {
                continue;
            }
            merged.core.push(sch.time, sch.target, sch.event);
        }
    }

    // Trace lines re-sort by (timestamp, shard); sort_by_key is stable,
    // so each shard's own order is preserved inside a tie.
    if cores.iter().any(|c| c.trace.is_some()) {
        let mut all: Vec<(u64, usize, (SimTime, NodeId, String))> = Vec::new();
        for (k, c) in cores.iter_mut().enumerate() {
            if let Some(lines) = c.trace.take() {
                for line in lines {
                    all.push((line.0.as_nanos(), k, line));
                }
            }
        }
        all.sort_by_key(|&(t, k, _)| (t, k));
        merged.core.trace = Some(all.into_iter().map(|(_, _, line)| line).collect());
    }

    // Flight recorders merge the same way: capacity sums, events re-sort
    // by (timestamp, shard), eviction counters add.
    let flights: Vec<FlightRecorder> = cores.iter_mut().filter_map(|c| c.flight.take()).collect();
    if !flights.is_empty() {
        merged.core.flight = merge_flights(flights);
    }

    merged.nodes = nodes;
    merged
}

/// Merge per-shard flight recorders into one ring whose capacity is the
/// sum of the parts, with events ordered by (timestamp, shard).
fn merge_flights(parts: Vec<FlightRecorder>) -> Option<FlightRecorder> {
    let total_cap: usize = parts.iter().map(|f| f.capacity()).sum();
    let mut evs: Vec<(u64, usize, HopEvent)> = Vec::new();
    for (k, f) in parts.iter().enumerate() {
        for ev in f.events() {
            evs.push((ev.t_ns, k, *ev));
        }
    }
    evs.sort_by_key(|&(t, k, _)| (t, k));
    let recorded_total: u64 = parts.iter().map(|f| f.recorded.get()).sum();
    let evicted_total: u64 = parts.iter().map(|f| f.evicted.get()).sum();
    let mut fr = FlightRecorder::new(total_cap.max(1)).ok()?;
    let live = evs.len() as u64;
    for (_, _, ev) in evs {
        fr.record(ev);
    }
    // `record` counted the live events; add back the ones each shard had
    // already evicted so recorded/evicted keep their ledger meaning.
    fr.recorded.add(recorded_total.saturating_sub(live));
    fr.evicted.add(evicted_total);
    Some(fr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Context;

    /// Minimal relay: a timer seeds a frame; received frames are logged
    /// and forwarded out port 0 with the lead byte (a TTL) decremented.
    #[derive(Default)]
    struct Relay {
        rx: Vec<(u64, Vec<u8>)>,
    }

    impl crate::engine::Node for Relay {
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }

        fn on_event(&mut self, ctx: &mut Context, ev: Event) {
            match ev {
                Event::Frame(f) => {
                    let bytes = f.frame.payload.to_vec();
                    self.rx.push((ctx.now().as_nanos(), bytes.clone()));
                    if let Some((&ttl, _)) = bytes.split_first() {
                        if ttl > 0 {
                            let mut fwd = bytes.clone();
                            fwd[0] = ttl - 1;
                            let _ = ctx.transmit(0, fwd);
                        }
                    }
                }
                Event::Timer { key } => {
                    let _ = ctx.transmit(0, vec![key as u8, 0xAA, 0xBB, 0xCC]);
                }
                _ => {}
            }
        }
    }

    fn chain(n: usize, prop_ns: u64) -> (Simulator, Vec<NodeId>) {
        let mut sim = Simulator::new(7);
        let ids: Vec<NodeId> = (0..n)
            .map(|_| sim.add_node(Box::<Relay>::default()))
            .collect();
        for w in ids.windows(2) {
            if let [a, b] = *w {
                sim.p2p(a, 0, b, 1, 10_000_000, SimDuration(prop_ns));
            }
        }
        (sim, ids)
    }

    #[test]
    fn shard_seed_is_master_for_single_shard() {
        assert_eq!(shard_seed(0xdead_beef, 0, 1), 0xdead_beef);
        assert_ne!(shard_seed(0xdead_beef, 0, 2), shard_seed(0xdead_beef, 1, 2));
        assert_ne!(shard_seed(0xdead_beef, 1, 4), 0xdead_beef);
    }

    #[test]
    fn partition_is_deterministic_and_colocates_transmitters() {
        let (sim, _) = chain(8, 2_000);
        let p1 = partition_topology(&sim, 4);
        let p2 = partition_topology(&sim, 4);
        assert_eq!(p1, p2);
        assert_eq!(p1.owner.len(), 8);
        for (node, ports) in sim.core.tx_map.iter().enumerate() {
            for &(_, ch) in ports {
                // Every transmitter of a channel sits in the channel's
                // owning shard.
                assert_eq!(p1.ch_owner[ch.0], p1.owner[node]);
            }
        }
        assert_eq!(p1.lookahead_ns, Some(2_000));
    }

    #[test]
    fn zero_prop_links_never_cross() {
        let (sim, _) = chain(6, 0);
        let p = partition_topology(&sim, 3);
        // All six nodes collapse into one component -> one shard.
        assert!(p.owner.iter().all(|&o| o == p.owner[0]));
        assert_eq!(p.lookahead_ns, None);
    }

    #[test]
    fn single_shard_split_is_serial() {
        let (mut sim, ids) = chain(3, 1_000);
        sim.kick(SimTime(10), ids[0], 1);
        let mut sh = ShardedSimulator::split(sim, 1);
        assert_eq!(sh.shards(), 1);
        sh.run_until(SimTime(1_000_000), 4);
        let serial = sh.into_serial();
        assert_eq!(serial.now(), SimTime(1_000_000));
    }

    #[test]
    fn sharded_chain_matches_serial_run() {
        // A TTL=4 frame seeded at node 0 relays down the chain, crossing
        // every shard boundary; the sharded run must reproduce the
        // serial run's deliveries, timestamps, and event count exactly.
        let (mut a, ids_a) = chain(6, 2_000);
        a.kick(SimTime(5), ids_a[0], 4);
        a.run_until(SimTime(1_000_000));

        let (mut b_sim, ids_b) = chain(6, 2_000);
        b_sim.kick(SimTime(5), ids_b[0], 4);
        let mut b = ShardedSimulator::split(b_sim, 3);
        assert!(b.shards() > 1);
        assert_eq!(b.lookahead(), Some(SimDuration(2_000)));
        b.run_until(SimTime(1_000_000), 2);
        let b = b.into_serial();
        assert_eq!(a.events_dispatched(), b.events_dispatched());
        assert_eq!(a.now(), b.now());
        for (&ia, &ib) in ids_a.iter().zip(ids_b.iter()) {
            let ra = &a.node::<Relay>(ia).rx;
            let rb = &b.node::<Relay>(ib).rx;
            assert_eq!(ra, rb, "node {ia:?} saw different deliveries");
        }
    }

    #[test]
    fn thread_count_does_not_change_the_run() {
        let run = |threads: usize| {
            let (mut sim, ids) = chain(8, 1_500);
            sim.kick(SimTime(5), ids[0], 7);
            sim.kick(SimTime(9), ids[3], 4);
            let mut sh = ShardedSimulator::split(sim, 4);
            assert!(sh.shards() > 1);
            sh.run_until(SimTime(2_000_000), threads);
            let serial = sh.into_serial();
            let mut sig = Vec::new();
            for &id in &ids {
                sig.push(serial.node::<Relay>(id).rx.clone());
            }
            (serial.events_dispatched(), sig)
        };
        let base = run(1);
        assert_eq!(base, run(2));
        assert_eq!(base, run(4));
        assert_eq!(base, run(8));
    }
}
