//! Traffic workload generators.
//!
//! §6.2 of the paper builds its header-overhead arithmetic on a measured
//! packet-size mix: "half the packets are close to minimum size (for the
//! transport layer), one quarter are maximum size and the rest are more
//! or less uniformly distributed between these two extremes. Using this
//! approximation in general, the average packet size is roughly 3/8 of
//! the maximum packet size." The hop-count model likewise follows §6.2's
//! locality argument ("the expected number of hops per packet for many
//! applications \[is\] significantly less than one").
//!
//! All generators draw from a caller-supplied RNG so simulations stay
//! deterministic.

use rand::Rng;

use crate::time::SimDuration;

/// The paper's empirical packet-size mix (§6.2).
#[derive(Debug, Clone, Copy)]
pub struct PacketSizeMix {
    /// Minimum (transport-layer) packet size in bytes.
    pub min: usize,
    /// Maximum packet size in bytes.
    pub max: usize,
}

impl PacketSizeMix {
    /// The paper's running example: 2 KB maximum.
    pub fn paper_default() -> PacketSizeMix {
        PacketSizeMix { min: 64, max: 2048 }
    }

    /// Draw one packet size: 1/2 minimum, 1/4 maximum, 1/4 uniform
    /// in between.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let r: f64 = rng.gen();
        if r < 0.5 {
            self.min
        } else if r < 0.75 {
            self.max
        } else {
            rng.gen_range(self.min..=self.max)
        }
    }

    /// The analytic mean of the mix:
    /// `min/2 + max/4 + (min+max)/2/4`.
    pub fn mean(&self) -> f64 {
        let (min, max) = (self.min as f64, self.max as f64);
        0.5 * min + 0.25 * max + 0.25 * (min + max) / 2.0
    }

    /// The paper's headline approximation: mean ≈ 3/8 · max (it neglects
    /// the `min` terms).
    pub fn paper_mean_approx(&self) -> f64 {
        0.375 * self.max as f64
    }
}

/// Hop-count model with the §6.2 locality argument: most communication is
/// local (0 routers traversed); the remainder decays geometrically up to
/// a global-scale maximum (telephone-network hop counts of 5–6).
#[derive(Debug, Clone, Copy)]
pub struct HopModel {
    /// Probability a packet is local (0 router hops).
    pub p_local: f64,
    /// Geometric continuation probability for each extra hop beyond the
    /// first.
    pub p_more: f64,
    /// Hard ceiling on hops.
    pub max_hops: usize,
}

impl HopModel {
    /// Parameters reproducing the paper's "average number of hops is 0.2"
    /// (§6.2, counting 0 hops as local): p_local chosen so that
    /// E\[hops\] ≈ 0.2 with a mild geometric tail.
    pub fn paper_default() -> HopModel {
        // E[h] = (1 - p_local) * E[h | h >= 1]; with p_more = 0.3,
        // E[h | h>=1] = 1/(1-0.3) ≈ 1.43, so 1 - p_local = 0.2/1.43 = 0.14.
        HopModel {
            p_local: 0.86,
            p_more: 0.3,
            max_hops: 6,
        }
    }

    /// Draw a hop count.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        if rng.gen::<f64>() < self.p_local {
            return 0;
        }
        let mut h = 1;
        while h < self.max_hops && rng.gen::<f64>() < self.p_more {
            h += 1;
        }
        h
    }

    /// Analytic expected hop count.
    pub fn mean(&self) -> f64 {
        // E = (1-p_local) * sum_{h>=1} h * p_more^(h-1) * (1-p_more),
        // truncated at max_hops (mass at the ceiling).
        let mut e = 0.0;
        let mut p_reach = 1.0; // P(h >= k | h >= 1)
        for k in 1..=self.max_hops {
            let p_here = if k == self.max_hops {
                p_reach
            } else {
                p_reach * (1.0 - self.p_more)
            };
            e += k as f64 * p_here;
            p_reach *= self.p_more;
        }
        (1.0 - self.p_local) * e
    }
}

/// Inter-arrival process for packet generation.
#[derive(Debug, Clone, Copy)]
pub enum Arrivals {
    /// Constant bit rate: fixed gap.
    Cbr {
        /// The fixed inter-packet gap.
        gap: SimDuration,
    },
    /// Poisson arrivals with the given mean rate (packets/sec).
    Poisson {
        /// Mean arrival rate in packets per second.
        rate_pps: f64,
    },
    /// Bursty on/off (the "periodic bursts of packets on a gigabit
    /// channel" of §1): `burst` back-to-back packets, then silence such
    /// that the long-run average rate is `rate_pps`.
    OnOff {
        /// Packets per burst.
        burst: u32,
        /// Long-run average packet rate.
        rate_pps: f64,
        /// Gap between packets inside a burst.
        intra_gap: SimDuration,
    },
}

/// Stateful sampler for an [`Arrivals`] process.
#[derive(Debug, Clone)]
pub struct ArrivalSampler {
    spec: Arrivals,
    in_burst: u32,
}

impl ArrivalSampler {
    /// Create a sampler.
    pub fn new(spec: Arrivals) -> ArrivalSampler {
        ArrivalSampler { spec, in_burst: 0 }
    }

    /// Time from the previous packet to the next one.
    pub fn next_gap<R: Rng>(&mut self, rng: &mut R) -> SimDuration {
        match self.spec {
            Arrivals::Cbr { gap } => gap,
            Arrivals::Poisson { rate_pps } => {
                // Inverse-CDF exponential.
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                SimDuration::from_secs_f64(-u.ln() / rate_pps)
            }
            Arrivals::OnOff {
                burst,
                rate_pps,
                intra_gap,
            } => {
                self.in_burst += 1;
                if self.in_burst < burst {
                    intra_gap
                } else {
                    self.in_burst = 0;
                    // Off period sized so the average rate holds:
                    // burst packets per (burst·intra + off).
                    let period = burst as f64 / rate_pps;
                    let on = intra_gap.as_secs_f64() * burst as f64;
                    SimDuration::from_secs_f64((period - on).max(0.0))
                }
            }
        }
    }
}

/// A transactional (request/response) workload: short logical connections
/// like "credit card transactions" (§1). Each transaction is a request of
/// `req_bytes` and a response of `resp_bytes`; transactions arrive
/// Poisson.
#[derive(Debug, Clone, Copy)]
pub struct Transactional {
    /// Request payload size.
    pub req_bytes: usize,
    /// Response payload size.
    pub resp_bytes: usize,
    /// Mean transactions per second.
    pub rate_tps: f64,
}

impl Transactional {
    /// Gap to the next transaction start.
    pub fn next_gap<R: Rng>(&self, rng: &mut R) -> SimDuration {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        SimDuration::from_secs_f64(-u.ln() / self.rate_tps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn size_mix_matches_paper_statistics() {
        let mix = PacketSizeMix::paper_default();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let mut sum = 0usize;
        let mut mins = 0usize;
        let mut maxs = 0usize;
        for _ in 0..n {
            let s = mix.sample(&mut rng);
            assert!((mix.min..=mix.max).contains(&s));
            sum += s;
            if s == mix.min {
                mins += 1;
            }
            if s == mix.max {
                maxs += 1;
            }
        }
        let mean = sum as f64 / n as f64;
        assert!((mean - mix.mean()).abs() < 10.0, "mean={mean}");
        // Paper: "average packet size is roughly 3/8 of the maximum".
        assert!((mean / mix.max as f64 - 0.375).abs() < 0.05);
        let f_min = mins as f64 / n as f64;
        // Uniform part can also land exactly on min, so ≥ 0.5.
        assert!((f_min - 0.5).abs() < 0.01, "f_min={f_min}");
        let f_max = maxs as f64 / n as f64;
        assert!((f_max - 0.25).abs() < 0.01, "f_max={f_max}");
    }

    #[test]
    fn mean_formula_consistency() {
        let mix = PacketSizeMix { min: 0, max: 2048 };
        // With min = 0 the analytic mean is exactly 3/8 max.
        assert!((mix.mean() - mix.paper_mean_approx()).abs() < 1e-9);
    }

    #[test]
    fn hop_model_mean_near_paper() {
        let hm = HopModel::paper_default();
        assert!(
            (hm.mean() - 0.2).abs() < 0.02,
            "analytic mean {} should be ≈0.2",
            hm.mean()
        );
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200_000;
        let total: usize = (0..n).map(|_| hm.sample(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - hm.mean()).abs() < 0.01, "sampled mean {mean}");
    }

    #[test]
    fn hop_model_respects_ceiling() {
        let hm = HopModel {
            p_local: 0.0,
            p_more: 1.0,
            max_hops: 6,
        };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert_eq!(hm.sample(&mut rng), 6);
        }
    }

    #[test]
    fn poisson_mean_rate() {
        let mut s = ArrivalSampler::new(Arrivals::Poisson { rate_pps: 1000.0 });
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| s.next_gap(&mut rng).as_secs_f64()).sum();
        let mean_gap = total / n as f64;
        assert!((mean_gap - 0.001).abs() < 0.0001, "mean gap {mean_gap}");
    }

    #[test]
    fn cbr_is_constant() {
        let mut s = ArrivalSampler::new(Arrivals::Cbr {
            gap: SimDuration::from_micros(125),
        });
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(s.next_gap(&mut rng), SimDuration::from_micros(125));
        }
    }

    #[test]
    fn onoff_long_run_rate() {
        // 8 Mb/s of 1000-byte packets = 1000 pps, in bursts of 10.
        let mut s = ArrivalSampler::new(Arrivals::OnOff {
            burst: 10,
            rate_pps: 1000.0,
            intra_gap: SimDuration::from_micros(8), // back-to-back at 1 Gb/s
        });
        let mut rng = StdRng::seed_from_u64(6);
        let n = 10_000;
        let total: f64 = (0..n).map(|_| s.next_gap(&mut rng).as_secs_f64()).sum();
        let rate = n as f64 / total;
        assert!((rate - 1000.0).abs() < 20.0, "rate {rate}");
    }

    #[test]
    fn bursts_have_small_intra_gaps() {
        let mut s = ArrivalSampler::new(Arrivals::OnOff {
            burst: 5,
            rate_pps: 100.0,
            intra_gap: SimDuration::from_micros(1),
        });
        let mut rng = StdRng::seed_from_u64(7);
        let gaps: Vec<SimDuration> = (0..10).map(|_| s.next_gap(&mut rng)).collect();
        // Pattern: 4 small gaps then one large off-gap, repeating.
        for (i, g) in gaps.iter().enumerate() {
            if (i + 1) % 5 == 0 {
                assert!(g.as_nanos() > 1_000_000, "off gap at {i}");
            } else {
                assert_eq!(g.as_nanos(), 1_000, "intra gap at {i}");
            }
        }
    }
}
