//! Measurement utilities: running summaries, delay histograms, and
//! time-weighted averages (for queue lengths and utilization).

use crate::time::{SimDuration, SimTime};

/// Running scalar summary: count / mean / min / max / variance (Welford).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Create an empty summary.
    pub fn new() -> Summary {
        Summary {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            ..Default::default()
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Record a duration in seconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// Fixed-bucket histogram over durations, log₂-spaced from 1 ns up.
#[derive(Debug, Clone)]
pub struct DelayHistogram {
    buckets: Vec<u64>,
    summary: Summary,
}

impl DelayHistogram {
    /// 64 log₂ buckets cover 1 ns … ~584 years.
    pub fn new() -> DelayHistogram {
        DelayHistogram {
            buckets: vec![0; 64],
            summary: Summary::new(),
        }
    }

    /// Record one delay.
    pub fn record(&mut self, d: SimDuration) {
        let idx = 64 - d.as_nanos().max(1).leading_zeros() as usize - 1;
        self.buckets[idx.min(63)] += 1;
        self.summary.record_duration(d);
    }

    /// The scalar summary.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// Approximate percentile (by bucket upper bound), `p` in 0..=100.
    pub fn percentile(&self, p: f64) -> SimDuration {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return SimDuration::ZERO;
        }
        let target = (p / 100.0 * total as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return SimDuration(1u64 << (i + 1).min(63));
            }
        }
        SimDuration(u64::MAX)
    }
}

impl Default for DelayHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Time-weighted average of a step function (e.g. queue length over
/// time). Integrates value·dt between updates.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_t: SimTime,
    last_v: f64,
    integral: f64,
    t0: SimTime,
    peak: f64,
}

impl TimeWeighted {
    /// Start tracking at `t0` with initial value `v0`.
    pub fn new(t0: SimTime, v0: f64) -> TimeWeighted {
        TimeWeighted {
            last_t: t0,
            last_v: v0,
            integral: 0.0,
            t0,
            peak: v0,
        }
    }

    /// The value changed to `v` at time `t`.
    pub fn update(&mut self, t: SimTime, v: f64) {
        let dt = (t - self.last_t).as_secs_f64();
        self.integral += self.last_v * dt;
        self.last_t = t;
        self.last_v = v;
        self.peak = self.peak.max(v);
    }

    /// Time-weighted mean over `[t0, t]`.
    pub fn mean_at(&self, t: SimTime) -> f64 {
        let span = (t - self.t0).as_secs_f64();
        if span <= 0.0 {
            return self.last_v;
        }
        let tail = (t - self.last_t).as_secs_f64();
        (self.integral + self.last_v * tail) / span
    }

    /// Largest value seen.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// The current value.
    pub fn current(&self) -> f64 {
        self.last_v
    }
}

/// Analytic M/D/1 queueing results used by §6.1 ("M/D/1 modeling of the
/// queue suggests an average queue length of approximately one packet or
/// less … at up to about 70 percent utilization").
pub mod mdl {
    /// Mean number in system (including the one in service) for M/D/1 at
    /// utilization `rho` (Pollaczek–Khinchine).
    pub fn mean_in_system(rho: f64) -> f64 {
        assert!((0.0..1.0).contains(&rho), "rho must be in [0,1)");
        rho + rho * rho / (2.0 * (1.0 - rho))
    }

    /// Mean *waiting* time in units of the (deterministic) service time.
    pub fn mean_wait_in_service_times(rho: f64) -> f64 {
        assert!((0.0..1.0).contains(&rho), "rho must be in [0,1)");
        rho / (2.0 * (1.0 - rho))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_statistics() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.138089935).abs() < 1e-6);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_summary_is_zeroes() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let mut h = DelayHistogram::new();
        for us in [1u64, 2, 4, 8, 100, 1000] {
            h.record(SimDuration::from_micros(us));
        }
        assert_eq!(h.summary().count(), 6);
        assert!(h.percentile(50.0) <= SimDuration::from_micros(16));
        assert!(h.percentile(100.0) >= SimDuration::from_micros(1000));
    }

    #[test]
    fn time_weighted_square_wave() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.update(SimTime(500_000_000), 2.0); // 0 for 0.5 s
        tw.update(SimTime(1_000_000_000), 0.0); // 2 for 0.5 s
        let mean = tw.mean_at(SimTime(1_000_000_000));
        assert!((mean - 1.0).abs() < 1e-12, "mean={mean}");
        assert_eq!(tw.peak(), 2.0);
        assert_eq!(tw.current(), 0.0);
    }

    #[test]
    fn mdl_matches_paper_70_percent_claim() {
        // At ρ = 0.7 the mean number in system is ≈ 1.52 and the mean
        // queue (excluding in service) is ≈ 0.82 — "approximately one
        // packet or less, excluding the packet currently being
        // transmitted" (§6.1).
        let rho: f64 = 0.7;
        let in_system = mdl::mean_in_system(rho);
        let queued = in_system - rho;
        assert!(queued < 1.0, "queued={queued}");
        assert!(queued > 0.5);
        // "The average queueing delay is then approximately the
        // transmission time for half an average packet" at moderate load:
        // at ρ = 0.5 the wait is exactly 0.5 service times.
        let w = mdl::mean_wait_in_service_times(0.5);
        assert!((w - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "rho")]
    fn mdl_rejects_unstable_rho() {
        let _ = mdl::mean_in_system(1.0);
    }
}
