//! Measurement utilities: running summaries, delay histograms,
//! time-weighted averages (for queue lengths and utilization), and the
//! workspace-wide observability spine — the unified [`DropReason`] /
//! [`Stage`] taxonomy, array-backed counters, and the [`NodeStats`]
//! scrape contract every data-plane node exposes.

use std::ops::Index;

use crate::time::{SimDuration, SimTime};

/// The stages of the shared staged data plane
/// (`parse → route → authorize → police → enqueue → transmit`).
///
/// Every router advances work items through (a subset of) these stages;
/// [`StageCounters`] counts entries into each one so any node can be
/// asked "how much work reached stage X" uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Link-frame decode and header extraction.
    Parse,
    /// Forwarding decision (segment/port resolution, table lookup).
    Route,
    /// Token / admission checking.
    Authorize,
    /// Rate policing and congestion feedback.
    Police,
    /// Output-queue admission.
    Enqueue,
    /// Frame handed to the wire.
    Transmit,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 6] = [
        Stage::Parse,
        Stage::Route,
        Stage::Authorize,
        Stage::Police,
        Stage::Enqueue,
        Stage::Transmit,
    ];

    /// Number of stages.
    pub const COUNT: usize = Self::ALL.len();

    /// Dense index for counter arrays.
    pub fn index(self) -> usize {
        match self {
            Stage::Parse => 0,
            Stage::Route => 1,
            Stage::Authorize => 2,
            Stage::Police => 3,
            Stage::Enqueue => 4,
            Stage::Transmit => 5,
        }
    }
}

/// Why a packet was dropped — one taxonomy shared by every node type
/// (VIPER, IP, CVC), so drop accounting is comparable across routers
/// without downcasting to per-router stat structs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// Leading segment or link frame failed to parse (structural damage —
    /// Sirpent has no checksum, so this only catches framing breakage).
    ParseError,
    /// The resolved port has no attached channel.
    NoSuchPort,
    /// Output queue full (drop-tail).
    QueueFull,
    /// Drop-if-blocked flag set and the port was busy.
    DropIfBlocked,
    /// Preempted mid-transmission by a priority 6/7 packet.
    Preempted,
    /// Token missing and required.
    TokenMissing,
    /// Token rejected (any reason).
    TokenRejected,
    /// Malformed logical/multicast structure.
    BadStructure,
    /// Recursion limit on splices/trees.
    TooDeep,
    /// Arrived on an unknown port or with an unusable frame.
    BadFrame,
    /// IP header checksum failed (corruption the router pays to notice).
    Checksum,
    /// IP TTL reached zero.
    TtlExpired,
    /// No matching route for the destination.
    NoRoute,
    /// Needs fragmentation but cannot (DF set or unusable MTU).
    CannotFragment,
    /// CVC data arrived for a circuit this switch does not know.
    UnknownCircuit,
    /// The outgoing (or carrying) link was administratively down — the
    /// frame was killed on the wire or refused at transmit time.
    LinkDown,
    /// The receiving router was crashed when the frame arrived, or the
    /// frame was purged from a queue by a crash (chaos layer).
    RouterDown,
    /// Delivery suppressed by an active partition window between the
    /// sender's side and the receiver's side.
    Partitioned,
    /// A length field disagrees with the bytes on the wire — e.g. an IP
    /// `total_len` that wrapped the 16-bit field at build time, or a
    /// datagram truncated/padded in transit. Caught at parse so the
    /// bogus length can never index past a buffer downstream.
    BadLength,
    /// The resolved next hop was unreachable at forwarding time — the
    /// outgoing link or the peer router behind it was down — and the
    /// segment carried no usable alternate branch. Unlike [`LinkDown`]
    /// (killed on the wire) or [`RouterDown`] (purged on arrival), this
    /// is a *route-time* decision: the router saw the failure and had
    /// nowhere to divert.
    ///
    /// [`LinkDown`]: DropReason::LinkDown
    /// [`RouterDown`]: DropReason::RouterDown
    NextHopDown,
}

impl DropReason {
    /// Every reason, in dense-index order.
    pub const ALL: [DropReason; 20] = [
        DropReason::ParseError,
        DropReason::NoSuchPort,
        DropReason::QueueFull,
        DropReason::DropIfBlocked,
        DropReason::Preempted,
        DropReason::TokenMissing,
        DropReason::TokenRejected,
        DropReason::BadStructure,
        DropReason::TooDeep,
        DropReason::BadFrame,
        DropReason::Checksum,
        DropReason::TtlExpired,
        DropReason::NoRoute,
        DropReason::CannotFragment,
        DropReason::UnknownCircuit,
        DropReason::LinkDown,
        DropReason::RouterDown,
        DropReason::Partitioned,
        DropReason::BadLength,
        DropReason::NextHopDown,
    ];

    /// Number of reasons.
    pub const COUNT: usize = Self::ALL.len();

    /// Dense index for counter arrays.
    pub fn index(self) -> usize {
        match self {
            DropReason::ParseError => 0,
            DropReason::NoSuchPort => 1,
            DropReason::QueueFull => 2,
            DropReason::DropIfBlocked => 3,
            DropReason::Preempted => 4,
            DropReason::TokenMissing => 5,
            DropReason::TokenRejected => 6,
            DropReason::BadStructure => 7,
            DropReason::TooDeep => 8,
            DropReason::BadFrame => 9,
            DropReason::Checksum => 10,
            DropReason::TtlExpired => 11,
            DropReason::NoRoute => 12,
            DropReason::CannotFragment => 13,
            DropReason::UnknownCircuit => 14,
            DropReason::LinkDown => 15,
            DropReason::RouterDown => 16,
            DropReason::Partitioned => 17,
            DropReason::BadLength => 18,
            DropReason::NextHopDown => 19,
        }
    }

    /// Stable `snake_case` label, used by the flight recorder's drop
    /// events and trace exports.
    pub fn label(self) -> &'static str {
        match self {
            DropReason::ParseError => "parse_error",
            DropReason::NoSuchPort => "no_such_port",
            DropReason::QueueFull => "queue_full",
            DropReason::DropIfBlocked => "drop_if_blocked",
            DropReason::Preempted => "preempted",
            DropReason::TokenMissing => "token_missing",
            DropReason::TokenRejected => "token_rejected",
            DropReason::BadStructure => "bad_structure",
            DropReason::TooDeep => "too_deep",
            DropReason::BadFrame => "bad_frame",
            DropReason::Checksum => "checksum",
            DropReason::TtlExpired => "ttl_expired",
            DropReason::NoRoute => "no_route",
            DropReason::CannotFragment => "cannot_fragment",
            DropReason::UnknownCircuit => "unknown_circuit",
            DropReason::LinkDown => "link_down",
            DropReason::RouterDown => "router_down",
            DropReason::Partitioned => "partitioned",
            DropReason::BadLength => "bad_length",
            DropReason::NextHopDown => "next_hop_down",
        }
    }

    /// The pipeline stage at which this drop occurs.
    pub fn stage(self) -> Stage {
        match self {
            DropReason::ParseError
            | DropReason::BadFrame
            | DropReason::Checksum
            | DropReason::BadLength => Stage::Parse,
            DropReason::NoSuchPort
            | DropReason::BadStructure
            | DropReason::TooDeep
            | DropReason::TtlExpired
            | DropReason::NoRoute
            | DropReason::UnknownCircuit
            | DropReason::NextHopDown => Stage::Route,
            DropReason::TokenMissing | DropReason::TokenRejected => Stage::Authorize,
            DropReason::QueueFull | DropReason::DropIfBlocked | DropReason::CannotFragment => {
                Stage::Enqueue
            }
            DropReason::Preempted | DropReason::LinkDown | DropReason::Partitioned => {
                Stage::Transmit
            }
            DropReason::RouterDown => Stage::Parse,
        }
    }
}

/// Dense per-reason drop counters with deterministic iteration order
/// (declaration order of [`DropReason::ALL`], never hash order).
#[derive(Debug, Clone, Default)]
pub struct DropCounters([u64; DropReason::COUNT]);

impl DropCounters {
    /// All zero.
    pub fn new() -> DropCounters {
        DropCounters::default()
    }

    /// Count one drop.
    pub fn record(&mut self, why: DropReason) {
        self.0[why.index()] += 1;
    }

    /// The count for one reason.
    pub fn get(&self, why: DropReason) -> u64 {
        self.0[why.index()]
    }

    /// Sum across reasons.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// `(reason, count)` pairs in declaration order (including zeros).
    pub fn iter(&self) -> impl Iterator<Item = (DropReason, u64)> + '_ {
        DropReason::ALL.iter().map(|&r| (r, self.0[r.index()]))
    }

    /// Add every counter from `other` — the shard-merge path. Counts
    /// recorded through [`PipelineStats::drop`] on different shards sum
    /// reason-by-reason; merging preserves the exactly-once discipline
    /// because each drop was recorded on exactly one shard.
    pub fn absorb(&mut self, other: &DropCounters) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a += *b;
        }
    }
}

impl Index<DropReason> for DropCounters {
    type Output = u64;

    fn index(&self, why: DropReason) -> &u64 {
        &self.0[why.index()]
    }
}

/// Dense per-stage work counters (entries into each stage).
#[derive(Debug, Clone, Default)]
pub struct StageCounters([u64; Stage::COUNT]);

impl StageCounters {
    /// All zero.
    pub fn new() -> StageCounters {
        StageCounters::default()
    }

    /// Count one entry into a stage.
    pub fn record(&mut self, s: Stage) {
        self.0[s.index()] += 1;
    }

    /// Entries into one stage.
    pub fn get(&self, s: Stage) -> u64 {
        self.0[s.index()]
    }

    /// `(stage, count)` pairs in pipeline order.
    pub fn iter(&self) -> impl Iterator<Item = (Stage, u64)> + '_ {
        Stage::ALL.iter().map(|&s| (s, self.0[s.index()]))
    }

    /// Add every counter from `other` (shard-merge support).
    pub fn absorb(&mut self, other: &StageCounters) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a += *b;
        }
    }
}

impl Index<Stage> for StageCounters {
    type Output = u64;

    fn index(&self, s: Stage) -> &u64 {
        &self.0[s.index()]
    }
}

/// The shared per-node data-plane counters every router embeds: the
/// uniform part of the stats surface (router-specific extras like token
/// cache hits live in per-router wrappers that `Deref` to this).
#[derive(Debug, Clone, Default)]
pub struct PipelineStats {
    /// Packets forwarded (copies and fragments count individually).
    pub forwarded: u64,
    /// Packets delivered to the node's own local attachment.
    pub local: u64,
    /// Drops, by unified reason.
    pub drops: DropCounters,
    /// Work entries per pipeline stage.
    pub stages: StageCounters,
    /// Delay from first bit in to first bit out, successfully forwarded
    /// packets (seconds).
    pub forward_delay: Summary,
    /// Output-queue depth sampled at each successful enqueue.
    pub queue_depth: Summary,
    /// Peak output-queue depth observed.
    pub max_queue: usize,
    /// Arrival-to-decision service latency (first bit in → forwarding
    /// decision), nanoseconds.
    pub parse_latency_ns: sirpent_telemetry::Histogram,
    /// Output-queue wait (enqueue → transmit start), nanoseconds.
    pub queue_wait_ns: sirpent_telemetry::Histogram,
    /// Frame transmission time on the output link, nanoseconds.
    pub transmit_latency_ns: sirpent_telemetry::Histogram,
}

impl PipelineStats {
    /// Empty stats.
    pub fn new() -> PipelineStats {
        PipelineStats::default()
    }

    /// Count one drop through the shared accounting path — exactly one
    /// reason counter moves per dropped packet. (Stage entries are
    /// counted separately by [`PipelineStats::enter`]; the stage a reason
    /// belongs to is [`DropReason::stage`].)
    pub fn drop(&mut self, why: DropReason) {
        self.drops.record(why);
    }

    /// Count one work item entering a stage.
    pub fn enter(&mut self, s: Stage) {
        self.stages.record(s);
    }

    /// Total drops across reasons.
    pub fn total_drops(&self) -> u64 {
        self.drops.total()
    }

    /// Merge another pipeline's counters into this one — the shard-merge
    /// path: per-shard accounting sums exactly (counters add, histograms
    /// merge bucket-wise, summaries combine via the parallel Welford
    /// identity, peaks take the max). Each underlying observation was
    /// recorded on exactly one shard, so the merged surface equals what a
    /// single accounting instance would have seen.
    pub fn absorb(&mut self, other: &PipelineStats) {
        self.forwarded += other.forwarded;
        self.local += other.local;
        self.drops.absorb(&other.drops);
        self.stages.absorb(&other.stages);
        self.forward_delay.absorb(&other.forward_delay);
        self.queue_depth.absorb(&other.queue_depth);
        self.max_queue = self.max_queue.max(other.max_queue);
        self.parse_latency_ns.merge(&other.parse_latency_ns);
        self.queue_wait_ns.merge(&other.queue_wait_ns);
        self.transmit_latency_ns.merge(&other.transmit_latency_ns);
    }

    /// Publish the shared pipeline surface into a scrape registry under
    /// the static names of [`sirpent_telemetry::names`]. The live
    /// occupancy gauge is published by the owning node (it knows its
    /// current `queued_frames()`); everything here is counter/histogram
    /// state the pipeline maintains itself.
    pub fn publish_telemetry(
        &self,
        reg: &mut sirpent_telemetry::Registry,
    ) -> Result<(), sirpent_telemetry::registry::RegistryError> {
        use sirpent_telemetry::names;
        reg.publish_count(names::ROUTER_FORWARDED_TOTAL, self.forwarded)?;
        reg.publish_count(names::ROUTER_LOCAL_DELIVERED_TOTAL, self.local)?;
        reg.publish_count(names::ROUTER_DROPS_TOTAL, self.total_drops())?;
        for (stage, count) in self.stages.iter() {
            reg.publish_count(stage_metric_name(stage), count)?;
        }
        reg.publish_histogram(names::ROUTER_PARSE_LATENCY_NS, &self.parse_latency_ns)?;
        reg.publish_histogram(names::ROUTER_QUEUE_WAIT_NS, &self.queue_wait_ns)?;
        reg.publish_histogram(names::ROUTER_TRANSMIT_LATENCY_NS, &self.transmit_latency_ns)?;
        let mut peak = sirpent_telemetry::Gauge::new();
        peak.set(self.max_queue as i64);
        reg.publish_gauge(names::ROUTER_QUEUE_PEAK, &peak)?;
        Ok(())
    }
}

/// The registry name each stage-occupancy counter is published under.
pub fn stage_metric_name(s: Stage) -> &'static str {
    use sirpent_telemetry::names;
    match s {
        Stage::Parse => names::ROUTER_STAGE_PARSE_TOTAL,
        Stage::Route => names::ROUTER_STAGE_ROUTE_TOTAL,
        Stage::Authorize => names::ROUTER_STAGE_AUTHORIZE_TOTAL,
        Stage::Police => names::ROUTER_STAGE_POLICE_TOTAL,
        Stage::Enqueue => names::ROUTER_STAGE_ENQUEUE_TOTAL,
        Stage::Transmit => names::ROUTER_STAGE_TRANSMIT_TOTAL,
    }
}

/// The uniform scrape contract: any node exposing this can be read by
/// the sim engine, bench binaries, and experiment scripts without
/// downcasting to its concrete stats struct.
pub trait NodeStats {
    /// Packets forwarded.
    fn forwarded(&self) -> u64;
    /// Packets delivered locally.
    fn local(&self) -> u64;
    /// Drop counters by unified reason.
    fn drops(&self) -> &DropCounters;
    /// Work counters per pipeline stage.
    fn stages(&self) -> &StageCounters;
    /// First-bit-in → first-bit-out delay summary (seconds).
    fn forward_delay(&self) -> &Summary;
    /// Queue-depth summary (sampled at enqueue).
    fn queue_depth(&self) -> &Summary;
    /// Peak queue depth.
    fn max_queue(&self) -> usize;

    /// Total drops across reasons.
    fn total_drops(&self) -> u64 {
        self.drops().total()
    }
}

impl NodeStats for PipelineStats {
    fn forwarded(&self) -> u64 {
        self.forwarded
    }

    fn local(&self) -> u64 {
        self.local
    }

    fn drops(&self) -> &DropCounters {
        &self.drops
    }

    fn stages(&self) -> &StageCounters {
        &self.stages
    }

    fn forward_delay(&self) -> &Summary {
        &self.forward_delay
    }

    fn queue_depth(&self) -> &Summary {
        &self.queue_depth
    }

    fn max_queue(&self) -> usize {
        self.max_queue
    }
}

/// Running scalar summary: count / mean / min / max / variance (Welford).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Create an empty summary.
    pub fn new() -> Summary {
        Summary {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            ..Default::default()
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Record a duration in seconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Combine another summary into this one using the parallel Welford
    /// (Chan et al.) identity, so `a.absorb(&b)` matches the summary of
    /// the concatenated observation streams up to floating-point
    /// associativity.
    pub fn absorb(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let n = n1 + n2;
        let d = other.mean - self.mean;
        self.m2 += other.m2 + d * d * n1 * n2 / n;
        self.mean += d * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// Fixed-bucket histogram over durations, log₂-spaced from 1 ns up.
#[derive(Debug, Clone)]
pub struct DelayHistogram {
    buckets: Vec<u64>,
    summary: Summary,
}

impl DelayHistogram {
    /// 64 log₂ buckets cover 1 ns … ~584 years.
    pub fn new() -> DelayHistogram {
        DelayHistogram {
            buckets: vec![0; 64],
            summary: Summary::new(),
        }
    }

    /// Record one delay.
    pub fn record(&mut self, d: SimDuration) {
        let idx = 64 - d.as_nanos().max(1).leading_zeros() as usize - 1;
        self.buckets[idx.min(63)] += 1;
        self.summary.record_duration(d);
    }

    /// The scalar summary.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// Approximate percentile (by bucket upper bound), `p` in 0..=100.
    pub fn percentile(&self, p: f64) -> SimDuration {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return SimDuration::ZERO;
        }
        let target = (p / 100.0 * total as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return SimDuration(1u64 << (i + 1).min(63));
            }
        }
        SimDuration(u64::MAX)
    }
}

impl Default for DelayHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Time-weighted average of a step function (e.g. queue length over
/// time). Integrates value·dt between updates.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_t: SimTime,
    last_v: f64,
    integral: f64,
    t0: SimTime,
    peak: f64,
}

impl TimeWeighted {
    /// Start tracking at `t0` with initial value `v0`.
    pub fn new(t0: SimTime, v0: f64) -> TimeWeighted {
        TimeWeighted {
            last_t: t0,
            last_v: v0,
            integral: 0.0,
            t0,
            peak: v0,
        }
    }

    /// The value changed to `v` at time `t`.
    pub fn update(&mut self, t: SimTime, v: f64) {
        let dt = (t - self.last_t).as_secs_f64();
        self.integral += self.last_v * dt;
        self.last_t = t;
        self.last_v = v;
        self.peak = self.peak.max(v);
    }

    /// Time-weighted mean over `[t0, t]`.
    pub fn mean_at(&self, t: SimTime) -> f64 {
        let span = (t - self.t0).as_secs_f64();
        if span <= 0.0 {
            return self.last_v;
        }
        let tail = (t - self.last_t).as_secs_f64();
        (self.integral + self.last_v * tail) / span
    }

    /// Largest value seen.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// The current value.
    pub fn current(&self) -> f64 {
        self.last_v
    }
}

/// Analytic M/D/1 queueing results used by §6.1 ("M/D/1 modeling of the
/// queue suggests an average queue length of approximately one packet or
/// less … at up to about 70 percent utilization").
pub mod mdl {
    /// Mean number in system (including the one in service) for M/D/1 at
    /// utilization `rho` (Pollaczek–Khinchine).
    pub fn mean_in_system(rho: f64) -> f64 {
        assert!((0.0..1.0).contains(&rho), "rho must be in [0,1)");
        rho + rho * rho / (2.0 * (1.0 - rho))
    }

    /// Mean *waiting* time in units of the (deterministic) service time.
    pub fn mean_wait_in_service_times(rho: f64) -> f64 {
        assert!((0.0..1.0).contains(&rho), "rho must be in [0,1)");
        rho / (2.0 * (1.0 - rho))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_statistics() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.138089935).abs() < 1e-6);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_summary_is_zeroes() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let mut h = DelayHistogram::new();
        for us in [1u64, 2, 4, 8, 100, 1000] {
            h.record(SimDuration::from_micros(us));
        }
        assert_eq!(h.summary().count(), 6);
        assert!(h.percentile(50.0) <= SimDuration::from_micros(16));
        assert!(h.percentile(100.0) >= SimDuration::from_micros(1000));
    }

    #[test]
    fn time_weighted_square_wave() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.update(SimTime(500_000_000), 2.0); // 0 for 0.5 s
        tw.update(SimTime(1_000_000_000), 0.0); // 2 for 0.5 s
        let mean = tw.mean_at(SimTime(1_000_000_000));
        assert!((mean - 1.0).abs() < 1e-12, "mean={mean}");
        assert_eq!(tw.peak(), 2.0);
        assert_eq!(tw.current(), 0.0);
    }

    #[test]
    fn mdl_matches_paper_70_percent_claim() {
        // At ρ = 0.7 the mean number in system is ≈ 1.52 and the mean
        // queue (excluding in service) is ≈ 0.82 — "approximately one
        // packet or less, excluding the packet currently being
        // transmitted" (§6.1).
        let rho: f64 = 0.7;
        let in_system = mdl::mean_in_system(rho);
        let queued = in_system - rho;
        assert!(queued < 1.0, "queued={queued}");
        assert!(queued > 0.5);
        // "The average queueing delay is then approximately the
        // transmission time for half an average packet" at moderate load:
        // at ρ = 0.5 the wait is exactly 0.5 service times.
        let w = mdl::mean_wait_in_service_times(0.5);
        assert!((w - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "rho")]
    fn mdl_rejects_unstable_rho() {
        let _ = mdl::mean_in_system(1.0);
    }
}
