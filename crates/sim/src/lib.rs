//! # sirpent-sim — deterministic discrete-event network simulator
//!
//! The substrate under the Sirpent/VIPER reproduction. The paper's
//! evaluation (§6) reasons about byte-level timing — when a header has
//! arrived versus when a whole packet has arrived — so the engine models
//! **partial frame arrival** explicitly: receivers learn of a frame when
//! its first bit lands and are told when its last bit will, letting
//! cut-through and store-and-forward switches be expressed faithfully and
//! compared on identical topologies.
//!
//! * [`engine`] — event queue, nodes, channels (point-to-point links and
//!   shared broadcast segments), preemptive aborts, fault injection.
//! * [`chaos`] — scheduled fault events (link flaps, router crash and
//!   restart, partitions, duplication/jitter/error-burst windows)
//!   applied deterministically by the engine.
//! * [`time`] — nanosecond clock and rate arithmetic.
//! * [`workload`] — the paper's §6.2 packet-size mix and hop-count
//!   locality model, plus Poisson/CBR/bursty-on-off arrival processes.
//! * [`stats`] — summaries, histograms, time-weighted averages, and the
//!   analytic M/D/1 results §6.1 quotes.
//! * [`shard`] — deterministic topology partitioner and the sharded
//!   simulator façade (split / parallel run / merge back to serial).
//! * `sync` (crate-private) — conservative time-window runner driving
//!   the shards on scoped worker threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod engine;
pub mod queue;
pub mod shard;
pub mod stats;
mod sync;
pub mod time;
pub mod workload;

pub use chaos::{ChaosAction, ChaosError, ChaosEvent, FaultSchedule};
pub use engine::{
    AbortInfo, ChannelId, Context, Event, FaultConfig, Frame, FrameEvent, FrameId, Node, NodeId,
    SimError, Simulator, TxInfo,
};
pub use queue::QueueKind;
pub use shard::{partition_topology, shard_seed, Partition, ShardedSimulator};
pub use time::{bytes_in, transmission_time, SimDuration, SimTime};
