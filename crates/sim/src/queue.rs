//! Pluggable event queues: the reference binary heap and the calendar
//! (timing-wheel) queue the engine runs on.
//!
//! Both implementations drain items in identical `(time, seq)` total
//! order — the engine's determinism contract — so they are differentially
//! testable: any schedule pushed into both must pop identically. The
//! heap is the obviously-correct reference; the calendar queue is the
//! fast path, O(1) amortized at high event density where a binary heap
//! pays O(log n) sift moves per operation.
//!
//! ## Wheel geometry
//!
//! Near-future items live on a **wheel** of [`SLOTS`] buckets, each
//! covering a window of `2^`[`SLOT_SHIFT`] nanoseconds; the wheel as a
//! whole spans `SLOTS × 2^SLOT_SHIFT` ns from the current drain position
//! (`cur_abs`, an absolute bucket index). Items beyond that horizon go
//! to a sorted **overflow** level (a binary heap — the "far-future
//! timer" fallback). Buckets are unsorted append-only vectors until the
//! drain reaches them, at which point they are sorted once (descending,
//! so `pop` is an O(1) tail removal); bucket vectors are reused across
//! rotations, so a warm wheel allocates nothing on the hot path.
//!
//! ## The caller contract
//!
//! Pushed keys must be `>=` the key of the last popped item (the
//! engine's "no scheduling into the past" rule). This is what lets the
//! drain position advance monotonically: the wheel never needs to look
//! behind `cur_abs`. The drain position only advances inside [`pop`] —
//! never in [`peek`]/[`min_key`] — because between a peek and a pop the
//! engine may still push same-instant events (the chaos layer injects
//! aborts *at* the current instant), and those must land in front of the
//! drain, not behind it.
//!
//! [`pop`]: EventQueue::pop
//! [`peek`]: EventQueue::peek
//! [`min_key`]: EventQueue::min_key

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Total order key: `(time_ns, seq)`. The sequence is unique within a
/// run, so keys never tie.
pub type Key = (u64, u64);

/// An item with a stable scheduling key.
pub trait Keyed {
    /// The item's `(time_ns, seq)` ordering key. Must not change while
    /// the item is queued.
    fn key(&self) -> Key;
}

/// A queue that drains [`Keyed`] items in ascending key order.
///
/// `min_key` and `peek` take `&mut self` — implementations may reorganize
/// storage (sort a bucket) to answer, but must not advance the drain
/// position: after a peek, pushing a key equal to the peeked key must
/// still be accepted and ordered correctly.
pub trait EventQueue<T: Keyed> {
    /// Insert an item. The key must be `>=` the last popped key.
    fn push(&mut self, item: T);
    /// The smallest key currently queued.
    fn min_key(&mut self) -> Option<Key>;
    /// Borrow the item with the smallest key.
    fn peek(&mut self) -> Option<&T>;
    /// Remove and return the item with the smallest key.
    fn pop(&mut self) -> Option<T>;
    /// Queued item count.
    fn len(&self) -> usize;
    /// Whether nothing is queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Heap entry: key cached so ordering never re-asks the item.
struct Entry<T> {
    key: Key,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// The reference implementation: a plain binary min-heap. O(log n)
/// push/pop, trivially correct — kept as the differential-test oracle
/// and selectable via [`QueueKind::Heap`].
#[derive(Default)]
pub struct HeapQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
}

impl<T: Keyed> HeapQueue<T> {
    /// An empty heap queue.
    pub fn new() -> HeapQueue<T> {
        HeapQueue {
            heap: BinaryHeap::new(),
        }
    }
}

impl<T: Keyed> EventQueue<T> for HeapQueue<T> {
    fn push(&mut self, item: T) {
        let key = item.key();
        self.heap.push(Reverse(Entry { key, item }));
    }

    fn min_key(&mut self) -> Option<Key> {
        self.heap.peek().map(|Reverse(e)| e.key)
    }

    fn peek(&mut self) -> Option<&T> {
        self.heap.peek().map(|Reverse(e)| &e.item)
    }

    fn pop(&mut self) -> Option<T> {
        self.heap.pop().map(|Reverse(e)| e.item)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// log2 of the bucket width in nanoseconds: 2^13 ns ≈ 8.2 µs — on the
/// order of a small frame's transmission time at 10 Mb/s, so a busy
/// link's events spread over a handful of buckets instead of piling
/// into one.
pub const SLOT_SHIFT: u32 = 13;

/// Bucket count (power of two). The wheel horizon is
/// `SLOTS << SLOT_SHIFT` ns ≈ 4.2 ms; anything scheduled further out
/// waits in the overflow level.
pub const SLOTS: usize = 512;

const SLOT_MASK: u64 = SLOTS as u64 - 1;
const WORDS: usize = SLOTS / 64;

/// One wheel bucket. `sorted` means `items` is in *descending* key
/// order, so the minimum is at the tail and `pop` moves nothing.
struct Bucket<T> {
    items: Vec<(Key, T)>,
    sorted: bool,
}

impl<T> Default for Bucket<T> {
    fn default() -> Bucket<T> {
        Bucket {
            items: Vec::new(),
            sorted: false,
        }
    }
}

/// The calendar queue: a timing wheel over near-future buckets with a
/// heap-sorted overflow level. See the module docs for geometry and the
/// caller contract.
pub struct CalendarQueue<T> {
    buckets: Vec<Bucket<T>>,
    /// Occupancy bitmap over slots (bit set ⇔ bucket non-empty).
    occupied: [u64; WORDS],
    /// Absolute index (`time_ns >> SLOT_SHIFT`) of the drain bucket: no
    /// queued item lives below it.
    cur_abs: u64,
    /// Items currently on the wheel (the rest are in `overflow`).
    wheel_len: usize,
    overflow: BinaryHeap<Reverse<Entry<T>>>,
    len: usize,
}

impl<T: Keyed> Default for CalendarQueue<T> {
    fn default() -> CalendarQueue<T> {
        CalendarQueue::new()
    }
}

impl<T: Keyed> CalendarQueue<T> {
    /// An empty calendar queue with its drain position at time zero.
    pub fn new() -> CalendarQueue<T> {
        let mut buckets = Vec::with_capacity(SLOTS);
        buckets.resize_with(SLOTS, Bucket::default);
        CalendarQueue {
            buckets,
            occupied: [0; WORDS],
            cur_abs: 0,
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    #[inline]
    fn slot_of(abs: u64) -> usize {
        (abs & SLOT_MASK) as usize
    }

    #[inline]
    fn set_bit(&mut self, slot: usize) {
        if let Some(w) = self.occupied.get_mut(slot >> 6) {
            *w |= 1u64 << (slot & 63);
        }
    }

    #[inline]
    fn clear_bit(&mut self, slot: usize) {
        if let Some(w) = self.occupied.get_mut(slot >> 6) {
            *w &= !(1u64 << (slot & 63));
        }
    }

    /// Absolute index of the first non-empty bucket at or after `from`,
    /// scanning the occupancy bitmap circularly (the wheel invariant —
    /// every occupied slot holds items within `[cur_abs, cur_abs+SLOTS)`
    /// — makes circular distance equal absolute distance).
    fn next_occupied(&self, from: u64) -> Option<u64> {
        let start = Self::slot_of(from);
        let mut idx = start >> 6;
        let mut word = self.occupied.get(idx).copied().unwrap_or(0) & (!0u64 << (start & 63));
        for _ in 0..=WORDS {
            if word != 0 {
                let bit = (idx << 6) + word.trailing_zeros() as usize;
                let d = (bit + SLOTS - start) % SLOTS;
                return Some(from + d as u64);
            }
            idx = (idx + 1) % WORDS;
            word = self.occupied.get(idx).copied().unwrap_or(0);
        }
        None
    }

    /// Place an item into its wheel bucket (`abs` must be within the
    /// current window).
    fn wheel_insert(&mut self, abs: u64, key: Key, item: T) {
        debug_assert!(abs >= self.cur_abs && abs < self.cur_abs + SLOTS as u64);
        let slot = Self::slot_of(abs);
        if let Some(b) = self.buckets.get_mut(slot) {
            if b.items.is_empty() {
                // Fresh fill: cheap append mode until the drain arrives.
                b.sorted = false;
                b.items.push((key, item));
            } else if b.sorted {
                // The drain is (or has been) in this bucket: keep the
                // descending order with a binary-search insert.
                let pos = b.items.partition_point(|e| e.0 > key);
                b.items.insert(pos, (key, item));
            } else {
                b.items.push((key, item));
            }
            self.set_bit(slot);
            self.wheel_len += 1;
        }
    }

    /// Advance the drain position and pull overflow items that the wider
    /// window now covers onto the wheel. Keeps the invariant that the
    /// overflow level only holds items beyond the horizon, which is what
    /// makes "wheel min < overflow min whenever the wheel is non-empty"
    /// true.
    fn advance_to(&mut self, new_abs: u64) {
        debug_assert!(new_abs >= self.cur_abs);
        self.cur_abs = new_abs;
        let horizon = new_abs + SLOTS as u64;
        while let Some(Reverse(e)) = self.overflow.peek() {
            if (e.key.0 >> SLOT_SHIFT) >= horizon {
                break;
            }
            if let Some(Reverse(e)) = self.overflow.pop() {
                let abs = e.key.0 >> SLOT_SHIFT;
                self.wheel_insert(abs, e.key, e.item);
            }
        }
    }

    /// Sort the drain bucket on first touch (descending: minimum at the
    /// tail). Keys are unique, so unstable sort is deterministic.
    fn ensure_sorted(b: &mut Bucket<T>) {
        if !b.sorted {
            b.items.sort_unstable_by_key(|z| Reverse(z.0));
            b.sorted = true;
        }
    }

    /// Locate the bucket holding the wheel minimum and sort it. Returns
    /// its absolute index. Does not advance the drain position.
    fn locate_min(&mut self) -> Option<u64> {
        if self.wheel_len == 0 {
            return None;
        }
        let abs = self.next_occupied(self.cur_abs)?;
        let slot = Self::slot_of(abs);
        if let Some(b) = self.buckets.get_mut(slot) {
            Self::ensure_sorted(b);
        }
        Some(abs)
    }
}

impl<T: Keyed> EventQueue<T> for CalendarQueue<T> {
    fn push(&mut self, item: T) {
        let key = item.key();
        let abs = key.0 >> SLOT_SHIFT;
        debug_assert!(
            abs >= self.cur_abs,
            "pushed key below the drain position (scheduling into the past)"
        );
        if abs < self.cur_abs + SLOTS as u64 {
            self.wheel_insert(abs, key, item);
        } else {
            self.overflow.push(Reverse(Entry { key, item }));
        }
        self.len += 1;
    }

    fn min_key(&mut self) -> Option<Key> {
        if let Some(abs) = self.locate_min() {
            let slot = Self::slot_of(abs);
            return self
                .buckets
                .get(slot)
                .and_then(|b| b.items.last())
                .map(|e| e.0);
        }
        self.overflow.peek().map(|Reverse(e)| e.key)
    }

    fn peek(&mut self) -> Option<&T> {
        if let Some(abs) = self.locate_min() {
            let slot = Self::slot_of(abs);
            return self
                .buckets
                .get(slot)
                .and_then(|b| b.items.last())
                .map(|e| &e.1);
        }
        self.overflow.peek().map(|Reverse(e)| &e.item)
    }

    fn pop(&mut self) -> Option<T> {
        if self.wheel_len == 0 {
            // Wheel dry: jump the window to the overflow minimum. This
            // is the only place the drain may skip ahead, and it is safe
            // because the caller contract forbids later pushes below the
            // popped key.
            let min_abs = {
                let Reverse(e) = self.overflow.peek()?;
                e.key.0 >> SLOT_SHIFT
            };
            self.advance_to(min_abs);
        }
        let abs = self.next_occupied(self.cur_abs)?;
        if abs > self.cur_abs {
            // Walking forward also widens the horizon; migrate overflow
            // items the window now covers (they all sit in buckets at or
            // above `abs`, so the minimum stays where we found it).
            self.advance_to(abs);
        }
        let slot = Self::slot_of(abs);
        let popped = if let Some(b) = self.buckets.get_mut(slot) {
            Self::ensure_sorted(b);
            let popped = b.items.pop();
            if b.items.is_empty() {
                // Keep the allocation (bucket pooling), drop the bit.
                b.sorted = false;
                self.clear_bit(slot);
            }
            popped
        } else {
            None
        };
        if let Some((_, item)) = popped {
            self.wheel_len -= 1;
            self.len -= 1;
            Some(item)
        } else {
            None
        }
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// Which queue implementation the engine runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// The reference binary heap.
    Heap,
    /// The calendar/timing-wheel queue (the default).
    #[default]
    Calendar,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Eq)]
    struct Item(u64, u64);
    impl Keyed for Item {
        fn key(&self) -> Key {
            (self.0, self.1)
        }
    }

    fn drain<Q: EventQueue<Item>>(q: &mut Q) -> Vec<Key> {
        let mut out = Vec::new();
        while let Some(i) = q.pop() {
            out.push(i.key());
        }
        out
    }

    #[test]
    fn empty_queues() {
        let mut w: CalendarQueue<Item> = CalendarQueue::new();
        let mut h: HeapQueue<Item> = HeapQueue::new();
        assert!(w.pop().is_none() && h.pop().is_none());
        assert!(w.min_key().is_none() && h.min_key().is_none());
        assert!(w.is_empty() && h.is_empty());
    }

    #[test]
    fn same_bucket_ordering_by_seq() {
        let mut w: CalendarQueue<Item> = CalendarQueue::new();
        for seq in [3u64, 1, 2, 0] {
            w.push(Item(100, seq));
        }
        assert_eq!(drain(&mut w), vec![(100, 0), (100, 1), (100, 2), (100, 3)]);
    }

    #[test]
    fn far_future_goes_to_overflow_and_back() {
        let mut w: CalendarQueue<Item> = CalendarQueue::new();
        let horizon = (SLOTS as u64) << SLOT_SHIFT;
        w.push(Item(horizon * 3, 0));
        w.push(Item(5, 1));
        assert_eq!(w.len(), 2);
        assert_eq!(w.min_key(), Some((5, 1)));
        assert_eq!(w.pop().map(|i| i.key()), Some((5, 1)));
        assert_eq!(w.pop().map(|i| i.key()), Some((horizon * 3, 0)));
        assert!(w.pop().is_none());
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn push_at_popped_instant_lands_in_front() {
        // The chaos-layer pattern: peek, then push at the peeked instant,
        // then pop — the same-instant push must come out in seq order.
        let mut w: CalendarQueue<Item> = CalendarQueue::new();
        w.push(Item(1000, 0));
        w.push(Item(2000, 1));
        assert_eq!(w.min_key(), Some((1000, 0)));
        w.push(Item(1000, 2)); // injected at the peeked instant
        assert_eq!(
            drain(&mut w),
            vec![(1000, 0), (1000, 2), (2000, 1)],
            "same-instant injection after a peek must not fall behind the drain"
        );
    }

    #[test]
    fn window_advance_migrates_overflow_before_wheel_items_pass_it() {
        let mut w: CalendarQueue<Item> = CalendarQueue::new();
        let horizon = (SLOTS as u64) << SLOT_SHIFT;
        // Overflow item just past the horizon…
        w.push(Item(horizon + 10, 0));
        // …and a near item. Popping the near item advances the window far
        // enough that the overflow item is now inside it.
        w.push(Item(horizon - 10, 1));
        assert_eq!(w.pop().map(|i| i.key()), Some((horizon - 10, 1)));
        // A later wheel push *above* the migrated overflow item must not
        // overtake it.
        w.push(Item(horizon + 20, 2));
        assert_eq!(w.pop().map(|i| i.key()), Some((horizon + 10, 0)));
        assert_eq!(w.pop().map(|i| i.key()), Some((horizon + 20, 2)));
    }

    #[test]
    fn interleaved_random_schedule_matches_heap() {
        // A miniature differential check (the full 32-seed suite lives in
        // tests/queue_differential.rs): pseudo-random pushes interleaved
        // with pops, clock advancing to each popped time.
        let mut lcg = 0x2545F4914F6CDD1Du64;
        let mut rnd = move || {
            lcg ^= lcg << 13;
            lcg ^= lcg >> 7;
            lcg ^= lcg << 17;
            lcg
        };
        let mut w: CalendarQueue<Item> = CalendarQueue::new();
        let mut h: HeapQueue<Item> = HeapQueue::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        let mut popped = (Vec::new(), Vec::new());
        for _ in 0..5_000 {
            if rnd() % 3 != 0 {
                let dt = rnd() % 5_000_000; // up to 5 ms ahead (≥ horizon)
                let t = now + dt;
                w.push(Item(t, seq));
                h.push(Item(t, seq));
                seq += 1;
            } else {
                let (a, b) = (w.pop(), h.pop());
                assert_eq!(a.as_ref().map(Item::key), b.as_ref().map(Item::key));
                if let Some(i) = &a {
                    now = i.0;
                    popped.0.push(i.key());
                }
                if let Some(i) = &b {
                    popped.1.push(i.key());
                }
            }
            assert_eq!(w.len(), h.len());
        }
        while let (Some(a), Some(b)) = (w.pop(), h.pop()) {
            assert_eq!(a.key(), b.key());
            popped.0.push(a.key());
            popped.1.push(b.key());
        }
        assert!(w.pop().is_none() && h.pop().is_none());
        assert_eq!(popped.0, popped.1);
    }
}
