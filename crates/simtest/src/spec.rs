//! Scenario specifications: a seed-derived, shrinkable, serializable
//! description of one chaos run — topology rails, workload packets, and
//! a fault schedule.
//!
//! Everything downstream (topology construction, chaos events, packet
//! bytes) is a pure function of a [`Scenario`], so a failing run is
//! reproduced by re-running its spec and minimized by shrinking the spec
//! (see [`crate::shrink`]). Probabilities are stored in per-mille so the
//! text fixture round-trips exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Last instant (µs) a workload packet may be injected.
pub const INJECT_END_US: u64 = 20_000;
/// Earliest instant (µs) a fault window may open.
pub const CHAOS_START_US: u64 = 200;
/// Instant (µs) by which every fault window must be closed (links back
/// up, routers restarted, partitions healed) so the system can drain.
pub const CHAOS_END_US: u64 = 30_000;
/// Instant (µs) the per-rail flush packet is injected. A flush re-kicks
/// output-port service on every hop of its rail: queues stalled by a
/// link-down window drain through the ordinary enqueue → service →
/// TxDone chain once the link is back.
pub const FLUSH_US: u64 = 35_000;

/// What kind of forwarding plane a rail exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RailKind {
    /// VIPER routers in store-and-forward mode.
    ViperSf,
    /// VIPER routers in cut-through mode.
    ViperCut,
    /// The IP (datagram baseline) routers.
    Ip,
    /// The CVC (virtual-circuit baseline) switches.
    Cvc,
}

impl RailKind {
    /// Stable fixture token.
    pub fn token(self) -> &'static str {
        match self {
            RailKind::ViperSf => "viper-sf",
            RailKind::ViperCut => "viper-cut",
            RailKind::Ip => "ip",
            RailKind::Cvc => "cvc",
        }
    }

    /// Parse a fixture token.
    pub fn from_token(s: &str) -> Option<RailKind> {
        Some(match s {
            "viper-sf" => RailKind::ViperSf,
            "viper-cut" => RailKind::ViperCut,
            "ip" => RailKind::Ip,
            "cvc" => RailKind::Cvc,
            _ => return None,
        })
    }
}

/// One workload packet on a rail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketSpec {
    /// Injection instant, µs.
    pub at_us: u64,
    /// Payload length in bytes (≥ 16: the first 8 carry the marker).
    pub payload_len: usize,
    /// Unique 8-byte magic written at the start of the payload; the
    /// invariant checks match deliveries to injections by this marker.
    pub marker: u64,
}

/// One homogeneous chain: source host → routers → destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RailSpec {
    /// Forwarding plane under test.
    pub kind: RailKind,
    /// Routers/switches in the chain (≥ 1).
    pub routers: usize,
    /// Per-frame random drop probability on forward channels, per-mille.
    pub drop_pm: u32,
    /// Per-frame single-byte corruption probability on forward channels,
    /// per-mille. Normalization zeroes this on non-IP rails: a corrupted
    /// VIPER link header can turn into a rate-control frame that is
    /// legitimately consumed without a drop counter, which would poison
    /// exact conservation.
    pub corrupt_pm: u32,
    /// Whether the rail carries Slick-Packets-style alternate branches:
    /// every router gets a bypass wire (port 3) around its forward hop,
    /// and workload headers are armed so a router adjacent to a failed
    /// hop diverts in-network instead of dropping. Normalization zeroes
    /// this on non-VIPER rails — only the VIPER forwarding plane
    /// understands alternate segments.
    pub protected: bool,
    /// The workload.
    pub packets: Vec<PacketSpec>,
}

impl RailSpec {
    /// Node count this rail contributes (routers + the two hosts).
    pub fn nodes(&self) -> usize {
        self.routers + 2
    }
}

/// One scheduled fault, in rail-relative coordinates. `hop` indexes the
/// forward channels of a rail: hop 0 is source-host → first-router, hop
/// `routers` is last-router → destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpec {
    /// Take a forward channel down for a window, killing everything it
    /// carries.
    LinkFlap {
        /// Rail index.
        rail: usize,
        /// Forward-channel index within the rail.
        hop: usize,
        /// Window open, µs.
        down_us: u64,
        /// Window close, µs.
        up_us: u64,
    },
    /// Crash a router for a window; restart runs its state-loss hook.
    Crash {
        /// Rail index.
        rail: usize,
        /// Router index within the rail.
        router: usize,
        /// Crash instant, µs.
        down_us: u64,
        /// Restart instant, µs.
        up_us: u64,
    },
    /// Partition the rail: its source host plus the first half of its
    /// routers on one side, everything else on the other.
    Partition {
        /// Rail index.
        rail: usize,
        /// Window open, µs.
        start_us: u64,
        /// Window close, µs.
        end_us: u64,
    },
    /// Extra propagation jitter on a forward channel for a window.
    Jitter {
        /// Rail index.
        rail: usize,
        /// Forward-channel index within the rail.
        hop: usize,
        /// Window open, µs.
        start_us: u64,
        /// Window close, µs.
        end_us: u64,
        /// Largest extra propagation delay, µs.
        max_extra_us: u64,
    },
    /// Frame duplication window on a forward channel (corpus profile).
    Duplicate {
        /// Rail index.
        rail: usize,
        /// Forward-channel index within the rail.
        hop: usize,
        /// Window open, µs.
        start_us: u64,
        /// Window close, µs.
        end_us: u64,
        /// Per-delivery duplication probability, per-mille.
        prob_pm: u32,
    },
    /// Byte-error burst window on a forward channel of an IP rail
    /// (corpus profile).
    ErrorBurst {
        /// Rail index.
        rail: usize,
        /// Forward-channel index within the rail.
        hop: usize,
        /// Window open, µs.
        start_us: u64,
        /// Window close, µs.
        end_us: u64,
        /// Per-delivery burst probability, per-mille.
        prob_pm: u32,
        /// Largest corrupted run, bytes.
        max_run: usize,
    },
}

impl FaultSpec {
    /// The rail this fault targets.
    pub fn rail(&self) -> usize {
        match *self {
            FaultSpec::LinkFlap { rail, .. }
            | FaultSpec::Crash { rail, .. }
            | FaultSpec::Partition { rail, .. }
            | FaultSpec::Jitter { rail, .. }
            | FaultSpec::Duplicate { rail, .. }
            | FaultSpec::ErrorBurst { rail, .. } => rail,
        }
    }

    /// Dedup key: at most one fault of a kind per channel/router/rail
    /// (overlapping windows of the same kind on the same target have
    /// ill-defined pairing semantics).
    fn dedup_key(&self) -> (u8, usize, usize) {
        match *self {
            FaultSpec::LinkFlap { rail, hop, .. } => (0, rail, hop),
            FaultSpec::Crash { rail, router, .. } => (1, rail, router),
            FaultSpec::Partition { rail, .. } => (2, rail, 0),
            FaultSpec::Jitter { rail, hop, .. } => (3, rail, hop),
            FaultSpec::Duplicate { rail, hop, .. } => (4, rail, hop),
            FaultSpec::ErrorBurst { rail, hop, .. } => (5, rail, hop),
        }
    }
}

/// Which generation rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Exact-conservation tier: store-and-forward VIPER and IP rails
    /// only, no duplication, no error bursts — every injected packet is
    /// provably delivered, dropped, or still queued.
    Exact,
    /// Full corpus tier: adds cut-through VIPER, CVC rails, duplication
    /// windows and error bursts; conservation is checked set-wise.
    Corpus,
}

/// A complete, self-contained chaos run description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// The seed the scenario was generated from (also seeds the
    /// simulator RNG, so one u64 reproduces the whole run).
    pub seed: u64,
    /// Topology + workload rails.
    pub rails: Vec<RailSpec>,
    /// The fault schedule.
    pub faults: Vec<FaultSpec>,
}

/// SplitMix64: cheap seed-derived marker values.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Scenario {
    /// Generate a scenario from one seed: a random 3–12 node mixed
    /// topology, workload, and fault schedule. Deterministic — the same
    /// seed always yields the same scenario.
    pub fn from_seed(seed: u64, profile: Profile) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5157_7E57_C0DE_CAFE);
        let target_nodes = rng.gen_range(3..=12usize);
        let mut rails = Vec::new();
        let mut marker_ctr: u64 = 0;
        let mut nodes = 0usize;
        while nodes + 3 <= target_nodes && rails.len() < 3 {
            let max_routers = (target_nodes - nodes - 2).clamp(1, 4);
            let routers = rng.gen_range(1..=max_routers);
            let kind = match profile {
                Profile::Exact => match rng.gen_range(0..2u32) {
                    0 => RailKind::ViperSf,
                    _ => RailKind::Ip,
                },
                Profile::Corpus => match rng.gen_range(0..4u32) {
                    0 => RailKind::ViperSf,
                    1 => RailKind::ViperCut,
                    2 => RailKind::Ip,
                    _ => RailKind::Cvc,
                },
            };
            let drop_pm = if rng.gen_bool(0.4) {
                rng.gen_range(10..=250u32)
            } else {
                0
            };
            let corrupt_pm = if kind == RailKind::Ip && rng.gen_bool(0.4) {
                rng.gen_range(10..=200u32)
            } else {
                0
            };
            // Protect VIPER rails often: the failover invariants are only
            // exercised when chaos windows intersect armed traffic, so the
            // corpus needs plenty of protected rails to stay non-vacuous.
            let protected =
                matches!(kind, RailKind::ViperSf | RailKind::ViperCut) && rng.gen_bool(0.6);
            let n_packets = rng.gen_range(2..=8usize);
            let packets = (0..n_packets)
                .map(|_| {
                    marker_ctr += 1;
                    PacketSpec {
                        at_us: rng.gen_range(0..INJECT_END_US),
                        payload_len: rng.gen_range(16..=600usize),
                        marker: splitmix(seed ^ (marker_ctr << 16)),
                    }
                })
                .collect();
            nodes += routers + 2;
            rails.push(RailSpec {
                kind,
                routers,
                drop_pm,
                corrupt_pm,
                protected,
                packets,
            });
        }

        let n_faults = rng.gen_range(0..=5usize);
        let mut faults = Vec::new();
        for _ in 0..n_faults {
            let rail = rng.gen_range(0..rails.len());
            let r = &rails[rail];
            let a = rng.gen_range(CHAOS_START_US..CHAOS_END_US - 100);
            let b = rng.gen_range(a + 50..CHAOS_END_US);
            // On protected rails, aim chaos at hops a router can actually
            // divert around: hop 0 (host → first router) and the first
            // router have no upstream VIPER router to make the failover
            // decision, so faults there never exercise the alternate path.
            let hop = rng.gen_range(usize::from(r.protected)..=r.routers);
            let max_kind = match profile {
                Profile::Exact => 4,
                Profile::Corpus => 6,
            };
            faults.push(match rng.gen_range(0..max_kind as u32) {
                0 => FaultSpec::LinkFlap {
                    rail,
                    hop,
                    down_us: a,
                    up_us: b,
                },
                1 => FaultSpec::Crash {
                    rail,
                    router: rng.gen_range(usize::from(r.protected && r.routers > 1)..r.routers),
                    down_us: a,
                    up_us: b,
                },
                2 => FaultSpec::Partition {
                    rail,
                    start_us: a,
                    end_us: b,
                },
                3 => FaultSpec::Jitter {
                    rail,
                    hop,
                    start_us: a,
                    end_us: b,
                    max_extra_us: rng.gen_range(1..=500u64),
                },
                4 => FaultSpec::Duplicate {
                    rail,
                    hop,
                    start_us: a,
                    end_us: b,
                    prob_pm: rng.gen_range(100..=1000u32),
                },
                _ => FaultSpec::ErrorBurst {
                    rail,
                    hop,
                    start_us: a,
                    end_us: b,
                    prob_pm: rng.gen_range(100..=800u32),
                    max_run: rng.gen_range(1..=16usize),
                },
            });
        }

        let mut s = Scenario {
            seed,
            rails,
            faults,
        };
        s.normalize();
        s
    }

    /// Enforce the structural rules every runnable scenario satisfies.
    /// Applied after generation, after every shrink mutation, and after
    /// fixture parsing, so the whole pipeline works on one shape:
    ///
    /// * at least one rail, each with ≥ 1 router and ≥ 1 packet;
    /// * fault targets in range, windows ordered and closed within
    ///   [`CHAOS_START_US`], [`CHAOS_END_US`];
    /// * at most one fault of a kind per target (stable-first wins);
    /// * at most one partition overall (the engine's partition window is
    ///   global);
    /// * corruption and error bursts only on IP rails (see
    ///   [`RailSpec::corrupt_pm`]);
    /// * alternate-branch protection only on VIPER rails (see
    ///   [`RailSpec::protected`]);
    /// * marker payloads long enough to carry the marker.
    pub fn normalize(&mut self) {
        self.rails.retain(|r| !r.packets.is_empty());
        if self.rails.is_empty() {
            self.rails.push(RailSpec {
                kind: RailKind::ViperSf,
                routers: 1,
                drop_pm: 0,
                corrupt_pm: 0,
                protected: false,
                packets: vec![PacketSpec {
                    at_us: 0,
                    payload_len: 16,
                    marker: splitmix(self.seed),
                }],
            });
        }
        for r in &mut self.rails {
            r.routers = r.routers.clamp(1, 4);
            r.drop_pm = r.drop_pm.min(1000);
            if r.kind != RailKind::Ip {
                r.corrupt_pm = 0;
            } else {
                r.corrupt_pm = r.corrupt_pm.min(1000);
            }
            if !matches!(r.kind, RailKind::ViperSf | RailKind::ViperCut) {
                r.protected = false;
            }
            for p in &mut r.packets {
                p.at_us = p.at_us.min(INJECT_END_US);
                p.payload_len = p.payload_len.clamp(16, 1000);
            }
        }
        let rails = &self.rails;
        let mut seen = std::collections::BTreeSet::new();
        let mut have_partition = false;
        self.faults.retain_mut(|f| {
            let Some(rail) = rails.get(f.rail()) else {
                return false;
            };
            // Clamp windows and targets into range.
            match f {
                FaultSpec::LinkFlap {
                    hop,
                    down_us,
                    up_us,
                    ..
                }
                | FaultSpec::Jitter {
                    hop,
                    start_us: down_us,
                    end_us: up_us,
                    ..
                }
                | FaultSpec::Duplicate {
                    hop,
                    start_us: down_us,
                    end_us: up_us,
                    ..
                }
                | FaultSpec::ErrorBurst {
                    hop,
                    start_us: down_us,
                    end_us: up_us,
                    ..
                } => {
                    *hop = (*hop).min(rail.routers);
                    clamp_window(down_us, up_us);
                }
                FaultSpec::Crash {
                    router,
                    down_us,
                    up_us,
                    ..
                } => {
                    *router = (*router).min(rail.routers - 1);
                    clamp_window(down_us, up_us);
                }
                FaultSpec::Partition {
                    start_us, end_us, ..
                } => {
                    clamp_window(start_us, end_us);
                    if have_partition {
                        return false;
                    }
                    have_partition = true;
                }
            }
            if let FaultSpec::ErrorBurst {
                prob_pm, max_run, ..
            } = f
            {
                if rail.kind != RailKind::Ip {
                    return false;
                }
                *prob_pm = (*prob_pm).min(1000);
                *max_run = (*max_run).clamp(1, 64);
            }
            if let FaultSpec::Duplicate { prob_pm, .. } = f {
                *prob_pm = (*prob_pm).min(1000);
            }
            seen.insert(f.dedup_key())
        });
    }

    /// Total node count across rails.
    pub fn nodes(&self) -> usize {
        self.rails.iter().map(RailSpec::nodes).sum()
    }

    /// Chaos events the fault schedule expands to (two per fault:
    /// open + close).
    pub fn schedule_events(&self) -> usize {
        self.faults.len() * 2
    }

    /// Render as a rerunnable text fixture (see
    /// [`Scenario::from_fixture_string`]).
    pub fn to_fixture_string(&self) -> String {
        let mut out = String::from("simtest-fixture v1\n");
        out.push_str(&format!("seed {}\n", self.seed));
        for r in &self.rails {
            out.push_str(&format!(
                "rail {} routers={} drop_pm={} corrupt_pm={} protected={}\n",
                r.kind.token(),
                r.routers,
                r.drop_pm,
                r.corrupt_pm,
                u8::from(r.protected)
            ));
            for p in &r.packets {
                out.push_str(&format!(
                    "packet at={} len={} marker={:016x}\n",
                    p.at_us, p.payload_len, p.marker
                ));
            }
        }
        for f in &self.faults {
            let line = match *f {
                FaultSpec::LinkFlap {
                    rail,
                    hop,
                    down_us,
                    up_us,
                } => format!("fault linkflap rail={rail} hop={hop} down={down_us} up={up_us}"),
                FaultSpec::Crash {
                    rail,
                    router,
                    down_us,
                    up_us,
                } => format!("fault crash rail={rail} router={router} down={down_us} up={up_us}"),
                FaultSpec::Partition {
                    rail,
                    start_us,
                    end_us,
                } => format!("fault partition rail={rail} start={start_us} end={end_us}"),
                FaultSpec::Jitter {
                    rail,
                    hop,
                    start_us,
                    end_us,
                    max_extra_us,
                } => format!(
                    "fault jitter rail={rail} hop={hop} start={start_us} end={end_us} extra={max_extra_us}"
                ),
                FaultSpec::Duplicate {
                    rail,
                    hop,
                    start_us,
                    end_us,
                    prob_pm,
                } => format!(
                    "fault duplicate rail={rail} hop={hop} start={start_us} end={end_us} prob_pm={prob_pm}"
                ),
                FaultSpec::ErrorBurst {
                    rail,
                    hop,
                    start_us,
                    end_us,
                    prob_pm,
                    max_run,
                } => format!(
                    "fault errorburst rail={rail} hop={hop} start={start_us} end={end_us} prob_pm={prob_pm} run={max_run}"
                ),
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Parse a fixture produced by [`Scenario::to_fixture_string`].
    pub fn from_fixture_string(text: &str) -> Result<Scenario, String> {
        let mut lines = text.lines();
        if lines.next() != Some("simtest-fixture v1") {
            return Err("missing fixture header".into());
        }
        let mut seed = None;
        let mut rails: Vec<RailSpec> = Vec::new();
        let mut faults = Vec::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("seed") => {
                    seed = Some(
                        parts
                            .next()
                            .ok_or("seed value missing")?
                            .parse::<u64>()
                            .map_err(|e| e.to_string())?,
                    );
                }
                Some("rail") => {
                    let kind = RailKind::from_token(parts.next().ok_or("rail kind missing")?)
                        .ok_or("unknown rail kind")?;
                    let kv = parse_kv(parts)?;
                    rails.push(RailSpec {
                        kind,
                        routers: get(&kv, "routers")? as usize,
                        drop_pm: get(&kv, "drop_pm")? as u32,
                        corrupt_pm: get(&kv, "corrupt_pm")? as u32,
                        // Absent in pre-failover fixtures: default off.
                        protected: get_or(&kv, "protected", 0)? != 0,
                        packets: Vec::new(),
                    });
                }
                Some("packet") => {
                    let kv = parse_kv(parts)?;
                    let rail = rails.last_mut().ok_or("packet before any rail")?;
                    rail.packets.push(PacketSpec {
                        at_us: get(&kv, "at")?,
                        payload_len: get(&kv, "len")? as usize,
                        marker: get_hex(&kv, "marker")?,
                    });
                }
                Some("fault") => {
                    let kind = parts.next().ok_or("fault kind missing")?.to_string();
                    let kv = parse_kv(parts)?;
                    let rail = get(&kv, "rail")? as usize;
                    faults.push(match kind.as_str() {
                        "linkflap" => FaultSpec::LinkFlap {
                            rail,
                            hop: get(&kv, "hop")? as usize,
                            down_us: get(&kv, "down")?,
                            up_us: get(&kv, "up")?,
                        },
                        "crash" => FaultSpec::Crash {
                            rail,
                            router: get(&kv, "router")? as usize,
                            down_us: get(&kv, "down")?,
                            up_us: get(&kv, "up")?,
                        },
                        "partition" => FaultSpec::Partition {
                            rail,
                            start_us: get(&kv, "start")?,
                            end_us: get(&kv, "end")?,
                        },
                        "jitter" => FaultSpec::Jitter {
                            rail,
                            hop: get(&kv, "hop")? as usize,
                            start_us: get(&kv, "start")?,
                            end_us: get(&kv, "end")?,
                            max_extra_us: get(&kv, "extra")?,
                        },
                        "duplicate" => FaultSpec::Duplicate {
                            rail,
                            hop: get(&kv, "hop")? as usize,
                            start_us: get(&kv, "start")?,
                            end_us: get(&kv, "end")?,
                            prob_pm: get(&kv, "prob_pm")? as u32,
                        },
                        "errorburst" => FaultSpec::ErrorBurst {
                            rail,
                            hop: get(&kv, "hop")? as usize,
                            start_us: get(&kv, "start")?,
                            end_us: get(&kv, "end")?,
                            prob_pm: get(&kv, "prob_pm")? as u32,
                            max_run: get(&kv, "run")? as usize,
                        },
                        other => return Err(format!("unknown fault kind {other}")),
                    });
                }
                Some(other) => return Err(format!("unknown fixture line {other}")),
                None => {}
            }
        }
        let mut s = Scenario {
            seed: seed.ok_or("fixture missing seed")?,
            rails,
            faults,
        };
        s.normalize();
        Ok(s)
    }
}

fn clamp_window(a: &mut u64, b: &mut u64) {
    *a = (*a).clamp(CHAOS_START_US, CHAOS_END_US - 1);
    *b = (*b).clamp(*a + 1, CHAOS_END_US);
}

fn parse_kv<'a>(
    parts: impl Iterator<Item = &'a str>,
) -> Result<std::collections::BTreeMap<&'a str, &'a str>, String> {
    let mut kv = std::collections::BTreeMap::new();
    for p in parts {
        let (k, v) = p.split_once('=').ok_or_else(|| format!("bad token {p}"))?;
        kv.insert(k, v);
    }
    Ok(kv)
}

fn get(kv: &std::collections::BTreeMap<&str, &str>, key: &str) -> Result<u64, String> {
    kv.get(key)
        .ok_or_else(|| format!("missing key {key}"))?
        .parse()
        .map_err(|e| format!("bad {key}: {e}"))
}

/// Like [`get`], but an absent key yields `default` — for fields added
/// after fixtures already existed in the wild.
fn get_or(
    kv: &std::collections::BTreeMap<&str, &str>,
    key: &str,
    default: u64,
) -> Result<u64, String> {
    match kv.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|e| format!("bad {key}: {e}")),
    }
}

fn get_hex(kv: &std::collections::BTreeMap<&str, &str>, key: &str) -> Result<u64, String> {
    u64::from_str_radix(kv.get(key).ok_or_else(|| format!("missing key {key}"))?, 16)
        .map_err(|e| format!("bad {key}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_in_bounds() {
        for seed in 0..40u64 {
            for profile in [Profile::Exact, Profile::Corpus] {
                let a = Scenario::from_seed(seed, profile);
                let b = Scenario::from_seed(seed, profile);
                assert_eq!(a, b, "seed {seed} regenerated differently");
                assert!(
                    (3..=12).contains(&a.nodes()),
                    "nodes {} out of range",
                    a.nodes()
                );
                assert!(!a.rails.is_empty());
                if profile == Profile::Exact {
                    for r in &a.rails {
                        assert!(matches!(r.kind, RailKind::ViperSf | RailKind::Ip));
                    }
                    for f in &a.faults {
                        assert!(!matches!(
                            f,
                            FaultSpec::Duplicate { .. } | FaultSpec::ErrorBurst { .. }
                        ));
                    }
                }
            }
        }
    }

    #[test]
    fn fixture_round_trips() {
        for seed in [3u64, 17, 99] {
            let s = Scenario::from_seed(seed, Profile::Corpus);
            let text = s.to_fixture_string();
            let back = Scenario::from_fixture_string(&text).unwrap();
            assert_eq!(s, back, "fixture round-trip for seed {seed}");
        }
    }

    #[test]
    fn normalize_rejects_corruption_off_ip_rails() {
        let mut s = Scenario::from_seed(1, Profile::Exact);
        for r in &mut s.rails {
            r.corrupt_pm = 500;
        }
        s.normalize();
        for r in &s.rails {
            if r.kind != RailKind::Ip {
                assert_eq!(r.corrupt_pm, 0);
            }
        }
    }

    #[test]
    fn normalize_limits_protection_to_viper_rails() {
        let mut s = Scenario::from_seed(1, Profile::Corpus);
        for r in &mut s.rails {
            r.protected = true;
        }
        s.normalize();
        for r in &s.rails {
            assert_eq!(
                r.protected,
                matches!(r.kind, RailKind::ViperSf | RailKind::ViperCut),
                "protection survives exactly on VIPER rails"
            );
        }
    }

    #[test]
    fn pre_failover_fixture_parses_with_protection_off() {
        let text = "simtest-fixture v1\n\
                    seed 5\n\
                    rail viper-sf routers=2 drop_pm=0 corrupt_pm=0\n\
                    packet at=100 len=32 marker=00000000deadbeef\n";
        let s = Scenario::from_fixture_string(text).expect("legacy fixture parses");
        assert!(!s.rails[0].protected);
    }

    #[test]
    fn normalize_keeps_at_most_one_partition() {
        let mut s = Scenario::from_seed(1, Profile::Exact);
        s.faults = vec![
            FaultSpec::Partition {
                rail: 0,
                start_us: 300,
                end_us: 400,
            },
            FaultSpec::Partition {
                rail: 0,
                start_us: 500,
                end_us: 600,
            },
        ];
        s.normalize();
        let partitions = s
            .faults
            .iter()
            .filter(|f| matches!(f, FaultSpec::Partition { .. }))
            .count();
        assert_eq!(partitions, 1);
    }
}
