//! Turn a [`Scenario`] into a running simulation and scrape the result.
//!
//! The builder is a pure function of the spec: the same [`Scenario`]
//! always produces the same topology, workload bytes, chaos schedule,
//! and — because the engine is deterministic — the same [`RunReport`]
//! and digest. Rails are disjoint chains (`src host → r1 … rN → dst`)
//! so faults on one rail cannot leak packets into another; the
//! conservation ledger is still computed globally.

use std::collections::BTreeMap;

use sirpent_router::cvc::{CvcConfig, CvcRoute, CvcSwitch};
use sirpent_router::ip::{IpConfig, IpPortConfig, IpRouter, RouteEntry};
use sirpent_router::link::LinkFrame;
use sirpent_router::scripted::ScriptedHost;
use sirpent_router::viper::{
    CongestionConfig, PortConfig, PortKind, SwitchMode, ViperConfig, ViperRouter,
};
use sirpent_router::LogicalTable;
use sirpent_sim::stats::Summary;
use sirpent_sim::{
    ChannelId, ChaosAction, ChaosEvent, FaultConfig, FaultSchedule, NodeId, ShardedSimulator,
    SimDuration, SimTime, Simulator,
};
use sirpent_wire::cvc::Message;
use sirpent_wire::ipish::{self, Address};
use sirpent_wire::packet::PacketBuilder;
use sirpent_wire::trailer::Trailer;
use sirpent_wire::viper::{AltBranch, SegmentRepr, PORT_LOCAL};

use crate::spec::{FaultSpec, RailKind, Scenario, FLUSH_US};

/// Link rate used on every rail channel.
const RATE_BPS: u64 = 10_000_000;
/// Propagation delay on every rail channel.
const PROP: SimDuration = SimDuration(2_000);
/// End of phase 1 (workload + chaos + drain), nanoseconds.
const PHASE1_END: SimTime = SimTime(1_000_000_000);
/// End of phase 2 (reply routing), nanoseconds.
const PHASE2_END: SimTime = SimTime(2_000_000_000);
/// XOR salt deriving a reply marker from a delivered workload marker.
const REPLY_SALT: u64 = 0xA5A5_5A5A_A5A5_5A5A;

/// One instantiated rail with its engine ids.
pub struct BuiltRail {
    /// Forwarding plane of this rail.
    pub kind: RailKind,
    /// Source host.
    pub src: NodeId,
    /// Destination host (unused sink on CVC rails, which deliver at the
    /// terminal switch's local attachment).
    pub dst: NodeId,
    /// The chain's routers/switches, in forward order.
    pub routers: Vec<NodeId>,
    /// Forward-direction channels: `src→r1, r1→r2, …, rN→dst`.
    pub fwd: Vec<ChannelId>,
    /// Reverse-direction channels, same hop order.
    pub rev: Vec<ChannelId>,
    /// Bypass channels of a protected rail (both directions, in router
    /// order): router `j`'s port-3 detour around its forward hop.
    pub bypass: Vec<ChannelId>,
    /// Whether the rail carries alternate-branch protection (see
    /// [`crate::spec::RailSpec::protected`]).
    pub protected: bool,
    /// Workload markers injected on this rail.
    pub markers: Vec<u64>,
    /// The drain flush packet's marker.
    pub flush_marker: u64,
    /// Whether any duplication window targets this rail.
    pub dup_window: bool,
}

/// A scenario instantiated into a simulator (not yet run).
pub struct BuiltScenario {
    /// The engine.
    pub sim: Simulator,
    /// Per-rail ids and marker books.
    pub rails: Vec<BuiltRail>,
    /// Count of planned injections so far (workload + flush).
    pub injected: u64,
}

/// Book-keeping for one planned phase-2 reply: everything the
/// diverted-replies-route-back invariant needs to pin the reply's path
/// against the forward path the packet *actually took* (which, on a
/// protected rail under chaos, may differ from the primary route).
#[derive(Debug, Clone)]
pub struct ReplyRecord {
    /// The reply's marker (forward marker XOR the reply salt).
    pub reply_marker: u64,
    /// Arrival ports the forward packet's trailer recorded, one per
    /// router visited, in forward order. Port 4 marks a bypass landing.
    pub forward_hops: Vec<u8>,
    /// The destination-host port the forward packet arrived on: 0 is the
    /// primary chain, 5/6 are bypass landings from the last two routers.
    pub dst_port: u8,
    /// Routers on the rail's primary chain.
    pub rail_routers: usize,
    /// Whether the rail was protected.
    pub protected: bool,
}

/// Everything the invariant checks need from one finished run.
pub struct RunReport {
    /// Total packets planned (workload + flush + phase-2 replies).
    pub injected: u64,
    /// Frames recorded at host sinks plus CVC local deliveries
    /// (corrupted copies included — they arrived).
    pub delivered_frames: u64,
    /// Sum of every node's unified drop counters (hosts and routers).
    pub node_drops: u64,
    /// Sum of channel fault-injection drops.
    pub chan_drops: u64,
    /// Engine chaos-layer drops (link/router/partition kills).
    pub chaos_drops: u64,
    /// Frames still sitting in router output queues at the horizon.
    pub leftover_queued: u64,
    /// Delivery count per known marker, uncorrupted copies only.
    pub marker_hits: BTreeMap<u64, u32>,
    /// Markers of rails that had a duplication window (hits may exceed 1).
    pub dup_markers: Vec<u64>,
    /// Reply markers planned in phase 2 (VIPER rails only).
    pub replies_expected: Vec<u64>,
    /// Delivery count per reply marker at the source hosts.
    pub reply_hits: BTreeMap<u64, u32>,
    /// One record per planned reply, pinning the forward path taken.
    pub reply_book: Vec<ReplyRecord>,
    /// Arrival ports each *delivered* reply's own trailer recorded, in
    /// the reply's visit order, keyed by reply marker.
    pub reply_trailer_hops: BTreeMap<u64, Vec<u8>>,
    /// Total in-network diversions across every VIPER router.
    pub diversions: u64,
    /// Uncorrupted frames at VIPER/IP rail destinations carrying no
    /// known marker — phantom deliveries (must be zero).
    pub phantom_frames: u64,
    /// Frames that arrived at a destination host with the corruption
    /// flag set — delivered, but excluded from marker accounting.
    pub corrupted_delivered: u64,
    /// Total copies the fault injector corrupted on any channel. A
    /// frame corrupted mid-path can be forwarded onward (payload damage
    /// passes an IP header checksum) and arrive at the destination with
    /// a clean final-hop flag but a mangled marker, so the phantom
    /// check budgets against this instead of the per-delivery flag.
    pub chan_corrupted: u64,
    /// Canonical byte-exact digest of the run (determinism invariant).
    pub digest: String,
}

/// FNV-1a over a byte slice — stable, dependency-free content hash.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Bit-exact signature of a delay summary.
pub fn summary_sig(s: &Summary) -> String {
    format!(
        "{}:{:016x}:{:016x}:{:016x}:{:016x}",
        s.count(),
        s.mean().to_bits(),
        s.stddev().to_bits(),
        s.min().to_bits(),
        s.max().to_bits()
    )
}

fn us(t: u64) -> SimTime {
    SimTime(t * 1_000)
}

fn marker_payload(marker: u64, len: usize) -> Vec<u8> {
    let mut p = marker.to_le_bytes().to_vec();
    p.resize(len.max(16), 0x5C);
    p
}

fn contains_marker(bytes: &[u8], marker: u64) -> bool {
    let needle = marker.to_le_bytes();
    bytes.windows(8).any(|w| w == needle)
}

fn viper_cfg(router_id: u32, kind: RailKind, protected: bool) -> ViperConfig {
    // Protected rails add port 3 (bypass out) and port 4 (bypass in);
    // unprotected rails keep the historical two-port shape so their runs
    // stay byte-identical to pre-failover builds.
    let mut port_ids = vec![1u8, 2];
    if protected {
        port_ids.extend([3, 4]);
    }
    let ports = port_ids
        .into_iter()
        .map(|port| PortConfig {
            port,
            kind: PortKind::PointToPoint,
            mtu: 1600,
        })
        .collect();
    ViperConfig {
        router_id,
        mode: match kind {
            RailKind::ViperCut => SwitchMode::CutThrough,
            _ => SwitchMode::StoreAndForward {
                process_delay: SimDuration::from_micros(20),
            },
        },
        decision_delay: SimDuration::from_nanos(500),
        ports,
        auth: None,
        logical: LogicalTable::new(),
        queue_capacity: 8,
        congestion: CongestionConfig::default(),
    }
}

fn viper_workload_frame(hops: usize, marker: u64, len: usize) -> Vec<u8> {
    let mut b = PacketBuilder::new();
    for _ in 0..hops {
        b = b.segment(SegmentRepr {
            port: 2,
            ..Default::default()
        });
    }
    let packet = b
        .segment(SegmentRepr::minimal(PORT_LOCAL))
        .payload(marker_payload(marker, len))
        .build()
        .expect("workload packet builds");
    LinkFrame::Sirpent {
        ff_hint: 0,
        packet: packet.into(),
    }
    .to_p2p_bytes()
}

/// The armed counterpart of [`viper_workload_frame`]: every transit
/// segment carries an alternate branch out port 3, spliced into the
/// route's own tail. Router `j` (1-based) of an `n`-router chain detours
/// to router `j+2` — rejoining at recovery index `j` — except the last
/// two routers, whose bypass wires land directly on the destination
/// (recovery's final, local entry at index `n-1`).
fn viper_protected_frame(hops: usize, marker: u64, len: usize) -> Vec<u8> {
    let n = hops;
    let mut b = PacketBuilder::new();
    for j in 1..=n {
        b = b.segment(SegmentRepr {
            port: 2,
            alt: Some(AltBranch {
                port: 3,
                splice: j.min(n - 1) as u8,
            }),
            ..Default::default()
        });
    }
    let mut recovery: Vec<SegmentRepr> = (1..n)
        .map(|_| SegmentRepr {
            port: 2,
            ..Default::default()
        })
        .collect();
    recovery.push(SegmentRepr::minimal(PORT_LOCAL));
    let packet = b
        .segment(SegmentRepr::minimal(PORT_LOCAL))
        .recovery(recovery)
        .payload(marker_payload(marker, len))
        .build()
        .expect("protected workload packet builds");
    LinkFrame::Sirpent {
        ff_hint: 0,
        packet: packet.into(),
    }
    .to_p2p_bytes()
}

fn ip_rail_addrs(rail_idx: usize) -> (Address, Address) {
    let i = rail_idx as u8;
    (Address::new(10, i, 1, 1), Address::new(10, i, 2, 2))
}

fn ip_workload_frame(rail_idx: usize, marker: u64, len: usize, ident: u16) -> Vec<u8> {
    let (src, dst) = ip_rail_addrs(rail_idx);
    let payload = marker_payload(marker, len);
    let mut d = ipish::Repr {
        tos: 0,
        total_len: (ipish::HEADER_LEN + payload.len()) as u16,
        ident,
        dont_frag: false,
        more_frags: false,
        frag_offset: 0,
        ttl: ipish::DEFAULT_TTL,
        protocol: 17,
        src,
        dst,
    }
    .to_bytes();
    d.extend(payload);
    LinkFrame::Ipish(d).to_p2p_bytes()
}

fn cvc_dest(rail_idx: usize) -> u32 {
    0xC0A8_0000 + rail_idx as u32
}

fn cvc_frame(m: Message) -> Vec<u8> {
    LinkFrame::Cvc(m.to_bytes()).to_p2p_bytes()
}

/// Instantiate the scenario: nodes, channels, static fault configs,
/// workload plans (including the drain flush), and the chaos schedule.
pub fn build(spec: &Scenario) -> BuiltScenario {
    build_with_queue(spec, sirpent_sim::QueueKind::default())
}

/// [`build`], but on an explicit engine event-queue implementation —
/// the heap-vs-calendar differential suite runs the same scenario on
/// both and demands byte-identical digests.
pub fn build_with_queue(spec: &Scenario, queue: sirpent_sim::QueueKind) -> BuiltScenario {
    build_inner(spec, queue, true)
}

/// [`build`], but with the alternate branches *stripped from the
/// headers*: identical topology (bypass wires and all), workload, and
/// fault schedule, except protected rails inject plain unprotected
/// packets. The failover differential suite runs armed and stripped
/// builds of the same scenario and compares outcomes.
pub fn build_stripped(spec: &Scenario) -> BuiltScenario {
    build_inner(spec, sirpent_sim::QueueKind::default(), false)
}

fn build_inner(spec: &Scenario, queue: sirpent_sim::QueueKind, arm: bool) -> BuiltScenario {
    let mut sim = Simulator::with_queue(spec.seed, queue);
    let mut rails = Vec::new();

    for (rail_idx, r) in spec.rails.iter().enumerate() {
        let src = sim.add_node(Box::new(ScriptedHost::new()));
        let mut routers = Vec::new();
        for j in 0..r.routers {
            let id: Box<dyn sirpent_sim::Node> =
                match r.kind {
                    RailKind::ViperSf | RailKind::ViperCut => Box::new(ViperRouter::new(
                        viper_cfg((rail_idx * 16 + j + 1) as u32, r.kind, r.protected),
                    )),
                    RailKind::Ip => {
                        let subnet = Address::new(10, rail_idx as u8, 2, 0);
                        Box::new(
                            IpRouter::new(IpConfig {
                                process_delay: SimDuration::from_micros(20),
                                ports: vec![
                                    IpPortConfig {
                                        port: 1,
                                        kind: PortKind::PointToPoint,
                                        mtu: 1500,
                                    },
                                    IpPortConfig {
                                        port: 2,
                                        kind: PortKind::PointToPoint,
                                        mtu: 1500,
                                    },
                                ],
                                routes: vec![RouteEntry {
                                    prefix: subnet,
                                    prefix_len: 24,
                                    out_port: 2,
                                    next_hop_mac: None,
                                }],
                                queue_capacity: 8,
                            })
                            .expect("scenario ip config is valid"),
                        )
                    }
                    RailKind::Cvc => Box::new(CvcSwitch::new(CvcConfig {
                        process_delay: SimDuration::from_micros(5),
                        setup_delay: SimDuration::from_micros(200),
                        routes: vec![CvcRoute {
                            dest: cvc_dest(rail_idx),
                            // The terminal switch is the circuit's local
                            // attachment; earlier switches forward on.
                            out_port: if j + 1 == r.routers { 0 } else { 2 },
                        }],
                        max_circuits: 100,
                        reservable_fraction: 0.8,
                    })),
                };
            routers.push(sim.add_node(id));
        }
        let dst = sim.add_node(Box::new(ScriptedHost::new()));

        let mut fwd = Vec::new();
        let mut rev = Vec::new();
        let (f, b) = sim.p2p(src, 0, routers[0], 1, RATE_BPS, PROP);
        fwd.push(f);
        rev.push(b);
        for w in routers.windows(2) {
            let (f, b) = sim.p2p(w[0], 2, w[1], 1, RATE_BPS, PROP);
            fwd.push(f);
            rev.push(b);
        }
        let (f, b) = sim.p2p(routers[r.routers - 1], 2, dst, 0, RATE_BPS, PROP);
        fwd.push(f);
        rev.push(b);

        // Protected rails: wire router j's bypass (port 3) around its
        // forward hop — to router j+2's port 4 where one exists, else
        // straight to the destination (ports 5 and 6 for the last two
        // routers). The wiring exists whether or not the headers are
        // armed, so the stripped differential arm sees the same network.
        let mut bypass = Vec::new();
        if r.protected {
            for j in 1..=r.routers {
                let (to_node, to_port) = if j + 2 <= r.routers {
                    (routers[j + 1], 4)
                } else if j + 1 == r.routers {
                    (dst, 5)
                } else {
                    (dst, 6)
                };
                let (f, b) = sim.p2p(routers[j - 1], 3, to_node, to_port, RATE_BPS, PROP);
                bypass.push(f);
                bypass.push(b);
            }
        }

        // Static per-frame faults on forward channels only: replies in
        // phase 2 ride the reverse channels, which stay clean.
        if r.drop_pm > 0 || r.corrupt_pm > 0 {
            for &ch in &fwd {
                sim.set_faults(
                    ch,
                    FaultConfig {
                        drop_prob: r.drop_pm as f64 / 1000.0,
                        corrupt_prob: r.corrupt_pm as f64 / 1000.0,
                    },
                );
            }
        }

        let flush_marker = fnv64(
            &[
                spec.seed.to_le_bytes(),
                (rail_idx as u64).to_le_bytes(),
                u64::from_le_bytes(*b"flush!!\0").to_le_bytes(),
            ]
            .concat(),
        );

        // Plan the workload and the drain flush.
        let markers: Vec<u64> = r.packets.iter().map(|p| p.marker).collect();
        {
            let host = sim.node_mut::<ScriptedHost>(src);
            match r.kind {
                RailKind::ViperSf | RailKind::ViperCut => {
                    let frame = if r.protected && arm {
                        viper_protected_frame
                    } else {
                        viper_workload_frame
                    };
                    for p in &r.packets {
                        host.plan(us(p.at_us), 0, frame(r.routers, p.marker, p.payload_len));
                    }
                    host.plan(us(FLUSH_US), 0, frame(r.routers, flush_marker, 16));
                }
                RailKind::Ip => {
                    for (k, p) in r.packets.iter().enumerate() {
                        host.plan(
                            us(p.at_us),
                            0,
                            ip_workload_frame(rail_idx, p.marker, p.payload_len, k as u16),
                        );
                    }
                    host.plan(
                        us(FLUSH_US),
                        0,
                        ip_workload_frame(rail_idx, flush_marker, 16, 0xFFFF),
                    );
                }
                RailKind::Cvc => {
                    host.plan(
                        SimTime::ZERO,
                        0,
                        cvc_frame(Message::Setup {
                            vci: 9,
                            dest: cvc_dest(rail_idx),
                            reserve: 0,
                        }),
                    );
                    for p in &r.packets {
                        host.plan(
                            us(p.at_us.max(2_000)),
                            0,
                            cvc_frame(Message::Data {
                                vci: 9,
                                payload: marker_payload(p.marker, p.payload_len),
                            }),
                        );
                    }
                    host.plan(
                        us(FLUSH_US),
                        0,
                        cvc_frame(Message::Data {
                            vci: 9,
                            payload: marker_payload(flush_marker, 16),
                        }),
                    );
                }
            }
        }

        rails.push(BuiltRail {
            kind: r.kind,
            src,
            dst,
            routers,
            fwd,
            rev,
            bypass,
            protected: r.protected,
            markers,
            flush_marker,
            dup_window: false,
        });
    }

    // Expand the fault schedule into engine chaos events.
    let mut events = Vec::new();
    for f in &spec.faults {
        let rail = &mut rails[f.rail()];
        match *f {
            FaultSpec::LinkFlap {
                hop,
                down_us,
                up_us,
                ..
            } => {
                let ch = rail.fwd[hop];
                events.push(ChaosEvent {
                    at: us(down_us),
                    action: ChaosAction::LinkDown { ch },
                });
                events.push(ChaosEvent {
                    at: us(up_us),
                    action: ChaosAction::LinkUp { ch },
                });
            }
            FaultSpec::Crash {
                router,
                down_us,
                up_us,
                ..
            } => {
                let node = rail.routers[router];
                events.push(ChaosEvent {
                    at: us(down_us),
                    action: ChaosAction::RouterCrash { node },
                });
                events.push(ChaosEvent {
                    at: us(up_us),
                    action: ChaosAction::RouterRestart { node },
                });
            }
            FaultSpec::Partition {
                start_us, end_us, ..
            } => {
                let mut side_a = vec![rail.src];
                side_a.extend(rail.routers.iter().take(rail.routers.len().div_ceil(2)));
                events.push(ChaosEvent {
                    at: us(start_us),
                    action: ChaosAction::PartitionStart { side_a },
                });
                events.push(ChaosEvent {
                    at: us(end_us),
                    action: ChaosAction::PartitionEnd,
                });
            }
            FaultSpec::Jitter {
                hop,
                start_us,
                end_us,
                max_extra_us,
                ..
            } => {
                let ch = rail.fwd[hop];
                events.push(ChaosEvent {
                    at: us(start_us),
                    action: ChaosAction::JitterStart {
                        ch,
                        max_extra: SimDuration::from_micros(max_extra_us),
                    },
                });
                events.push(ChaosEvent {
                    at: us(end_us),
                    action: ChaosAction::JitterEnd { ch },
                });
            }
            FaultSpec::Duplicate {
                hop,
                start_us,
                end_us,
                prob_pm,
                ..
            } => {
                let ch = rail.fwd[hop];
                rail.dup_window = true;
                events.push(ChaosEvent {
                    at: us(start_us),
                    action: ChaosAction::DuplicateStart {
                        ch,
                        prob: prob_pm as f64 / 1000.0,
                    },
                });
                events.push(ChaosEvent {
                    at: us(end_us),
                    action: ChaosAction::DuplicateEnd { ch },
                });
            }
            FaultSpec::ErrorBurst {
                hop,
                start_us,
                end_us,
                prob_pm,
                max_run,
                ..
            } => {
                let ch = rail.fwd[hop];
                events.push(ChaosEvent {
                    at: us(start_us),
                    action: ChaosAction::ErrorBurstStart {
                        ch,
                        prob: prob_pm as f64 / 1000.0,
                        max_run,
                    },
                });
                events.push(ChaosEvent {
                    at: us(end_us),
                    action: ChaosAction::ErrorBurstEnd { ch },
                });
            }
        }
    }
    sim.install_schedule(FaultSchedule::new(events).expect("normalized schedule is valid"));

    let injected = spec
        .rails
        .iter()
        .map(|r| r.packets.len() as u64 + 1 + u64::from(r.kind == RailKind::Cvc))
        .sum();
    for rail in &rails {
        ScriptedHost::start(&mut sim, rail.src);
    }

    BuiltScenario {
        sim,
        rails,
        injected,
    }
}

/// Run a built scenario through both phases and scrape the report.
///
/// Phase 1 runs workload + chaos + drain to quiescence. Phase 2 (VIPER
/// rails) parses the reply trailer out of every delivered, uncorrupted
/// workload packet at the destination, builds the reverse-route reply
/// the paper promises ("the return route is accumulated in the packet
/// trailer"), and sends it back — across router state that chaos may
/// have crashed away, which is exactly the point: source routes survive
/// router restarts.
pub fn run(built: BuiltScenario) -> RunReport {
    run_traced(built).0
}

/// [`run`], but also hand back the engine's flight recorder (when one
/// was enabled on the built scenario before running) so the trace
/// cross-check can reconcile reconstructed per-packet traces against
/// the scraped conservation ledger.
pub fn run_traced(
    mut built: BuiltScenario,
) -> (RunReport, Option<sirpent_telemetry::FlightRecorder>) {
    built.sim.run_until(PHASE1_END);
    finish(built)
}

/// Run phase 1 on a spatially sharded engine, merge the shards back to
/// one serial simulator, then finish phase 2 and scrape as usual.
///
/// `shards <= 1` wraps the serial engine untouched, so its report —
/// digest included — is byte-identical to [`execute`]. For a fixed
/// shard count the report is also independent of `threads`: worker
/// threads only execute the (already deterministic) per-shard work.
pub fn execute_sharded(spec: &Scenario, shards: usize, threads: usize) -> RunReport {
    let mut built = build(spec);
    let serial = std::mem::replace(&mut built.sim, Simulator::new(0));
    let mut sharded = ShardedSimulator::split(serial, shards);
    sharded.run_until(PHASE1_END, threads);
    built.sim = sharded.into_serial();
    finish(built).0
}

/// Phase 2 + scrape, shared by the serial and sharded entry points:
/// phase 1 has run to [`PHASE1_END`] by whatever engine arrangement,
/// and everything from reply planning onward is serial.
fn finish(mut built: BuiltScenario) -> (RunReport, Option<sirpent_telemetry::FlightRecorder>) {
    // Phase 2: reverse-route replies from delivered trailers.
    let mut reply_book: Vec<ReplyRecord> = Vec::new();
    for rail in &built.rails {
        if !matches!(rail.kind, RailKind::ViperSf | RailKind::ViperCut) {
            continue;
        }
        let mut reply_plans = Vec::new();
        {
            let dst = built.sim.node::<ScriptedHost>(rail.dst);
            for rec in dst.received.iter().filter(|r| !r.corrupted) {
                let Ok(LinkFrame::Sirpent { packet, .. }) = LinkFrame::from_p2p_bytes(&rec.bytes)
                else {
                    continue;
                };
                let Some(&marker) = rail.markers.iter().find(|&&m| contains_marker(&packet, m))
                else {
                    continue;
                };
                let reply_marker = marker ^ REPLY_SALT;
                if reply_book.iter().any(|b| b.reply_marker == reply_marker) {
                    continue; // duplicated delivery: one reply is enough
                }
                let trailer = Trailer::parse(&packet).expect("delivered packet has a trailer");
                let mut b = PacketBuilder::new();
                for seg in trailer.return_route() {
                    b = b.segment(seg);
                }
                let reply = b
                    .segment(SegmentRepr::minimal(PORT_LOCAL))
                    .payload(marker_payload(reply_marker, 16))
                    .build()
                    .expect("reply packet builds");
                reply_book.push(ReplyRecord {
                    reply_marker,
                    forward_hops: trailer.return_hops.iter().map(|s| s.port).collect(),
                    dst_port: rec.port,
                    rail_routers: rail.routers.len(),
                    protected: rail.protected,
                });
                // The reply leaves on the port the forward packet
                // arrived on: a bypass landing must be answered over the
                // bypass wire, or the trailer route starts at the wrong
                // router.
                reply_plans.push((
                    rec.port,
                    LinkFrame::Sirpent {
                        ff_hint: 0,
                        packet: reply.into(),
                    }
                    .to_p2p_bytes(),
                ));
            }
        }
        if !reply_plans.is_empty() {
            let now = built.sim.now();
            let host = built.sim.node_mut::<ScriptedHost>(rail.dst);
            for (i, (port, bytes)) in reply_plans.into_iter().enumerate() {
                host.plan(
                    now + SimDuration::from_micros(100 * (i as u64 + 1)),
                    port,
                    bytes,
                );
                built.injected += 1;
            }
            ScriptedHost::start(&mut built.sim, rail.dst);
        }
    }
    built.sim.run_until(PHASE2_END);

    let flight = built.sim.flight().cloned();
    (scrape(built, reply_book), flight)
}

fn scrape(built: BuiltScenario, reply_book: Vec<ReplyRecord>) -> RunReport {
    let sim = &built.sim;
    let replies_expected: Vec<u64> = reply_book.iter().map(|b| b.reply_marker).collect();
    let node_drops: u64 = sim.scrape_all().iter().map(|(_, s)| s.total_drops()).sum();
    let chaos_drops = sim.chaos_stats().total_drops();

    let mut chan_drops = 0u64;
    let mut chan_corrupted = 0u64;
    let mut delivered_frames = 0u64;
    let mut leftover_queued = 0u64;
    let mut marker_hits: BTreeMap<u64, u32> = BTreeMap::new();
    let mut reply_hits: BTreeMap<u64, u32> = BTreeMap::new();
    let mut reply_trailer_hops: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut dup_markers = Vec::new();
    let mut phantom_frames = 0u64;
    let mut corrupted_delivered = 0u64;
    let mut diversions = 0u64;
    let mut digest = String::new();
    digest.push_str(&format!("seed={}\n", fnv64(&built.injected.to_le_bytes())));
    digest.push_str(&format!("events={}\n", sim.events_dispatched()));

    for (rail_idx, rail) in built.rails.iter().enumerate() {
        for &ch in rail.fwd.iter().chain(&rail.rev).chain(&rail.bypass) {
            let s = sim.channel_stats(ch);
            chan_drops += s.drops;
            chan_corrupted += s.corrupted;
            digest.push_str(&format!(
                "chan r{rail_idx} frames={} bytes={} busy={} drops={} corrupt={} aborts={} dup={}\n",
                s.frames,
                s.bytes,
                s.busy.as_nanos(),
                s.drops,
                s.corrupted,
                s.aborts,
                s.duplicated,
            ));
        }
        if rail.dup_window {
            dup_markers.extend(&rail.markers);
            dup_markers.push(rail.flush_marker);
        }

        for &node in &rail.routers {
            leftover_queued += match rail.kind {
                RailKind::ViperSf | RailKind::ViperCut => {
                    sim.node::<ViperRouter>(node).queued_frames()
                }
                RailKind::Ip => sim.node::<IpRouter>(node).queued_frames(),
                RailKind::Cvc => sim.node::<CvcSwitch>(node).queued_frames(),
            };
        }

        // Failover counters on VIPER rails: scraped for the differential
        // suite and pinned into the digest so the determinism invariant
        // covers diversion decisions too.
        if matches!(rail.kind, RailKind::ViperSf | RailKind::ViperCut) {
            let (mut div, mut noalt, mut altdown) = (0u64, 0u64, 0u64);
            for &node in &rail.routers {
                let f = sim.node::<ViperRouter>(node).stats.failover;
                div += f.diversions;
                noalt += f.no_alternate;
                altdown += f.alternate_down;
            }
            diversions += div;
            digest.push_str(&format!(
                "failover r{rail_idx} div={div} noalt={noalt} altdown={altdown}\n"
            ));
        }

        // Deliveries: host sinks for VIPER/IP, the terminal switch's
        // local attachment for CVC.
        let mut known = rail.markers.clone();
        known.push(rail.flush_marker);
        match rail.kind {
            RailKind::ViperSf | RailKind::ViperCut | RailKind::Ip => {
                let dst = sim.node::<ScriptedHost>(rail.dst);
                delivered_frames += dst.received.len() as u64;
                for rec in &dst.received {
                    if rec.corrupted {
                        corrupted_delivered += 1;
                        continue;
                    }
                    match known.iter().find(|&&m| contains_marker(&rec.bytes, m)) {
                        Some(&m) => *marker_hits.entry(m).or_insert(0) += 1,
                        None => phantom_frames += 1,
                    }
                }
            }
            RailKind::Cvc => {
                let term = sim.node::<CvcSwitch>(*rail.routers.last().expect("rail has routers"));
                delivered_frames += term.local_delivered.len() as u64;
                for (_, _, payload) in &term.local_delivered {
                    match known.iter().find(|&&m| contains_marker(payload, m)) {
                        Some(&m) => *marker_hits.entry(m).or_insert(0) += 1,
                        None => phantom_frames += 1,
                    }
                }
                let dst = sim.node::<ScriptedHost>(rail.dst);
                delivered_frames += dst.received.len() as u64;
            }
        }

        // Replies land at the rail's source host.
        let src = sim.node::<ScriptedHost>(rail.src);
        delivered_frames += src.received.len() as u64;
        for rec in src.received.iter().filter(|r| !r.corrupted) {
            if let Some(&m) = replies_expected
                .iter()
                .find(|&&m| contains_marker(&rec.bytes, m))
            {
                *reply_hits.entry(m).or_insert(0) += 1;
                // The reply's own trailer names the path it took back —
                // the diverted-replies invariant checks it mirrors the
                // forward path.
                if let Ok(LinkFrame::Sirpent { packet, .. }) = LinkFrame::from_p2p_bytes(&rec.bytes)
                {
                    if let Ok(t) = Trailer::parse(&packet) {
                        reply_trailer_hops
                            .entry(m)
                            .or_insert_with(|| t.return_hops.iter().map(|s| s.port).collect());
                    }
                }
            }
        }

        for (label, host) in [("src", rail.src), ("dst", rail.dst)] {
            let h = sim.node::<ScriptedHost>(host);
            let rx: Vec<String> = h
                .received
                .iter()
                .map(|r| {
                    format!(
                        "({},{},{},{:016x},{})",
                        r.last_bit.as_nanos(),
                        r.port,
                        r.bytes.len(),
                        fnv64(&r.bytes),
                        u8::from(r.corrupted),
                    )
                })
                .collect();
            digest.push_str(&format!(
                "host r{rail_idx}/{label} aborted={} filtered={} rx=[{}] txdone={}\n",
                h.aborted,
                h.filtered,
                rx.join(";"),
                h.tx_done.len(),
            ));
        }
    }

    // Uniform per-node scrape lines, node-id order.
    for (id, s) in sim.scrape_all() {
        let mut drops: Vec<String> = s
            .drops()
            .iter()
            .filter(|&(_, v)| v > 0)
            .map(|(k, v)| format!("{k:?}={v}"))
            .collect();
        drops.sort();
        digest.push_str(&format!(
            "node {} fwd={} local={} maxq={} drops[{}] delay={}\n",
            id.0,
            s.forwarded(),
            s.local(),
            s.max_queue(),
            drops.join(","),
            summary_sig(s.forward_delay()),
        ));
    }
    {
        let mut drops: Vec<String> = sim
            .chaos_stats()
            .drops
            .iter()
            .filter(|&(_, v)| v > 0)
            .map(|(k, v)| format!("{k:?}={v}"))
            .collect();
        drops.sort();
        digest.push_str(&format!("chaos drops[{}]\n", drops.join(",")));
    }

    RunReport {
        injected: built.injected,
        delivered_frames,
        node_drops,
        chan_drops,
        chaos_drops,
        leftover_queued,
        marker_hits,
        dup_markers,
        replies_expected,
        reply_hits,
        reply_book,
        reply_trailer_hops,
        diversions,
        phantom_frames,
        corrupted_delivered,
        chan_corrupted,
        digest,
    }
}

/// Build and run a scenario in one step.
pub fn execute(spec: &Scenario) -> RunReport {
    run(build(spec))
}

/// [`execute`], but on an explicit engine event-queue implementation.
pub fn execute_with_queue(spec: &Scenario, queue: sirpent_sim::QueueKind) -> RunReport {
    run(build_with_queue(spec, queue))
}

/// [`execute`], but with alternate branches stripped from the headers
/// (see [`build_stripped`]) — the control arm of the failover
/// differential suite.
pub fn execute_stripped(spec: &Scenario) -> RunReport {
    run(build_stripped(spec))
}

/// An *outcome* digest: what was delivered, answered, and diverted —
/// deliberately free of byte counts, channel timings, and event totals,
/// which legitimately differ between an armed run (longer headers,
/// bypass traffic) and its stripped control. With an empty fault
/// schedule the two arms must produce byte-identical outcome digests;
/// under chaos the armed arm may only deliver *more*.
pub fn outcome_digest(r: &RunReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "injected={} delivered={} diversions={} phantoms={}\n",
        r.injected, r.delivered_frames, r.diversions, r.phantom_frames
    ));
    for (m, n) in &r.marker_hits {
        out.push_str(&format!("marker {m:016x} hits={n}\n"));
    }
    let mut replies: Vec<u64> = r.replies_expected.clone();
    replies.sort_unstable();
    for m in replies {
        out.push_str(&format!(
            "reply {m:016x} hits={}\n",
            r.reply_hits.get(&m).copied().unwrap_or(0)
        ));
    }
    out
}
