//! Scenario minimization: a ddmin-style greedy shrinker.
//!
//! Given a failing scenario and the failure predicate, [`shrink`]
//! repeatedly tries structural reductions — drop fault chunks, remove
//! whole rails, thin workloads, shorten chains, zero fault
//! probabilities — keeping a mutation only if the predicate still
//! fails, until a fixpoint or the attempt budget runs out. The result
//! is written out as a rerunnable text fixture with [`write_fixture`].
//!
//! The shrinker never invents state: every candidate is `normalize`d,
//! so the minimized scenario is exactly as runnable as the original.

use crate::spec::{FaultSpec, Scenario};

/// Upper bound on predicate evaluations per [`shrink`] call. Each
/// evaluation replays the scenario twice (determinism check), so this
/// caps shrink time at roughly 200 short runs.
pub const SHRINK_BUDGET: usize = 200;

fn set_rail(f: &mut FaultSpec, new: usize) {
    match f {
        FaultSpec::LinkFlap { rail, .. }
        | FaultSpec::Crash { rail, .. }
        | FaultSpec::Partition { rail, .. }
        | FaultSpec::Jitter { rail, .. }
        | FaultSpec::Duplicate { rail, .. }
        | FaultSpec::ErrorBurst { rail, .. } => *rail = new,
    }
}

fn remove_rail(s: &mut Scenario, idx: usize) {
    s.rails.remove(idx);
    s.faults.retain(|f| f.rail() != idx);
    for f in &mut s.faults {
        let r = f.rail();
        if r > idx {
            set_rail(f, r - 1);
        }
    }
}

/// Try one mutation against the predicate. Returns the accepted smaller
/// scenario, or `None` when the mutation is inapplicable, a no-op, out
/// of budget, or no longer failing.
fn attempt(
    best: &Scenario,
    budget: &mut usize,
    failing: &dyn Fn(&Scenario) -> Option<String>,
    mutate: impl FnOnce(&mut Scenario) -> bool,
) -> Option<Scenario> {
    if *budget == 0 {
        return None;
    }
    let mut cand = best.clone();
    if !mutate(&mut cand) {
        return None;
    }
    cand.normalize();
    if cand == *best {
        return None;
    }
    *budget -= 1;
    if failing(&cand).is_some() {
        Some(cand)
    } else {
        None
    }
}

/// Minimize a failing scenario. `failing` must return `Some(reason)`
/// for the input (and for any candidate that still reproduces the
/// failure); the returned scenario is the smallest found that still
/// fails it.
pub fn shrink(start: &Scenario, failing: &dyn Fn(&Scenario) -> Option<String>) -> Scenario {
    let mut best = start.clone();
    best.normalize();
    let mut budget = SHRINK_BUDGET;

    loop {
        let mut improved = false;

        // 1. Drop fault chunks, coarse to fine.
        let mut sz = best.faults.len().max(1);
        loop {
            let mut i = 0;
            while i < best.faults.len() {
                match attempt(&best, &mut budget, failing, |s| {
                    let end = (i + sz).min(s.faults.len());
                    if i >= end {
                        return false;
                    }
                    s.faults.drain(i..end);
                    true
                }) {
                    Some(c) => {
                        best = c;
                        improved = true;
                    }
                    None => i += sz,
                }
            }
            if sz == 1 {
                break;
            }
            sz /= 2;
        }

        // 2. Remove whole rails (keep at least one).
        let mut i = 0;
        while best.rails.len() > 1 && i < best.rails.len() {
            match attempt(&best, &mut budget, failing, |s| {
                remove_rail(s, i);
                true
            }) {
                Some(c) => {
                    best = c;
                    improved = true;
                }
                None => i += 1,
            }
        }

        // 3. Thin workloads: try collapsing to one packet, then remove
        // packets one at a time (a rail keeps at least one so it is not
        // deleted out from under the faults that target it).
        for ri in 0..best.rails.len() {
            if best.rails[ri].packets.len() > 1 {
                if let Some(c) = attempt(&best, &mut budget, failing, |s| {
                    s.rails[ri].packets.truncate(1);
                    true
                }) {
                    best = c;
                    improved = true;
                }
            }
            let mut pi = 0;
            while best.rails[ri].packets.len() > 1 && pi < best.rails[ri].packets.len() {
                match attempt(&best, &mut budget, failing, |s| {
                    if s.rails[ri].packets.len() > 1 {
                        s.rails[ri].packets.remove(pi);
                        true
                    } else {
                        false
                    }
                }) {
                    Some(c) => {
                        best = c;
                        improved = true;
                    }
                    None => pi += 1,
                }
            }
        }

        // 4. Shorten chains.
        for ri in 0..best.rails.len() {
            while best.rails[ri].routers > 1 {
                match attempt(&best, &mut budget, failing, |s| {
                    s.rails[ri].routers -= 1;
                    true
                }) {
                    Some(c) => {
                        best = c;
                        improved = true;
                    }
                    None => break,
                }
            }
        }

        // 5. Quiet the static fault injector.
        for ri in 0..best.rails.len() {
            if let Some(c) = attempt(&best, &mut budget, failing, |s| {
                if s.rails[ri].drop_pm == 0 && s.rails[ri].corrupt_pm == 0 {
                    return false;
                }
                s.rails[ri].drop_pm = 0;
                s.rails[ri].corrupt_pm = 0;
                true
            }) {
                best = c;
                improved = true;
            }
        }

        if !improved || budget == 0 {
            break;
        }
    }
    best
}

/// Write a scenario as a rerunnable fixture under `target/simtest/` and
/// return the path. The soak suite calls this for the shrunk reproducer
/// of any failing seed so CI can upload it as an artifact.
pub fn write_fixture(spec: &Scenario, name: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/simtest");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    std::fs::write(&path, spec.to_fixture_string())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Profile;

    /// A planted failure: the "bug" triggers whenever any link-flap is
    /// scheduled, regardless of everything else in the scenario.
    fn planted(s: &Scenario) -> Option<String> {
        s.faults
            .iter()
            .any(|f| matches!(f, FaultSpec::LinkFlap { .. }))
            .then(|| "planted: link-flap present".to_string())
    }

    /// Find a generated corpus scenario that trips the planted bug and
    /// check the shrinker strips it to the bone: one short rail, one
    /// fault, one packet.
    #[test]
    fn shrinker_minimizes_planted_bug() {
        let mut shrunk_any = false;
        for seed in 0..64u64 {
            let s = Scenario::from_seed(seed, Profile::Corpus);
            if planted(&s).is_none() {
                continue;
            }
            let small = shrink(&s, &planted);
            assert!(
                planted(&small).is_some(),
                "seed {seed}: shrink lost the failure"
            );
            assert!(
                small.nodes() <= 4,
                "seed {seed}: shrunk to {} nodes, want <= 4",
                small.nodes()
            );
            assert!(
                small.schedule_events() <= 8,
                "seed {seed}: shrunk to {} schedule events, want <= 8",
                small.schedule_events()
            );
            assert_eq!(small.faults.len(), 1, "seed {seed}: exactly the culprit");
            assert_eq!(small.rails[0].packets.len(), 1, "seed {seed}");
            shrunk_any = true;
        }
        assert!(shrunk_any, "no corpus seed in 0..64 scheduled a link-flap");
    }

    #[test]
    fn fixture_write_round_trips() {
        let s = Scenario::from_seed(7, Profile::Corpus);
        let path = write_fixture(&s, "selftest_seed7.txt").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let back = Scenario::from_fixture_string(&text).unwrap();
        assert_eq!(s, back);
    }
}
