//! Parameterized large-topology generators for scale tests (ring, grid,
//! seeded random-regular) up to 10 000 nodes — the workloads behind the
//! sharded-engine digest invariants and BENCH-7.
//!
//! The [`spec`](crate::spec) module's scenario generator deliberately
//! caps rails at 12 nodes so chaos invariants stay tractable; scale
//! runs need orders of magnitude more. A [`TopoSpec`] describes a
//! relay mesh driven by [`RelayNode`]s — hot-potato forwarding with a
//! TTL, **zero RNG draws anywhere** — so a run's digest depends only on
//! the topology and workload, not on shard count or thread count: the
//! same spec produces byte-identical digests serial, sharded 2/4/8
//! ways, on any number of worker threads.
//!
//! Two design points keep digests shard-invariant (DESIGN.md §11):
//! * every forward is re-scheduled through a content-hashed timer delay,
//!   so two frames virtually never transit the same node at the same
//!   nanosecond (the only place engine tie-break order could leak);
//! * per-node accumulators fold delivery records commutatively, so the
//!   residual tie order — if one ever occurs — still cannot show.

use std::any::Any;

use sirpent_sim::{Context, Event, Node, ShardedSimulator, SimDuration, SimTime, Simulator};

use crate::scenario::fnv64;

/// Timer keys at or above this value address pending forwards; keys
/// below it index a source's planned injections.
const PENDING_BASE: u64 = 1 << 32;

/// SplitMix64 finalizer — used for seed-derived structure (offsets,
/// send times), never for run-time randomness.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Topology family of a [`TopoSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoShape {
    /// A bidirectional cycle: degree 2 everywhere.
    Ring,
    /// A rectangular mesh with the given column count (the last row may
    /// be partial); degree ≤ 4.
    Grid {
        /// Columns per row.
        cols: usize,
    },
    /// Seeded random-regular graph built from `degree/2` distinct
    /// circulant offsets drawn from the spec seed; degree is even.
    Random {
        /// Even target degree (2..=8).
        degree: usize,
    },
}

/// A deterministic large-topology workload: shape + node count +
/// sources that each inject TTL-limited relay frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoSpec {
    /// Master seed: derives offsets, send times, and markers.
    pub seed: u64,
    /// Topology family.
    pub shape: TopoShape,
    /// Node count (3..=10_000 after [`TopoSpec::normalize`]).
    pub nodes: usize,
    /// How many nodes act as frame sources.
    pub sources: usize,
    /// Frames injected per source.
    pub frames_per_source: usize,
    /// Hop budget per frame; each relay decrements, delivery at zero.
    pub ttl: u8,
    /// Frame payload length in bytes (TTL byte + 8-byte marker + pad).
    pub payload_len: usize,
    /// Propagation delay of every link, nanoseconds.
    pub prop_ns: u64,
    /// Data rate of every link, bits per second.
    pub rate_bps: u64,
    /// Injection window: all source sends land in `[1us, horizon/2]`,
    /// and runs execute until `horizon_ns`.
    pub horizon_ns: u64,
}

/// What one topo run produced: enough to compare runs for byte
/// equality and to rate engine throughput.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoReport {
    /// Canonical per-node digest of the run (see [`digest`]).
    pub digest: String,
    /// Total events the engine dispatched.
    pub events: u64,
}

impl TopoSpec {
    /// Derive a modest test-sized spec from a seed (16..=96 nodes, all
    /// three shapes exercised). Larger runs build a spec by hand.
    pub fn from_seed(seed: u64) -> TopoSpec {
        let r = |salt: u64| splitmix64(seed ^ salt);
        let shape = match r(1) % 3 {
            0 => TopoShape::Ring,
            1 => TopoShape::Grid {
                cols: 3 + (r(2) % 6) as usize,
            },
            _ => TopoShape::Random {
                degree: 2 + 2 * (r(3) % 3) as usize,
            },
        };
        let mut spec = TopoSpec {
            seed,
            shape,
            nodes: 16 + (r(4) % 81) as usize,
            sources: 2 + (r(5) % 8) as usize,
            frames_per_source: 1 + (r(6) % 4) as usize,
            ttl: 4 + (r(7) % 13) as u8,
            payload_len: 16 + 8 * (r(8) % 24) as usize,
            prop_ns: 1_000 + 500 * (r(9) % 5),
            rate_bps: 10_000_000,
            horizon_ns: 400_000_000,
        };
        spec.normalize();
        spec
    }

    /// Clamp every field into its runnable range. Idempotent; both the
    /// seed generator and the fixture parser funnel through here.
    pub fn normalize(&mut self) {
        self.nodes = self.nodes.clamp(3, 10_000);
        match &mut self.shape {
            TopoShape::Ring => {}
            TopoShape::Grid { cols } => {
                *cols = (*cols).clamp(2, self.nodes);
            }
            TopoShape::Random { degree } => {
                // Even, at least 2, and low enough that distinct
                // circulant offsets exist (and ports fit in u8).
                *degree = (*degree & !1).clamp(2, 8.min((self.nodes - 1) & !1));
            }
        }
        self.sources = self.sources.clamp(1, self.nodes);
        self.frames_per_source = self.frames_per_source.clamp(1, 64);
        self.ttl = self.ttl.clamp(1, 32);
        self.payload_len = self.payload_len.clamp(9, 1_500);
        self.prop_ns = self.prop_ns.clamp(500, 1_000_000);
        self.rate_bps = self.rate_bps.clamp(1_000_000, 10_000_000_000);
        self.horizon_ns = self.horizon_ns.clamp(1_000_000, 10_000_000_000);
    }

    /// Serialize as a normalized, line-oriented text fixture.
    pub fn to_fixture_string(&self) -> String {
        let shape = match self.shape {
            TopoShape::Ring => "ring".to_string(),
            TopoShape::Grid { cols } => format!("grid {cols}"),
            TopoShape::Random { degree } => format!("random {degree}"),
        };
        format!(
            "topo-fixture v1\n\
             seed {}\n\
             shape {}\n\
             nodes {}\n\
             sources {}\n\
             frames {}\n\
             ttl {}\n\
             payload {}\n\
             prop_ns {}\n\
             rate_bps {}\n\
             horizon_ns {}\n",
            self.seed,
            shape,
            self.nodes,
            self.sources,
            self.frames_per_source,
            self.ttl,
            self.payload_len,
            self.prop_ns,
            self.rate_bps,
            self.horizon_ns,
        )
    }

    /// Parse a fixture produced by [`TopoSpec::to_fixture_string`]. The
    /// result is normalized, so round-tripping is exact for any spec
    /// that has itself been normalized.
    pub fn from_fixture_string(text: &str) -> Result<TopoSpec, String> {
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some("topo-fixture v1") {
            return Err("missing 'topo-fixture v1' header".into());
        }
        let mut spec = TopoSpec {
            seed: 0,
            shape: TopoShape::Ring,
            nodes: 3,
            sources: 1,
            frames_per_source: 1,
            ttl: 1,
            payload_len: 16,
            prop_ns: 2_000,
            rate_bps: 10_000_000,
            horizon_ns: 400_000_000,
        };
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut it = line.split_whitespace();
            let key = it.next().unwrap_or("");
            let parse = |v: Option<&str>, what: &str| -> Result<u64, String> {
                v.ok_or_else(|| format!("{what}: missing value"))?
                    .parse::<u64>()
                    .map_err(|e| format!("{what}: {e}"))
            };
            match key {
                "seed" => spec.seed = parse(it.next(), "seed")?,
                "shape" => match it.next() {
                    Some("ring") => spec.shape = TopoShape::Ring,
                    Some("grid") => {
                        spec.shape = TopoShape::Grid {
                            cols: parse(it.next(), "grid cols")? as usize,
                        }
                    }
                    Some("random") => {
                        spec.shape = TopoShape::Random {
                            degree: parse(it.next(), "random degree")? as usize,
                        }
                    }
                    other => return Err(format!("unknown shape {other:?}")),
                },
                "nodes" => spec.nodes = parse(it.next(), "nodes")? as usize,
                "sources" => spec.sources = parse(it.next(), "sources")? as usize,
                "frames" => spec.frames_per_source = parse(it.next(), "frames")? as usize,
                "ttl" => spec.ttl = parse(it.next(), "ttl")?.min(255) as u8,
                "payload" => spec.payload_len = parse(it.next(), "payload")? as usize,
                "prop_ns" => spec.prop_ns = parse(it.next(), "prop_ns")?,
                "rate_bps" => spec.rate_bps = parse(it.next(), "rate_bps")?,
                "horizon_ns" => spec.horizon_ns = parse(it.next(), "horizon_ns")?,
                other => return Err(format!("unknown key {other:?}")),
            }
        }
        spec.normalize();
        Ok(spec)
    }

    /// Undirected adjacency lists for this spec, deterministically
    /// derived; a node's port number for a link is the link's index in
    /// its list (degree stays ≤ 8, so ports fit comfortably in `u8`).
    pub fn adjacency(&self) -> Vec<Vec<usize>> {
        let n = self.nodes;
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        let connect = |adj: &mut Vec<Vec<usize>>, a: usize, b: usize| {
            if a == b || adj[a].contains(&b) {
                return;
            }
            adj[a].push(b);
            adj[b].push(a);
        };
        match self.shape {
            TopoShape::Ring => {
                for i in 0..n {
                    connect(&mut adj, i, (i + 1) % n);
                }
            }
            TopoShape::Grid { cols } => {
                for i in 0..n {
                    if (i + 1) % cols != 0 && i + 1 < n {
                        connect(&mut adj, i, i + 1);
                    }
                    if i + cols < n {
                        connect(&mut adj, i, i + cols);
                    }
                }
            }
            TopoShape::Random { degree } => {
                // `degree/2` distinct circulant offsets from the seed:
                // regular, connected for offset 1-free graphs often
                // enough, and fully reproducible. Collisions probe to
                // the next unused offset.
                let half = n / 2;
                let mut offsets: Vec<u64> = Vec::new();
                let mut j = 0u64;
                while offsets.len() < degree / 2 {
                    let mut off = 1 + splitmix64(self.seed ^ (0xC1AC ^ j)) % half.max(1) as u64;
                    while offsets.contains(&off) {
                        off = 1 + (off % half.max(1) as u64);
                    }
                    offsets.push(off);
                    j += 1;
                }
                for off in offsets {
                    for i in 0..n {
                        connect(&mut adj, i, (i + off as usize) % n);
                    }
                }
            }
        }
        adj
    }

    /// The planned `(send time, source node, marker)` injections.
    pub fn injections(&self) -> Vec<(SimTime, usize, u64)> {
        let stride = (self.nodes / self.sources).max(1);
        let window = (self.horizon_ns / 2).max(1);
        let mut plan = Vec::with_capacity(self.sources * self.frames_per_source);
        for s in 0..self.sources {
            let node = (s * stride) % self.nodes;
            for f in 0..self.frames_per_source {
                let salt = ((s as u64) << 32) | f as u64;
                let at = 1_000 + splitmix64(self.seed ^ salt) % window;
                let marker = splitmix64(self.seed ^ salt ^ 0x00AD_BEEF);
                plan.push((SimTime(at), node, marker));
            }
        }
        plan
    }
}

/// A TTL-relay node: planned timer keys inject fresh frames; received
/// frames are folded into commutative accumulators and, while hops
/// remain, re-emitted on a content-hashed port after a content-hashed
/// delay (see the module docs for why the delay matters).
#[derive(Default)]
pub struct RelayNode {
    /// Number of attached transmit ports.
    degree: u8,
    /// Frame payload length this node emits.
    payload_len: usize,
    /// Marker per planned injection, indexed by kick key.
    plans: Vec<u64>,
    /// TTL stamped on fresh injections.
    ttl: u8,
    /// Forwards awaiting their hashed delay: `(timer key, port, bytes)`.
    pending: Vec<(u64, u8, Vec<u8>)>,
    /// Next pending timer key (offset under [`PENDING_BASE`]).
    next_pending: u64,
    /// Frames transmitted (fresh + forwarded).
    pub tx: u64,
    /// Transmissions the engine refused (should stay zero here).
    pub tx_fail: u64,
    /// Frames received.
    pub rx: u64,
    /// Payload bytes received.
    pub rx_bytes: u64,
    /// Frames whose TTL expired here (final deliveries).
    pub delivered: u64,
    /// Commutative fold of per-delivery record hashes.
    pub acc: u64,
}

impl RelayNode {
    /// Port a frame with `marker` leaves a node on, at `ttl` hops left.
    fn route_port(&self, me: u64, marker: u64, ttl: u8) -> u8 {
        if self.degree == 0 {
            return 0;
        }
        (splitmix64(marker ^ me.rotate_left(17) ^ (ttl as u64) << 56) % self.degree as u64) as u8
    }

    fn frame_bytes(&self, ttl: u8, marker: u64) -> Vec<u8> {
        let mut v = vec![0u8; self.payload_len];
        v[0] = ttl;
        v[1..9].copy_from_slice(&marker.to_le_bytes());
        // Deterministic pad so corruption anywhere would show in `acc`.
        for (i, b) in v.iter_mut().enumerate().skip(9) {
            *b = (marker >> (8 * (i % 8))) as u8 ^ i as u8;
        }
        v
    }

    fn transmit(&mut self, ctx: &mut Context<'_>, port: u8, bytes: Vec<u8>) {
        match ctx.transmit(port, bytes) {
            Ok(_) => self.tx += 1,
            Err(_) => self.tx_fail += 1,
        }
    }
}

impl Node for RelayNode {
    fn on_event(&mut self, ctx: &mut Context<'_>, ev: Event) {
        match ev {
            Event::Timer { key } if key >= PENDING_BASE => {
                let Some(i) = self.pending.iter().position(|&(k, _, _)| k == key) else {
                    return;
                };
                let (_, port, bytes) = self.pending.remove(i);
                self.transmit(ctx, port, bytes);
            }
            Event::Timer { key } => {
                let Some(&marker) = self.plans.get(key as usize) else {
                    return;
                };
                let (ttl, me) = (self.ttl, ctx.me().0 as u64);
                let port = self.route_port(me, marker, ttl);
                let bytes = self.frame_bytes(ttl, marker);
                self.transmit(ctx, port, bytes);
            }
            Event::Frame(fe) => {
                let bytes = fe.frame.payload.to_vec();
                self.rx += 1;
                self.rx_bytes += bytes.len() as u64;
                // Order-insensitive record fold: (arrival, port, bytes).
                let mut rec = Vec::with_capacity(bytes.len() + 9);
                rec.extend_from_slice(&ctx.now().as_nanos().to_le_bytes());
                rec.push(fe.port);
                rec.extend_from_slice(&bytes);
                self.acc = self.acc.wrapping_add(fnv64(&rec));
                let ttl = bytes.first().copied().unwrap_or(0);
                if ttl == 0 || bytes.len() < 9 {
                    self.delivered += 1;
                    return;
                }
                let mut m = [0u8; 8];
                m.copy_from_slice(&bytes[1..9]);
                let marker = u64::from_le_bytes(m);
                let me = ctx.me().0 as u64;
                let mut fwd = bytes;
                fwd[0] = ttl - 1;
                let port = self.route_port(me, marker, ttl - 1);
                // Content-hashed sub-propagation delay: decorrelates
                // same-instant transits so engine tie-break order can
                // never surface in the digest.
                let h = splitmix64(fnv64(&fwd) ^ me ^ ctx.now().as_nanos());
                let delay = 1 + h % 4_093;
                let key = PENDING_BASE + self.next_pending;
                self.next_pending += 1;
                self.pending.push((key, port, fwd));
                ctx.schedule_in(SimDuration(delay), key);
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Instantiate a spec: relay nodes, full-duplex links from the
/// adjacency lists, and kicks for every planned injection.
pub fn build(spec: &TopoSpec) -> Simulator {
    let mut spec = spec.clone();
    spec.normalize();
    let adj = spec.adjacency();
    let mut sim = Simulator::new(spec.seed);
    let ids: Vec<_> = adj
        .iter()
        .map(|nbrs| {
            sim.add_node(Box::new(RelayNode {
                degree: nbrs.len() as u8,
                payload_len: spec.payload_len,
                ttl: spec.ttl,
                ..RelayNode::default()
            }))
        })
        .collect();
    for (a, nbrs) in adj.iter().enumerate() {
        for (pa, &b) in nbrs.iter().enumerate() {
            if b < a {
                continue; // one p2p per undirected edge
            }
            let pb = adj[b]
                .iter()
                .position(|&x| x == a)
                .expect("adjacency is symmetric");
            sim.p2p(
                ids[a],
                pa as u8,
                ids[b],
                pb as u8,
                spec.rate_bps,
                SimDuration(spec.prop_ns),
            );
        }
    }
    for (at, node, marker) in spec.injections() {
        let key = {
            let relay: &mut RelayNode = sim.node_mut(ids[node]);
            relay.plans.push(marker);
            (relay.plans.len() - 1) as u64
        };
        sim.kick(at, ids[node], key);
    }
    sim
}

/// Canonical digest of a finished topo run: engine event count plus
/// every node's counters and record fold, one line per node.
pub fn digest(sim: &Simulator, nodes: usize) -> TopoReport {
    let mut out = String::with_capacity(nodes * 48 + 32);
    out.push_str("topo-digest v1\n");
    out.push_str(&format!("events={}\n", sim.events_dispatched()));
    for i in 0..nodes {
        let r: &RelayNode = sim.node(sirpent_sim::NodeId(i));
        out.push_str(&format!(
            "n{} tx={} txf={} rx={} bytes={} del={} acc={:016x}\n",
            i, r.tx, r.tx_fail, r.rx, r.rx_bytes, r.delivered, r.acc
        ));
    }
    TopoReport {
        digest: out,
        events: sim.events_dispatched(),
    }
}

/// Build and run a spec on the serial engine.
pub fn execute(spec: &TopoSpec) -> TopoReport {
    let mut spec = spec.clone();
    spec.normalize();
    let mut sim = build(&spec);
    sim.run_until(SimTime(spec.horizon_ns));
    digest(&sim, spec.nodes)
}

/// Build and run a spec on the sharded engine (`shards` spatial shards,
/// `threads` workers), merging back to serial before digesting.
pub fn execute_sharded(spec: &TopoSpec, shards: usize, threads: usize) -> TopoReport {
    let mut spec = spec.clone();
    spec.normalize();
    let sim = build(&spec);
    let mut sharded = ShardedSimulator::split(sim, shards);
    sharded.run_until(SimTime(spec.horizon_ns), threads);
    let sim = sharded.into_serial();
    digest(&sim, spec.nodes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_round_trips_for_64_seeds() {
        for seed in 0..64u64 {
            let spec = TopoSpec::from_seed(seed);
            let text = spec.to_fixture_string();
            let back = TopoSpec::from_fixture_string(&text).expect("fixture parses");
            assert_eq!(spec, back, "round-trip mismatch for seed {seed}");
            // Normalization is idempotent through the text form.
            assert_eq!(text, back.to_fixture_string());
        }
    }

    #[test]
    fn fixture_parser_rejects_garbage() {
        assert!(TopoSpec::from_fixture_string("nope").is_err());
        assert!(TopoSpec::from_fixture_string("topo-fixture v1\nshape dodecahedron\n").is_err());
        assert!(TopoSpec::from_fixture_string("topo-fixture v1\nnodes many\n").is_err());
    }

    #[test]
    fn shapes_build_valid_adjacency() {
        for (shape, n) in [
            (TopoShape::Ring, 10),
            (TopoShape::Grid { cols: 4 }, 11),
            (TopoShape::Random { degree: 4 }, 50),
        ] {
            let spec = TopoSpec {
                seed: 9,
                shape,
                nodes: n,
                sources: 2,
                frames_per_source: 1,
                ttl: 4,
                payload_len: 32,
                prop_ns: 2_000,
                rate_bps: 10_000_000,
                horizon_ns: 10_000_000,
            };
            let adj = spec.adjacency();
            assert_eq!(adj.len(), n);
            for (a, nbrs) in adj.iter().enumerate() {
                assert!(nbrs.len() <= 8, "degree fits ports");
                for &b in nbrs {
                    assert!(adj[b].contains(&a), "symmetric");
                    assert_ne!(a, b, "no self loops");
                }
            }
        }
    }

    #[test]
    fn grid_cap_at_ten_thousand_nodes_builds() {
        let mut spec = TopoSpec::from_seed(3);
        spec.nodes = 99_999; // clamps to 10_000
        spec.shape = TopoShape::Grid { cols: 100 };
        spec.normalize();
        assert_eq!(spec.nodes, 10_000);
        let adj = spec.adjacency();
        assert_eq!(adj.len(), 10_000);
    }

    #[test]
    fn run_twice_is_identical() {
        let spec = TopoSpec::from_seed(11);
        assert_eq!(execute(&spec), execute(&spec));
    }

    #[test]
    fn frames_actually_relay() {
        let spec = TopoSpec::from_seed(5);
        let report = execute(&spec);
        let total: usize = spec.sources.min(spec.nodes) * spec.frames_per_source;
        assert!(report.events > total as u64, "relays generated events");
        assert!(report.digest.contains("del="), "digest has delivery lines");
    }
}
