//! Chaos property harness for the Sirpent simulator.
//!
//! One seed deterministically generates a mixed VIPER/IP/CVC topology,
//! a workload, and a timed fault schedule ([`spec`]); the harness
//! instantiates and runs it ([`scenario`]) and checks six global
//! invariants ([`invariants`]):
//!
//! 1. **Packet conservation** — every injected packet is delivered,
//!    counted by exactly one drop counter, or still queued behind a
//!    downed link at the horizon. No phantom deliveries.
//! 2. **Exactly-once** — no marker is delivered twice unless a
//!    duplication window was scheduled on its rail.
//! 3. **Abort ordering** — a receiver never consumes a cut-through
//!    frame whose transmission was aborted: every `FrameAborted` lands
//!    strictly before the frame's last bit would have.
//! 4. **Reply routing** — the return route accumulated in a delivered
//!    packet's trailer routes a reply back to the source, even across
//!    router crashes (source routes live in packets, not routers).
//! 5. **Diverted replies route back** — a packet delivered via an
//!    in-network diversion (Slick-Packets alternate branch) still gets
//!    its reply, and the reply's trailer retraces the path the forward
//!    packet *actually took*, bypass hops included.
//! 6. **Determinism** — the same seed produces a byte-identical run
//!    digest, every time.
//!
//! When a seed fails, the [`shrink`] module minimizes the scenario with
//! a ddmin-style pass and writes a rerunnable text fixture.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod invariants;
pub mod scenario;
pub mod shrink;
pub mod spec;
pub mod te;
pub mod topo;

pub use invariants::{check_corpus, check_exact, diverted_replies_route_back};
pub use scenario::{
    build, build_stripped, build_with_queue, execute, execute_sharded, execute_stripped,
    execute_with_queue, outcome_digest, run, run_traced, ReplyRecord, RunReport,
};
pub use shrink::{shrink, write_fixture};
pub use spec::{Profile, Scenario};
pub use te::{FlowNode, TePlan, TeRunReport, TeWorkload};
pub use topo::{RelayNode, TopoReport, TopoShape, TopoSpec};

use sirpent_sim::{Context, Event, FrameId, Node, SimTime};
use std::any::Any;

/// A bare receiver that records frame announcements and aborts without
/// consuming or purging anything — the observation point for the abort
/// ordering invariant.
#[derive(Default)]
pub struct Sink {
    /// Every announced frame: `(id, first_bit, last_bit)`.
    pub frames: Vec<(FrameId, SimTime, SimTime)>,
    /// Every abort notice: `(id, time delivered)`.
    pub aborts: Vec<(FrameId, SimTime)>,
}

impl Sink {
    /// New empty sink.
    pub fn new() -> Sink {
        Sink::default()
    }
}

impl Node for Sink {
    fn on_event(&mut self, ctx: &mut Context<'_>, ev: Event) {
        match ev {
            Event::Frame(fe) => {
                self.frames.push((fe.frame.id, fe.first_bit, fe.last_bit));
            }
            Event::FrameAborted { frame, .. } => {
                self.aborts.push((frame, ctx.now()));
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
