//! The six global invariants, as reusable checkers.
//!
//! Each checker runs the scenario (twice — determinism is itself an
//! invariant) and returns `None` on success or `Some(description)` of
//! the first violated property. The same functions back the proptest
//! suites, the soak corpus, and the shrinker's failure predicate, so a
//! shrunk fixture reproduces exactly what the suite saw.

use crate::scenario::{execute, RunReport};
use crate::spec::Scenario;

/// Upper bound on per-marker deliveries when a duplication window was
/// scheduled on the marker's rail. The engine duplicates at most once
/// per channel traversal, so a 5-hop rail cannot exceed 2^5 copies;
/// 32 covers the deepest rail the generator emits.
pub const DUP_BOUND: u32 = 32;

fn drop_ledger(r: &RunReport) -> u64 {
    r.node_drops + r.chan_drops + r.chaos_drops + r.leftover_queued
}

/// The **diverted-replies-route-back** invariant: every forward packet
/// that reached its destination via an in-network diversion (a bypass
/// landing at a router's port 4 or at the destination's port 5/6) must
/// get its phase-2 reply delivered, and the reply's own trailer must
/// retrace — in reverse — the path the forward packet *actually took*:
/// the reply arrives at each router on that router's forward *output*
/// port, which is 3 exactly where the forward packet diverted and 2
/// everywhere else.
pub fn diverted_replies_route_back(r: &RunReport) -> Option<String> {
    for rec in &r.reply_book {
        let landed_by_bypass = rec.dst_port != 0;
        let diverted = rec.protected && (landed_by_bypass || rec.forward_hops.contains(&4));
        if !diverted {
            continue;
        }
        let m = rec.reply_marker;
        if r.reply_hits.get(&m).copied().unwrap_or(0) == 0 {
            return Some(format!(
                "diverted-reply: reply {m:016x} to a diverted flow (forward hops \
                 {:?}, dst port {}) never reached the source host",
                rec.forward_hops, rec.dst_port
            ));
        }
        let Some(reply_hops) = r.reply_trailer_hops.get(&m) else {
            return Some(format!(
                "diverted-reply: reply {m:016x} was delivered but its trailer \
                 could not be parsed back"
            ));
        };
        let hops = &rec.forward_hops;
        let mut expect: Vec<u8> = (0..hops.len())
            .map(|i| {
                let next_is_bypass = match hops.get(i + 1) {
                    Some(&p) => p == 4,
                    None => landed_by_bypass,
                };
                if next_is_bypass {
                    3
                } else {
                    2
                }
            })
            .collect();
        expect.reverse();
        if reply_hops != &expect {
            return Some(format!(
                "diverted-reply: reply {m:016x} took path {reply_hops:?} back, \
                 but the forward path (arrival ports {hops:?}, dst port {}) \
                 demands {expect:?}",
                rec.dst_port
            ));
        }
    }
    None
}

fn determinism(spec: &Scenario) -> Result<RunReport, String> {
    let a = execute(spec);
    let b = execute(spec);
    if a.digest != b.digest {
        return Err(format!(
            "determinism: seed {} produced two different digests across \
             identical runs ({} vs {} bytes)",
            spec.seed,
            a.digest.len(),
            b.digest.len()
        ));
    }
    Ok(a)
}

/// Exact-tier invariants: strict packet conservation, exactly-once
/// delivery, phantom-freedom, reply routing, diverted-reply
/// path-retracing, determinism.
///
/// Valid for scenarios generated with [`crate::spec::Profile::Exact`]:
/// no CVC rails (their switches originate control traffic, which breaks
/// the one-injection-one-delivery ledger) and no duplication windows.
pub fn check_exact(spec: &Scenario) -> Option<String> {
    let r = match determinism(spec) {
        Ok(r) => r,
        Err(e) => return Some(e),
    };

    let accounted = r.delivered_frames + drop_ledger(&r);
    if r.injected != accounted {
        return Some(format!(
            "conservation: injected {} != delivered {} + node_drops {} + \
             chan_drops {} + chaos_drops {} + queued {} (= {})",
            r.injected,
            r.delivered_frames,
            r.node_drops,
            r.chan_drops,
            r.chaos_drops,
            r.leftover_queued,
            accounted
        ));
    }
    // A copy corrupted on an intermediate hop can be forwarded (payload
    // damage passes an IP header checksum) and arrive flagged clean but
    // with a mangled marker, so each phantom needs a corruption event
    // somewhere upstream to explain it. With no corruption scheduled,
    // the bound is zero: the network never invents packets.
    if r.phantom_frames > r.chan_corrupted {
        return Some(format!(
            "phantom: {} uncorrupted deliveries matched no injected marker, \
             but only {} channel corruption events could explain them",
            r.phantom_frames, r.chan_corrupted
        ));
    }
    if let Some((m, n)) = r.marker_hits.iter().find(|&(_, &n)| n > 1) {
        return Some(format!(
            "exactly-once: marker {m:016x} delivered {n} times with no \
             duplication window scheduled"
        ));
    }
    if let Some(m) = r
        .replies_expected
        .iter()
        .find(|m| r.reply_hits.get(m).copied().unwrap_or(0) == 0)
    {
        return Some(format!(
            "reply-route: trailer-derived reply {m:016x} never reached the \
             source host"
        ));
    }
    diverted_replies_route_back(&r)
}

/// Corpus-tier invariants: set-based conservation, bounded duplication,
/// phantom-freedom, reply routing, diverted-reply path-retracing,
/// determinism.
///
/// Handles everything the generator can emit — CVC rails, duplication
/// windows, error bursts — at the cost of a weaker ledger: every
/// undelivered marker must be covered by the global drop budget, rather
/// than each injection matching exactly one counter.
pub fn check_corpus(spec: &Scenario) -> Option<String> {
    let r = match determinism(spec) {
        Ok(r) => r,
        Err(e) => return Some(e),
    };

    // A copy corrupted on an intermediate hop can be forwarded (payload
    // damage passes an IP header checksum) and arrive flagged clean but
    // with a mangled marker, so each phantom needs a corruption event
    // somewhere upstream to explain it. With no corruption scheduled,
    // the bound is zero: the network never invents packets.
    if r.phantom_frames > r.chan_corrupted {
        return Some(format!(
            "phantom: {} uncorrupted deliveries matched no injected marker, \
             but only {} channel corruption events could explain them",
            r.phantom_frames, r.chan_corrupted
        ));
    }
    for (m, &n) in &r.marker_hits {
        let bound = if r.dup_markers.contains(m) {
            DUP_BOUND
        } else {
            1
        };
        if n > bound {
            return Some(format!(
                "duplication: marker {m:016x} delivered {n} times (bound {bound})"
            ));
        }
    }
    let undelivered = spec
        .rails
        .iter()
        .flat_map(|rail| rail.packets.iter().map(|p| p.marker))
        .filter(|m| r.marker_hits.get(m).copied().unwrap_or(0) == 0)
        .count() as u64;
    // `chan_corrupted` covers both final-hop flagged deliveries and
    // mid-path marker damage (each is one corruption event on some
    // channel).
    let budget = drop_ledger(&r) + r.chan_corrupted;
    if undelivered > budget {
        return Some(format!(
            "conservation(set): {undelivered} markers undelivered but the \
             drop budget only explains {budget}"
        ));
    }
    if let Some(m) = r
        .replies_expected
        .iter()
        .find(|m| r.reply_hits.get(m).copied().unwrap_or(0) == 0)
    {
        return Some(format!(
            "reply-route: trailer-derived reply {m:016x} never reached the \
             source host"
        ));
    }
    diverted_replies_route_back(&r)
}
