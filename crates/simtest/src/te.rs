//! Traffic-engineered heavy-traffic workload over a [`topo`](crate::topo)
//! mesh: the directory's weighted TE topology plans k constrained routes
//! per flow, clients pick among them weighted by advertised residual
//! capacity, and a source-routed flow simulation measures what actually
//! happened on the wires.
//!
//! The workload models a **flash crowd**: thousands of flows with
//! heavy-tailed sizes, all starting inside one short arrival window,
//! most aimed at a handful of hotspot destinations. Two configurations
//! of the same spec make the experiment:
//!
//! * **shortest-path-only** (`k = 1`, no spreading, no congestion
//!   avoidance) — every flow takes the one shortest route, so shortest
//!   path trees concentrate the crowd onto a few trunks;
//! * **TE** (`k > 1`, residual-weighted per-flow selection, detours
//!   around congested trunks) — the same offered load spreads across
//!   the alternates the constrained search returns.
//!
//! Planning is a pure function of `(spec, seed)`: flows are placed one
//! by one, and each placement feeds its offered load back into the
//! directory's TE topology (`add_load_milli` per hop), so later queries
//! see earlier placements — residual weights shrink and, past the
//! congestion threshold, detour insertion kicks in. The simulation then
//! executes the planned source routes on the real engine; per-channel
//! busy time gives ground-truth trunk utilization.
//!
//! Digests are shard-invariant by the same two devices as
//! [`topo`](crate::topo): content-hashed forward delays and commutative
//! per-node record folds. Packets of one flow are byte-identical, so
//! even a residual same-instant tie between them cannot surface.

use std::any::Any;
use std::collections::BTreeMap;

use sirpent_directory::te::{LinkMetrics, TeQuery};
use sirpent_directory::{Directory, Peer, TeTopology};
use sirpent_sim::{
    ChannelId, Context, Event, Node, NodeId, ShardedSimulator, SimDuration, SimTime, Simulator,
};
use sirpent_transport::weighted_pick;

use crate::scenario::fnv64;
use crate::topo::TopoShape;

/// Timer keys at or above this value address pending forwards; keys
/// below it index a source's planned packet shots.
const PENDING_BASE: u64 = 1 << 32;

/// SplitMix64 finalizer — seed-derived structure only, never run-time
/// randomness.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One TE workload: a mesh, a flash crowd, and a routing policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TeWorkload {
    /// Master seed for topology, flow placement and timing.
    pub seed: u64,
    /// Mesh family (ring / grid / seeded random-regular).
    pub shape: TopoShape,
    /// Router count (every node is a router; flows terminate on them).
    pub nodes: usize,
    /// Concurrent flows launched inside the arrival window.
    pub flows: usize,
    /// Hotspot destination count; three of four flows aim at one.
    pub hotspots: usize,
    /// Routes requested per flow (`k = 1` ⇒ shortest-path-only).
    pub k: usize,
    /// Weighted per-flow selection among the k routes.
    pub spread: bool,
    /// Ask the directory for detours around congested trunks.
    pub avoid_congested: bool,
    /// Stretch bound passed to the constrained search (milli; 1500 =
    /// alternates may be at most 1.5× the shortest route's weight).
    pub max_stretch_milli: u32,
    /// Load (milli) above which a trunk counts as congested.
    pub congestion_threshold_milli: u32,
    /// Heavy-tail cap: a flow carries up to `2^(level+1) - 1` packets.
    pub max_pkt_level: u32,
    /// Bytes per packet (all frames equal-sized).
    pub payload_len: usize,
    /// Per-link propagation delay, nanoseconds.
    pub prop_ns: u64,
    /// Per-link rate, bits/second.
    pub rate_bps: u64,
    /// Flash-crowd arrival window, nanoseconds.
    pub window_ns: u64,
    /// Simulation horizon, nanoseconds.
    pub horizon_ns: u64,
}

impl TeWorkload {
    /// The heavy-traffic experiment configuration: a 10 000-node
    /// random-regular mesh, thousands of heavy-tailed flows flash-
    /// crowding six hotspots, TE routing on (`k = 3`, spreading,
    /// congestion avoidance).
    pub fn heavy(seed: u64) -> TeWorkload {
        TeWorkload {
            seed,
            shape: TopoShape::Random { degree: 4 },
            nodes: 10_000,
            flows: 2_048,
            hotspots: 6,
            k: 3,
            spread: true,
            avoid_congested: true,
            max_stretch_milli: 1_500,
            congestion_threshold_milli: 600,
            max_pkt_level: 6,
            payload_len: 64,
            prop_ns: 10_000,
            rate_bps: 10_000_000,
            window_ns: 50_000_000,
            horizon_ns: 250_000_000,
        }
    }

    /// A small configuration for tests and the determinism suite:
    /// same machinery, hundreds of nodes, sub-second runtime, dense
    /// enough that the crowd actually concentrates.
    pub fn small(seed: u64) -> TeWorkload {
        TeWorkload {
            nodes: 256,
            flows: 384,
            hotspots: 2,
            window_ns: 20_000_000,
            ..TeWorkload::heavy(seed)
        }
    }

    /// The shortest-path-only control: identical mesh and crowd, but
    /// `k = 1`, no spreading, no congestion avoidance.
    pub fn shortest_path_only(&self) -> TeWorkload {
        TeWorkload {
            k: 1,
            spread: false,
            avoid_congested: false,
            ..self.clone()
        }
    }

    /// Clamp every field into the supported envelope (mirrors
    /// [`crate::topo::TopoSpec::normalize`]).
    pub fn normalize(&mut self) {
        self.nodes = self.nodes.clamp(8, 10_000);
        if let TopoShape::Grid { cols } = &mut self.shape {
            *cols = (*cols).clamp(2, self.nodes);
        }
        if let TopoShape::Random { degree } = &mut self.shape {
            *degree = (*degree).clamp(2, 8) & !1;
        }
        self.flows = self.flows.clamp(1, 65_536);
        self.hotspots = self.hotspots.clamp(1, self.nodes / 2);
        self.k = self.k.clamp(1, 8);
        self.max_pkt_level = self.max_pkt_level.min(8);
        // Room for pos + len + 18 route ports + 8 marker bytes.
        self.payload_len = self.payload_len.clamp(40, 1_500);
        self.prop_ns = self.prop_ns.clamp(1, 1_000_000);
        self.rate_bps = self.rate_bps.clamp(1_000, 10_000_000_000);
        self.window_ns = self.window_ns.clamp(1_000_000, 10_000_000_000);
        self.horizon_ns = self.horizon_ns.max(self.window_ns.saturating_mul(2));
    }

    /// The undirected adjacency this workload runs over — the
    /// [`crate::topo::TopoSpec::adjacency`] derivation (so a node's
    /// port for a link is the link's index in its list), **augmented
    /// with a ring**: seeded circulant offsets can share a factor with
    /// the node count and split the mesh into components, which a
    /// hot-potato relay never notices but end-to-end flows cannot
    /// tolerate. The extra `i — i+1` edges guarantee one component for
    /// every shape and seed; existing edges and ports are unchanged
    /// (ring ports append after the shape's own).
    pub fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = crate::topo::TopoSpec {
            seed: self.seed,
            shape: self.shape,
            nodes: self.nodes,
            ..crate::topo::TopoSpec::from_seed(self.seed)
        }
        .adjacency();
        let n = adj.len();
        for i in 0..n {
            let j = (i + 1) % n;
            if i == j || adj.get(i).map(|l| l.contains(&j)).unwrap_or(true) {
                continue;
            }
            if let Some(l) = adj.get_mut(i) {
                l.push(j);
            }
            if let Some(l) = adj.get_mut(j) {
                l.push(i);
            }
        }
        adj
    }
}

/// One planned flow: placement, size, timing, and the source route the
/// client selected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowPlan {
    /// Source node.
    pub src: usize,
    /// Destination node.
    pub dst: usize,
    /// First-packet send time, nanoseconds.
    pub start_ns: u64,
    /// Packet count (heavy-tailed).
    pub pkts: u32,
    /// Flow marker carried in every packet.
    pub marker: u64,
    /// Out-port at each hop, source to destination.
    pub ports: Vec<u8>,
    /// Hop count of the selected route.
    pub hops: usize,
    /// Hop count of the unconstrained shortest route (stretch base).
    pub sp_hops: usize,
}

/// A planned crowd: every flow's selected route plus the plan-phase
/// directory statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TePlan {
    /// Flows that got a route, in placement order.
    pub flows: Vec<FlowPlan>,
    /// Flows the constrained search found no feasible route for.
    pub unroutable: u64,
    /// Detour routes the directory inserted around congested trunks.
    pub detours: u64,
    /// Directory queries issued during planning.
    pub queries: u64,
    /// Topology epoch after all placements fed their load back.
    pub epoch: u64,
    /// Order-sensitive fold of every k-route set returned during
    /// planning: two runs agree on this iff the route sets were
    /// byte-identical.
    pub routes_digest: u64,
}

/// What one run measured: digest, delivery, utilization, latency.
#[derive(Debug, Clone, PartialEq)]
pub struct TeRunReport {
    /// Canonical run digest (shard-invariant).
    pub digest: String,
    /// Engine events dispatched.
    pub events: u64,
    /// Flows that ran.
    pub flows: usize,
    /// Flows dropped at plan time for want of a feasible route.
    pub unroutable: u64,
    /// Detour routes inserted during planning.
    pub detours: u64,
    /// Packets injected at sources.
    pub injected_pkts: u64,
    /// Packets delivered at their destination.
    pub delivered_pkts: u64,
    /// Flows with zero delivered packets.
    pub starved_flows: u64,
    /// Flows with some but not all packets delivered at the horizon.
    pub incomplete_flows: u64,
    /// Busiest directed link's busy time, milli-fraction of horizon.
    pub peak_util_milli: u64,
    /// Mean directed-link busy time, milli-fraction of horizon.
    pub mean_util_milli: u64,
    /// Median flow completion (last delivery − start), nanoseconds.
    pub p50_completion_ns: u64,
    /// 99th-percentile flow completion, nanoseconds.
    pub p99_completion_ns: u64,
    /// Worst route stretch over flows, milli (1000 = shortest).
    pub max_stretch_milli: u64,
    /// Mean route stretch over flows, milli.
    pub mean_stretch_milli: u64,
    /// Plan routes digest (see [`TePlan::routes_digest`]).
    pub routes_digest: u64,
}

/// Offered load of one flow as a milli-fraction of what a link can
/// carry inside the arrival window.
fn flow_load_milli(spec: &TeWorkload, pkts: u32) -> u32 {
    let bits = pkts as u128 * spec.payload_len as u128 * 8;
    let capacity = spec.rate_bps as u128 * spec.window_ns as u128 / 1_000_000_000;
    let milli = bits * 1_000 / capacity.max(1);
    milli.min(u32::MAX as u128) as u32
}

/// Plan the crowd: build the directory's TE view of the mesh, query k
/// constrained routes per flow, select one weighted by residual
/// capacity, and feed each placement's load back so later queries see
/// it. Pure in `spec` — same spec, same plan, every time.
pub fn plan(spec: &TeWorkload) -> TePlan {
    let mut spec = spec.clone();
    spec.normalize();
    let adj = spec.adjacency();

    let mut te = TeTopology::new();
    te.set_congestion_threshold(spec.congestion_threshold_milli);
    let metrics = LinkMetrics {
        bandwidth_bps: spec.rate_bps,
        prop_delay: SimDuration(spec.prop_ns),
        mtu: spec.payload_len.max(64),
        cost: 1,
        ..LinkMetrics::basic()
    };
    for (a, nbrs) in adj.iter().enumerate() {
        for (p, &b) in nbrs.iter().enumerate() {
            te.add_link(a as u32, p as u8, Peer::Router(b as u32), metrics);
        }
    }
    let mut dir = Directory::new().with_te(te);

    // Hotspot pool: distinct destinations, seed-derived. Each hotspot
    // has a *crowd origin* — the flash crowd's flows start clustered
    // around it, so their shortest paths share a corridor toward the
    // hotspot. That concentration is exactly what shortest-path-only
    // routing cannot escape and what spreading is for.
    let mut hotspots: Vec<(usize, usize)> = Vec::with_capacity(spec.hotspots);
    let mut probe = 0u64;
    while hotspots.len() < spec.hotspots {
        let h = (splitmix64(spec.seed ^ (0x4075_1907 + probe)) % spec.nodes as u64) as usize;
        if !hotspots.iter().any(|&(d, _)| d == h) {
            let origin =
                (splitmix64(spec.seed ^ 0xc10d_0000 ^ h as u64) % spec.nodes as u64) as usize;
            hotspots.push((h, origin));
        }
        probe += 1;
    }
    let cluster = (spec.nodes / 16).max(1) as u64;

    let q = TeQuery {
        k: spec.k,
        min_mtu: spec.payload_len,
        max_stretch_milli: if spec.k > 1 {
            spec.max_stretch_milli
        } else {
            0
        },
        avoid_congested: spec.avoid_congested,
        ..TeQuery::default()
    };
    let mut flows: Vec<FlowPlan> = Vec::with_capacity(spec.flows);
    let mut unroutable = 0u64;
    let mut routes_digest = 0xcbf2_9ce4_8422_2325u64;
    // Route ports must fit the frame header: pos + len + ports + marker.
    let max_route = spec.payload_len.saturating_sub(10).min(255);

    for f in 0..spec.flows as u64 {
        let r = splitmix64(spec.seed ^ 0x51f0_a11c ^ (f << 1));
        let sdraw = splitmix64(spec.seed ^ 0x0bad_5eed ^ (f << 1));
        // Three of four flows join the crowd on a hotspot, starting
        // near its crowd origin; the rest are uniform background.
        let (dst, mut src) = if r.is_multiple_of(4) {
            (
                (splitmix64(r) % spec.nodes as u64) as usize,
                (sdraw % spec.nodes as u64) as usize,
            )
        } else {
            let i = (r / 4 % spec.hotspots as u64) as usize;
            let (d, origin) = hotspots.get(i).copied().unwrap_or((0, 0));
            (d, (origin + (sdraw % cluster) as usize) % spec.nodes)
        };
        if src == dst {
            src = (src + 1) % spec.nodes;
        }
        let start_ns = 1_000 + splitmix64(spec.seed ^ 0x0f1a_5400 ^ f) % spec.window_ns;
        let tail = splitmix64(spec.seed ^ 0x7a11_0000 ^ f);
        let level = tail.trailing_zeros().min(spec.max_pkt_level);
        let span = 1u64 << level;
        let pkts = (span + splitmix64(tail) % span) as u32;
        let marker = splitmix64(spec.seed ^ 0x3a5c_ca3e ^ f);

        let routes = dir.te_query(src as u32, Peer::Router(dst as u32), &q);
        for route in &routes {
            let mut rec: Vec<u8> = Vec::with_capacity(route.hops.len() * 5 + 8);
            rec.extend_from_slice(&f.to_le_bytes());
            for &(router, port) in &route.hops {
                rec.extend_from_slice(&router.to_le_bytes());
                rec.push(port);
            }
            routes_digest = routes_digest.wrapping_mul(0x1_0000_01b3) ^ fnv64(&rec);
        }
        let usable: Vec<&sirpent_directory::te::TeRoute> = routes
            .iter()
            .filter(|r| !r.hops.is_empty() && r.hops.len() <= max_route)
            .collect();
        if usable.is_empty() {
            unroutable += 1;
            continue;
        }
        let choice = if spec.spread && usable.len() > 1 {
            let weights: Vec<u64> = usable.iter().map(|r| r.residual_bps).collect();
            weighted_pick(&weights, marker)
        } else {
            0
        };
        let Some(route) = usable.get(choice).copied() else {
            unroutable += 1;
            continue;
        };

        // Stretch base: the returned set is sorted by weight and the
        // search weight is load-blind (propagation + hop), so the first
        // route is the unconstrained shortest — no extra query needed.
        let sp_hops = routes
            .first()
            .map(|r| r.hops.len())
            .unwrap_or(route.hops.len());

        // Rate-control feedback: this placement's offered load lands on
        // every hop it crosses, so later queries route around it.
        let load = flow_load_milli(&spec, pkts);
        let hops: Vec<(u32, u8)> = route.hops.clone();
        if let Some(t) = dir.te_mut() {
            for &(router, port) in &hops {
                t.add_load_milli(router, port, load);
            }
        }

        flows.push(FlowPlan {
            src,
            dst,
            start_ns,
            pkts,
            marker,
            ports: hops.iter().map(|&(_, p)| p).collect(),
            hops: hops.len(),
            sp_hops: sp_hops.max(1),
        });
    }

    TePlan {
        flows,
        unroutable,
        detours: dir.te_detours,
        queries: dir.te_queries,
        epoch: dir.topology_epoch(),
        routes_digest,
    }
}

/// A source-routing flow node: planned timer keys inject packets whose
/// header carries the full out-port list; transit nodes forward along
/// it after a content-hashed delay; the final node records delivery.
#[derive(Default)]
pub struct FlowNode {
    /// Frame payload length this node emits.
    payload_len: usize,
    /// Flows originating here: `(out-ports, marker)`.
    flows: Vec<(Vec<u8>, u64)>,
    /// Packet shots, indexed by kick key: local flow index.
    shots: Vec<u32>,
    /// Forwards awaiting their hashed delay: `(timer key, port, bytes)`.
    pending: Vec<(u64, u8, Vec<u8>)>,
    /// Next pending timer key (offset under [`PENDING_BASE`]).
    next_pending: u64,
    /// Frames transmitted (fresh + forwarded).
    pub tx: u64,
    /// Transmissions the engine refused (stays zero here).
    pub tx_fail: u64,
    /// Frames received (transit + final).
    pub rx: u64,
    /// Frames delivered here (route exhausted).
    pub delivered: u64,
    /// Commutative fold of per-arrival record hashes.
    pub acc: u64,
    /// Per-flow delivery: marker → (packets, last arrival ns).
    pub done: BTreeMap<u64, (u32, u64)>,
}

impl FlowNode {
    fn frame_bytes(&self, ports: &[u8], marker: u64) -> Vec<u8> {
        let len = ports.len().min(255);
        let mut v = Vec::with_capacity(self.payload_len);
        v.push(1); // pos: next port index after the source's own send
        v.push(len as u8);
        v.extend_from_slice(ports.get(..len).unwrap_or(ports));
        v.extend_from_slice(&marker.to_le_bytes());
        // Deterministic pad so corruption anywhere would show in `acc`.
        while v.len() < self.payload_len {
            let i = v.len();
            v.push((marker >> (8 * (i % 8))) as u8 ^ i as u8);
        }
        v
    }

    fn transmit(&mut self, ctx: &mut Context<'_>, port: u8, bytes: Vec<u8>) {
        match ctx.transmit(port, bytes) {
            Ok(_) => self.tx += 1,
            Err(_) => self.tx_fail += 1,
        }
    }
}

impl Node for FlowNode {
    fn on_event(&mut self, ctx: &mut Context<'_>, ev: Event) {
        match ev {
            Event::Timer { key } if key >= PENDING_BASE => {
                let Some(i) = self.pending.iter().position(|&(k, _, _)| k == key) else {
                    return;
                };
                let (_, port, bytes) = self.pending.remove(i);
                self.transmit(ctx, port, bytes);
            }
            Event::Timer { key } => {
                let Some(&flow) = self.shots.get(key as usize) else {
                    return;
                };
                let Some((ports, marker)) = self.flows.get(flow as usize).cloned() else {
                    return;
                };
                let Some(first) = ports.first().copied() else {
                    return;
                };
                let bytes = self.frame_bytes(&ports, marker);
                self.transmit(ctx, first, bytes);
            }
            Event::Frame(fe) => {
                let bytes = fe.frame.payload.to_vec();
                self.rx += 1;
                // Order-insensitive record fold: (arrival, port, bytes).
                let mut rec = Vec::with_capacity(bytes.len() + 9);
                rec.extend_from_slice(&ctx.now().as_nanos().to_le_bytes());
                rec.push(fe.port);
                rec.extend_from_slice(&bytes);
                self.acc = self.acc.wrapping_add(fnv64(&rec));

                let pos = bytes.first().copied().unwrap_or(0);
                let len = bytes.get(1).copied().unwrap_or(0);
                let marker_off = 2 + len as usize;
                let marker = bytes
                    .get(marker_off..marker_off + 8)
                    .and_then(|m| <[u8; 8]>::try_from(m).ok())
                    .map(u64::from_le_bytes);
                let Some(marker) = marker else {
                    return;
                };
                if pos >= len {
                    // Route exhausted: this is the destination.
                    self.delivered += 1;
                    let now = ctx.now().as_nanos();
                    self.done
                        .entry(marker)
                        .and_modify(|e| {
                            e.0 += 1;
                            e.1 = e.1.max(now);
                        })
                        .or_insert((1, now));
                    return;
                }
                let Some(port) = bytes.get(2 + pos as usize).copied() else {
                    return;
                };
                let mut fwd = bytes;
                if let Some(b) = fwd.get_mut(0) {
                    *b = pos + 1;
                }
                // Content-hashed sub-propagation delay: decorrelates
                // same-instant transits so engine tie-break order can
                // never surface in the digest (DESIGN.md §11).
                let me = ctx.me().0 as u64;
                let h = splitmix64(fnv64(&fwd) ^ me ^ ctx.now().as_nanos());
                let delay = 1 + h % 4_093;
                let key = PENDING_BASE + self.next_pending;
                self.next_pending += 1;
                self.pending.push((key, port, fwd));
                ctx.schedule_in(SimDuration(delay), key);
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Instantiate a planned crowd: flow nodes, full-duplex links from the
/// adjacency, and one kick per packet. Returns the simulator and every
/// directed channel for utilization accounting.
pub fn build(spec: &TeWorkload, plan: &TePlan) -> (Simulator, Vec<ChannelId>) {
    let mut spec = spec.clone();
    spec.normalize();
    let adj = spec.adjacency();
    let mut sim = Simulator::new(spec.seed);
    let ids: Vec<NodeId> = adj
        .iter()
        .map(|nbrs| {
            let _ = nbrs;
            sim.add_node(Box::new(FlowNode {
                payload_len: spec.payload_len,
                ..FlowNode::default()
            }))
        })
        .collect();
    let mut channels: Vec<ChannelId> = Vec::new();
    for (a, nbrs) in adj.iter().enumerate() {
        for (pa, &b) in nbrs.iter().enumerate() {
            if b < a {
                continue; // one p2p per undirected edge
            }
            let Some(pb) = adj.get(b).and_then(|l| l.iter().position(|&x| x == a)) else {
                continue;
            };
            let (Some(&na), Some(&nb)) = (ids.get(a), ids.get(b)) else {
                continue;
            };
            let (ab, ba) = sim.p2p(
                na,
                pa as u8,
                nb,
                pb as u8,
                spec.rate_bps,
                SimDuration(spec.prop_ns),
            );
            channels.push(ab);
            channels.push(ba);
        }
    }

    // Packet pacing: streams at a quarter of line rate, plus a small
    // content-hashed jitter so two flows never beat in lockstep.
    let pkt_ns = spec.payload_len as u64 * 8 * 1_000_000_000 / spec.rate_bps.max(1);
    let spacing = (pkt_ns * 4).max(1);
    for flow in &plan.flows {
        let Some(&node) = ids.get(flow.src) else {
            continue;
        };
        let local = {
            let fnode: &mut FlowNode = sim.node_mut(node);
            fnode.flows.push((flow.ports.clone(), flow.marker));
            (fnode.flows.len() - 1) as u32
        };
        for j in 0..flow.pkts as u64 {
            let jitter = splitmix64(flow.marker ^ j) % (spacing / 2 + 1);
            let at = flow.start_ns + j * spacing + jitter;
            let key = {
                let fnode = sim.node_mut::<FlowNode>(node);
                fnode.shots.push(local);
                (fnode.shots.len() - 1) as u64
            };
            sim.kick(SimTime(at), node, key);
        }
    }
    (sim, channels)
}

/// Canonical digest of a finished TE run: engine event count plus every
/// node's counters, record fold, and per-flow delivery fold.
pub fn digest(sim: &Simulator, nodes: usize) -> (String, u64) {
    let mut out = String::with_capacity(nodes * 56 + 32);
    out.push_str("te-digest v1\n");
    out.push_str(&format!("events={}\n", sim.events_dispatched()));
    for i in 0..nodes {
        let n: &FlowNode = sim.node(NodeId(i));
        // BTreeMap iteration order is deterministic, so a sequential
        // fold of the delivery map is stable across shard counts.
        let mut dacc = 0xcbf2_9ce4_8422_2325u64;
        for (&marker, &(count, last)) in &n.done {
            let mut rec = Vec::with_capacity(20);
            rec.extend_from_slice(&marker.to_le_bytes());
            rec.extend_from_slice(&count.to_le_bytes());
            rec.extend_from_slice(&last.to_le_bytes());
            dacc = dacc.wrapping_mul(0x1_0000_01b3) ^ fnv64(&rec);
        }
        out.push_str(&format!(
            "n{} tx={} txf={} rx={} del={} acc={:016x} dacc={:016x}\n",
            i, n.tx, n.tx_fail, n.rx, n.delivered, n.acc, dacc
        ));
    }
    (out, sim.events_dispatched())
}

/// Nearest-rank percentile of a sorted slice.
fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() * p).div_ceil(100).max(1);
    sorted.get(rank - 1).copied().unwrap_or(0)
}

/// Assemble the report from a finished simulator.
fn report(
    spec: &TeWorkload,
    plan: &TePlan,
    sim: &Simulator,
    channels: &[ChannelId],
) -> TeRunReport {
    let (digest, events) = digest(sim, spec.nodes);

    let mut injected = 0u64;
    let mut delivered = 0u64;
    let mut starved = 0u64;
    let mut incomplete = 0u64;
    let mut completions: Vec<u64> = Vec::with_capacity(plan.flows.len());
    let mut stretch_sum = 0u64;
    let mut stretch_max = 0u64;
    for flow in &plan.flows {
        injected += flow.pkts as u64;
        let got = sim
            .node::<FlowNode>(NodeId(flow.dst))
            .done
            .get(&flow.marker)
            .copied();
        match got {
            None => starved += 1,
            Some((count, last)) => {
                delivered += count as u64;
                if count < flow.pkts {
                    incomplete += 1;
                }
                completions.push(last.saturating_sub(flow.start_ns));
            }
        }
        let s = flow.hops as u64 * 1_000 / flow.sp_hops.max(1) as u64;
        stretch_sum += s;
        stretch_max = stretch_max.max(s);
    }
    completions.sort_unstable();

    let horizon = spec.horizon_ns.max(1);
    let mut peak = 0u64;
    let mut busy_sum = 0u128;
    for &ch in channels {
        let busy = sim.channel_stats(ch).busy.as_nanos();
        peak = peak.max(busy);
        busy_sum += busy as u128;
    }
    let mean_util = if channels.is_empty() {
        0
    } else {
        (busy_sum * 1_000 / horizon as u128 / channels.len() as u128) as u64
    };

    TeRunReport {
        digest,
        events,
        flows: plan.flows.len(),
        unroutable: plan.unroutable,
        detours: plan.detours,
        injected_pkts: injected,
        delivered_pkts: delivered,
        starved_flows: starved,
        incomplete_flows: incomplete,
        peak_util_milli: peak * 1_000 / horizon,
        mean_util_milli: mean_util,
        p50_completion_ns: percentile(&completions, 50),
        p99_completion_ns: percentile(&completions, 99),
        max_stretch_milli: stretch_max,
        mean_stretch_milli: if plan.flows.is_empty() {
            0
        } else {
            stretch_sum / plan.flows.len() as u64
        },
        routes_digest: plan.routes_digest,
    }
}

/// Run an already-planned crowd. `shards = 1` runs the serial engine;
/// more shards run the conservative time-window engine on `threads`
/// workers and merge back before digesting. Either way the digest is
/// identical — that invariance is what the determinism suite checks.
pub fn run(spec: &TeWorkload, plan: &TePlan, shards: usize, threads: usize) -> TeRunReport {
    let mut spec = spec.clone();
    spec.normalize();
    let (sim, channels) = build(&spec, plan);
    let sim = if shards <= 1 {
        let mut sim = sim;
        sim.run_until(SimTime(spec.horizon_ns));
        sim
    } else {
        let mut sharded = ShardedSimulator::split(sim, shards);
        sharded.run_until(SimTime(spec.horizon_ns), threads);
        sharded.into_serial()
    };
    report(&spec, plan, &sim, &channels)
}

/// Plan and run on the serial engine.
pub fn execute(spec: &TeWorkload) -> TeRunReport {
    let p = plan(spec);
    run(spec, &p, 1, 1)
}

/// Plan and run on the sharded engine.
pub fn execute_sharded(spec: &TeWorkload, shards: usize, threads: usize) -> TeRunReport {
    let p = plan(spec);
    run(spec, &p, shards, threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic_and_feeds_load_back() {
        let spec = TeWorkload::small(11);
        let a = plan(&spec);
        let b = plan(&spec);
        assert_eq!(a, b, "planning is a pure function of the spec");
        assert!(!a.flows.is_empty());
        assert!(a.epoch > 0, "placements bumped the topology epoch");
        assert_eq!(a.queries, spec.flows as u64);
    }

    #[test]
    fn planned_routes_fit_frames_and_terminate() {
        let spec = TeWorkload::small(12);
        let p = plan(&spec);
        for f in &p.flows {
            assert!(!f.ports.is_empty());
            assert!(f.ports.len() + 10 <= spec.payload_len);
            assert_eq!(f.hops, f.ports.len());
            assert!(f.sp_hops >= 1);
        }
    }

    #[test]
    fn small_crowd_delivers_every_packet() {
        let spec = TeWorkload::small(13);
        let r = execute(&spec);
        assert_eq!(r.starved_flows, 0, "no starved flows");
        assert_eq!(r.incomplete_flows, 0, "no partial flows");
        assert_eq!(r.injected_pkts, r.delivered_pkts);
        assert!(r.peak_util_milli > 0, "some trunk carried traffic");
        assert!(r.max_stretch_milli >= 1_000);
    }

    #[test]
    fn sharded_digest_matches_serial() {
        let spec = TeWorkload::small(14);
        let p = plan(&spec);
        let serial = run(&spec, &p, 1, 1);
        for shards in [2usize, 4] {
            let sharded = run(&spec, &p, shards, 1);
            assert_eq!(
                serial.digest, sharded.digest,
                "digest differs at {shards} shards"
            );
            assert_eq!(serial.delivered_pkts, sharded.delivered_pkts);
        }
    }

    #[test]
    fn spreading_reduces_peak_trunk_load() {
        let spec = TeWorkload::small(15);
        let te = execute(&spec);
        let sp = execute(&spec.shortest_path_only());
        assert_eq!(te.injected_pkts, sp.injected_pkts, "same offered load");
        assert!(
            te.peak_util_milli < sp.peak_util_milli,
            "TE peak {} must beat shortest-path peak {}",
            te.peak_util_milli,
            sp.peak_util_milli
        );
        assert!(sp.max_stretch_milli == 1_000, "control never stretches");
        assert!(
            te.max_stretch_milli <= spec.max_stretch_milli as u64,
            "stretch bound respected"
        );
    }
}
