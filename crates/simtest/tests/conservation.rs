//! Property suite: exact-tier packet conservation over random mixed
//! topologies (satellite 2). 64 random seeds, each generating a 3–12
//! node VIPER/IP rail set with a random fault schedule; every injected
//! packet must be delivered, counted by exactly one drop counter, or
//! queued behind a downed link — and the run must be byte-identical
//! when repeated.

use proptest::prelude::*;
use sirpent_simtest::{check_exact, shrink, write_fixture, Profile, Scenario};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn exact_tier_invariants_hold(seed in any::<u64>()) {
        let spec = Scenario::from_seed(seed, Profile::Exact);
        if let Some(err) = check_exact(&spec) {
            let small = shrink(&spec, &|s| check_exact(s));
            let path = write_fixture(&small, &format!("shrunk_exact_{seed}.txt"))
                .expect("fixture written");
            prop_assert!(
                false,
                "seed {} violated: {}\n  shrunk reproducer: {}",
                seed,
                err,
                path.display()
            );
        }
    }
}

/// The exact checker must also accept the all-quiet degenerate case.
#[test]
fn quiet_scenario_conserves() {
    let mut spec = Scenario::from_seed(0, Profile::Exact);
    spec.faults.clear();
    for r in &mut spec.rails {
        r.drop_pm = 0;
        r.corrupt_pm = 0;
    }
    spec.normalize();
    assert_eq!(check_exact(&spec), None);
}
