//! Flight-recorder cross-check (PR 5 satellite): on a 16-seed
//! Exact-profile corpus, the reconstructed per-packet traces must agree
//! with the conservation ledger the simtest harness already pins, and
//! recording must not perturb the run.
//!
//! Per seed:
//!
//! * **Zero perturbation** — the digest of a recorder-on run is byte
//!   identical to the recorder-off run of the same spec.
//! * **Delivery agreement** — for every known marker (workload, flush,
//!   phase-2 replies), the number of `Delivered` hop events under that
//!   key is at least the ledger's uncorrupted hit count, and the total
//!   excess across all markers is bounded by the corrupted-delivery
//!   count (a final-hop-corrupted frame still records a `Delivered`
//!   event under its intact key, but the ledger excludes it).
//! * **Telescoping** — for every complete trace, the per-hop latency
//!   spans sum exactly to the end-to-end latency.
//! * **Drop agreement** — `Drop` hop events never exceed the ledger's
//!   node-drop total (channel and chaos kills leave no per-node drop
//!   event, so traces they truncate simply end).
//! * **No eviction** — the ring is sized for the workload, so the
//!   reconstruction saw every recorded event.

use sirpent_simtest::scenario::{build, execute, run_traced};
use sirpent_simtest::{Profile, Scenario};
use sirpent_telemetry::HopKind;

/// Ring capacity for the cross-check runs — far above the event count
/// of any Exact-profile scenario, so nothing is evicted.
const FLIGHT_CAP: usize = 1 << 16;

#[test]
fn traces_agree_with_conservation_ledger_on_16_seeds() {
    for seed in 0..16u64 {
        let spec = Scenario::from_seed(seed, Profile::Exact);

        let baseline = execute(&spec);

        let mut built = build(&spec);
        built.sim.enable_flight(FLIGHT_CAP);
        let (report, flight) = run_traced(built);
        let flight = flight.expect("recorder was enabled");

        assert_eq!(
            report.digest, baseline.digest,
            "seed {seed}: enabling the flight recorder changed the run"
        );
        assert_eq!(
            flight.evicted.get(),
            0,
            "seed {seed}: ring evicted events; cross-check would be partial"
        );

        let traces = flight.reconstruct();

        // Every known marker: workload + flush (delivered at rail dst)
        // and phase-2 replies (delivered back at rail src).
        let rebuilt = build(&spec);
        let mut known: Vec<(u64, u32)> = Vec::new();
        for rail in &rebuilt.rails {
            for &m in &rail.markers {
                known.push((m, report.marker_hits.get(&m).copied().unwrap_or(0)));
            }
            let f = rail.flush_marker;
            known.push((f, report.marker_hits.get(&f).copied().unwrap_or(0)));
        }
        for &m in &report.replies_expected {
            known.push((m, report.reply_hits.get(&m).copied().unwrap_or(0)));
        }

        let delivered_events = |key: u64| -> u32 {
            traces
                .iter()
                .find(|t| t.key == key)
                .map(|t| {
                    t.events
                        .iter()
                        .filter(|e| e.kind == HopKind::Delivered)
                        .count() as u32
                })
                .unwrap_or(0)
        };

        let mut excess = 0u64;
        for &(m, hits) in &known {
            let ev = delivered_events(m);
            assert!(
                ev >= hits,
                "seed {seed}: marker {m:#x} has {hits} ledger hits but only {ev} Delivered events"
            );
            excess += u64::from(ev - hits);

            if hits > 0 && report.chan_corrupted == 0 {
                let t = traces
                    .iter()
                    .find(|t| t.key == m)
                    .expect("delivered marker has a trace");
                assert!(
                    t.is_complete(),
                    "seed {seed}: delivered marker {m:#x} trace is not inject→delivered: {:?}",
                    t.events
                );
            }
        }
        assert!(
            excess <= report.corrupted_delivered + report.chan_corrupted,
            "seed {seed}: {excess} Delivered events beyond ledger hits, but only {} corrupted \
             deliveries / {} corrupted copies can explain them",
            report.corrupted_delivered,
            report.chan_corrupted,
        );

        // Telescoping: per-hop spans tile every complete trace exactly.
        for t in &traces {
            if let Some(e2e) = t.end_to_end_ns() {
                let sum: u64 = t.hops().iter().map(|h| h.exit_ns - h.enter_ns).sum();
                assert_eq!(
                    sum, e2e,
                    "seed {seed}: key {:#x}: hop spans sum to {sum} ns, end-to-end is {e2e} ns",
                    t.key
                );
            }
        }

        // Drop events are a subset of the ledger's node drops.
        let drop_events: u64 = traces
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| matches!(e.kind, HopKind::Drop(_)))
            .count() as u64;
        assert!(
            drop_events <= report.node_drops,
            "seed {seed}: {drop_events} Drop hop events but ledger counts only {} node drops",
            report.node_drops
        );
    }
}

/// The cross-check must not be vacuous: across the 16 seeds, traces
/// must actually contain deliveries, multi-hop routes, and at least one
/// drop or truncated trace somewhere — otherwise a recorder that logs
/// nothing would pass every assertion above.
#[test]
fn sixteen_seed_corpus_exercises_the_recorder() {
    let (mut complete, mut hops, mut drops) = (0u64, 0u64, 0u64);
    for seed in 0..16u64 {
        let spec = Scenario::from_seed(seed, Profile::Exact);
        let mut built = build(&spec);
        built.sim.enable_flight(FLIGHT_CAP);
        let (_, flight) = run_traced(built);
        for t in flight.expect("recorder was enabled").reconstruct() {
            if t.is_complete() {
                complete += 1;
                hops += t.nodes_visited() as u64;
            }
            if t.was_dropped() {
                drops += 1;
            }
        }
    }
    assert!(complete > 16, "corpus barely delivers ({complete} traces)");
    assert!(
        hops > 3 * complete,
        "complete traces average under 3 nodes — instrumentation holes"
    );
    assert!(drops > 0, "no trace ever recorded a drop across 16 seeds");
}
