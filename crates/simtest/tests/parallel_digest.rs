//! Digest-equality invariants for the sharded engine (ISSUE 7):
//!
//! * `shards=1` is byte-identical to the serial engine on the chaos
//!   scenario corpus (32 seeds) — the golden-fixture guarantee;
//! * the RNG-free topo workload digests identically serial vs sharded
//!   at shard counts {1, 2, 4, 8} and thread counts {1, 2, 4} — the
//!   shard-count independence satellite (32 seeds);
//! * a fixed shard count digests identically across thread counts
//!   {1, 2, 4, 8} on the full chaos scenario corpus — thread schedules
//!   can never leak into results;
//! * merged per-shard telemetry equals the serial scrape at `shards=1`
//!   and is invariant to when the merge happens at `shards>1`.

use sirpent_sim::{ShardedSimulator, SimTime};
use sirpent_simtest::scenario;
use sirpent_simtest::topo::{self, TopoSpec};
use sirpent_simtest::{Profile, Scenario};

#[test]
fn single_shard_scenario_digest_matches_serial_32_seeds() {
    for seed in 0..32u64 {
        let spec = Scenario::from_seed(seed, Profile::Corpus);
        let serial = scenario::execute(&spec);
        let sharded = scenario::execute_sharded(&spec, 1, 1);
        assert_eq!(
            serial.digest, sharded.digest,
            "shards=1 diverged from serial on seed {seed}"
        );
    }
}

#[test]
fn topo_digest_is_shard_count_invariant_32_seeds() {
    for seed in 0..32u64 {
        let spec = TopoSpec::from_seed(seed);
        let serial = topo::execute(&spec);
        for shards in [1usize, 2, 4, 8] {
            for threads in [1usize, 2, 4] {
                let parallel = topo::execute_sharded(&spec, shards, threads);
                assert_eq!(
                    serial, parallel,
                    "seed {seed}: digest changed at shards={shards} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn topo_sharded_run_twice_is_identical() {
    let spec = TopoSpec::from_seed(77);
    assert_eq!(
        topo::execute_sharded(&spec, 4, 4),
        topo::execute_sharded(&spec, 4, 4)
    );
}

#[test]
fn scenario_digest_is_thread_count_invariant() {
    // Fixed shard count, varying worker threads, full chaos corpus:
    // RNG streams differ from serial at shards>1 (per-shard streams),
    // but must be bit-stable across thread counts.
    for seed in 0..12u64 {
        let spec = Scenario::from_seed(seed, Profile::Corpus);
        let base = scenario::execute_sharded(&spec, 4, 1);
        for threads in [2usize, 4, 8] {
            let run = scenario::execute_sharded(&spec, 4, threads);
            assert_eq!(
                base.digest, run.digest,
                "seed {seed}: digest changed at threads={threads}"
            );
        }
    }
}

#[test]
fn merged_telemetry_equals_serial_scrape_at_one_shard() {
    for seed in 0..8u64 {
        let spec = TopoSpec::from_seed(seed);
        let mut serial = topo::build(&spec);
        serial.run_until(SimTime(spec.horizon_ns));
        let want = serial.scrape_telemetry().expect("serial scrape").to_json();

        let mut sharded = ShardedSimulator::split(topo::build(&spec), 1);
        sharded.run_until(SimTime(spec.horizon_ns), 4);
        let got = sharded
            .scrape_telemetry()
            .expect("sharded scrape")
            .to_json();
        assert_eq!(want, got, "seed {seed}: shards=1 scrape diverged");
    }
}

#[test]
fn pre_merge_scrape_equals_post_merge_scrape() {
    // Scraping the live sharded engine (registry absorb in shard order)
    // must agree with scraping the re-merged serial simulator: same
    // counters, same stable JSON key order.
    for seed in 0..8u64 {
        let spec = TopoSpec::from_seed(seed);
        let mut sharded = ShardedSimulator::split(topo::build(&spec), 4);
        sharded.run_until(SimTime(spec.horizon_ns), 4);
        let live = sharded.scrape_telemetry().expect("live scrape").to_json();
        let merged = sharded.into_serial();
        let after = merged.scrape_telemetry().expect("merged scrape").to_json();
        assert_eq!(live, after, "seed {seed}: merge changed the scrape");
    }
}
