//! The soak corpus (satellite 6 / CI `simtest-soak`): 100 fixed seeds
//! through the full corpus profile — mixed VIPER/IP/CVC rails,
//! duplication windows, error bursts, crashes, partitions. Every seed
//! must satisfy the set-based invariants and reproduce its digest on a
//! second run. A failing seed is shrunk and written to
//! `target/simtest/` so CI can upload the reproducer.

use sirpent_simtest::scenario::execute;
use sirpent_simtest::{check_corpus, shrink, write_fixture, Profile, Scenario};

#[test]
fn corpus_100_seeds_hold_all_invariants() {
    let mut failures = Vec::new();
    for seed in 0..100u64 {
        let spec = Scenario::from_seed(seed, Profile::Corpus);
        if let Some(err) = check_corpus(&spec) {
            let small = shrink(&spec, &|s| check_corpus(s));
            let path = write_fixture(&small, &format!("shrunk_corpus_{seed}.txt"))
                .expect("fixture written");
            failures.push(format!(
                "seed {seed}: {err}\n  shrunk reproducer: {}",
                path.display()
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "corpus failures:\n{}",
        failures.join("\n")
    );
}

/// The corpus must actually exercise the chaos layer — deliveries,
/// drops, chaos-layer kills, corruption, trailer replies, and
/// in-network failover diversions all have to occur somewhere in the
/// 100 seeds, or a regression that silently disables fault injection
/// (or the alternate-branch machinery) would pass every invariant
/// vacuously.
#[test]
fn corpus_is_not_vacuous() {
    let (mut delivered, mut drops, mut chaos, mut corrupted, mut replies, mut reply_hits) =
        (0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
    let (mut protected_rails, mut diversions, mut diverted_flows) = (0u64, 0u64, 0u64);
    for seed in 0..100u64 {
        let spec = Scenario::from_seed(seed, Profile::Corpus);
        protected_rails += spec.rails.iter().filter(|r| r.protected).count() as u64;
        let r = execute(&spec);
        delivered += r.delivered_frames;
        drops += r.node_drops + r.chan_drops;
        chaos += r.chaos_drops;
        corrupted += r.chan_corrupted;
        replies += r.replies_expected.len() as u64;
        reply_hits += r.reply_hits.values().map(|&n| n as u64).sum::<u64>();
        diversions += r.diversions;
        diverted_flows += r
            .reply_book
            .iter()
            .filter(|b| b.protected && (b.dst_port != 0 || b.forward_hops.contains(&4)))
            .count() as u64;
    }
    assert!(delivered > 100, "corpus barely delivers ({delivered})");
    assert!(drops > 0, "no node/channel drops across the whole corpus");
    assert!(chaos > 0, "the chaos layer never killed a frame");
    assert!(corrupted > 0, "the fault injector never corrupted a copy");
    assert!(replies > 0, "no trailer-derived replies were ever planned");
    assert!(reply_hits >= replies, "some replies were planned but lost");
    assert!(
        protected_rails > 0,
        "the generator never emitted a protected rail"
    );
    assert!(
        diversions > 0,
        "no router ever diverted onto an alternate branch \
         ({protected_rails} protected rails in the corpus) — the \
         failover invariant is running vacuously"
    );
    assert!(
        diverted_flows > 0,
        "{diversions} diversions occurred but no diverted flow completed \
         its round trip — the diverted-reply invariant never fired"
    );
}

/// A scenario replayed from its text fixture is the same run, bit for
/// bit — the contract that makes shrunk reproducers trustworthy.
#[test]
fn fixture_replay_reproduces_digest() {
    for seed in [2u64, 41, 77] {
        let spec = Scenario::from_seed(seed, Profile::Corpus);
        let direct = execute(&spec).digest;
        let replayed =
            Scenario::from_fixture_string(&spec.to_fixture_string()).expect("fixture parses");
        assert_eq!(
            execute(&replayed).digest,
            direct,
            "seed {seed}: fixture replay diverged"
        );
    }
}
