//! Abort ordering under chaos (satellite 3): a receiver must hear that
//! a frame was aborted *strictly before* the instant its last bit would
//! have arrived — otherwise a cut-through consumer could act on a
//! truncated frame it believes is complete. Link-down windows are timed
//! to hit transmissions mid-frame.

use sirpent_router::ScriptedHost;
use sirpent_sim::{ChaosAction, ChaosEvent, FaultSchedule, SimDuration, SimTime, Simulator};
use sirpent_simtest::Sink;

#[test]
fn aborts_land_before_last_bit_under_link_flaps() {
    let mut total_aborts = 0u64;
    for seed in 0..32u64 {
        let mut sim = Simulator::new(seed);
        let src = sim.add_node(Box::new(ScriptedHost::new()));
        let dst = sim.add_node(Box::new(Sink::new()));
        // 1 Mbps: a 200-byte frame spends 1.6 ms on the wire, so the
        // seeded flap windows below cut through transmissions.
        let (fwd, _rev) = sim.p2p(src, 0, dst, 0, 1_000_000, SimDuration::from_micros(2));
        {
            let h = sim.node_mut::<ScriptedHost>(src);
            for k in 0..20u64 {
                h.plan(SimTime(k * 2_000_000), 0, vec![0xAB; 200]);
            }
        }
        ScriptedHost::start(&mut sim, src);

        // Two deterministic, seed-derived down windows inside the send
        // burst (0–40 ms).
        let a_us = 500 + (seed * 137) % 3_000;
        let b_us = a_us + 300 + (seed * 29) % 2_000;
        let c_us = 15_000 + (seed * 211) % 10_000;
        let d_us = c_us + 500 + (seed * 61) % 3_000;
        let events = vec![
            ChaosEvent {
                at: SimTime(a_us * 1_000),
                action: ChaosAction::LinkDown { ch: fwd },
            },
            ChaosEvent {
                at: SimTime(b_us * 1_000),
                action: ChaosAction::LinkUp { ch: fwd },
            },
            ChaosEvent {
                at: SimTime(c_us * 1_000),
                action: ChaosAction::LinkDown { ch: fwd },
            },
            ChaosEvent {
                at: SimTime(d_us * 1_000),
                action: ChaosAction::LinkUp { ch: fwd },
            },
        ];
        sim.install_schedule(FaultSchedule::new(events).expect("valid schedule"));
        sim.run_until(SimTime(200_000_000));

        let sink = sim.node::<Sink>(dst);
        for &(fid, at) in &sink.aborts {
            let (_, first_bit, last_bit) = *sink
                .frames
                .iter()
                .find(|(id, _, _)| *id == fid)
                .expect("abort refers to an announced frame");
            assert!(
                at < last_bit,
                "seed {seed}: abort for frame {fid:?} delivered at {at:?}, \
                 not strictly before its last bit {last_bit:?}"
            );
            assert!(
                at >= first_bit,
                "seed {seed}: abort for frame {fid:?} delivered at {at:?}, \
                 before its first bit {first_bit:?}"
            );
        }
        total_aborts += sink.aborts.len() as u64;

        // Channel accounting matches what the sink observed.
        assert_eq!(
            sim.channel_stats(fwd).aborts,
            sink.aborts.len() as u64,
            "seed {seed}: channel abort count disagrees with the receiver"
        );
    }
    assert!(
        total_aborts > 0,
        "no flap window ever caught a frame mid-wire; the test exercises nothing"
    );
}
