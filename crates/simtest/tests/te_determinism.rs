//! The TE determinism suite: the heavy-traffic workload must be a pure
//! function of its spec at every level.
//!
//! * **Plan determinism, 32 seeds** — `te::plan` run twice on the same
//!   spec yields byte-identical output: same `routes_digest` (an
//!   order-sensitive fold over every k-route set the directory
//!   returned) and the same flows, formatted to strings so any
//!   divergence in placement, route choice, or timing is caught.
//! * **Shard invariance** — the same planned crowd executed on the
//!   serial engine and on the conservative time-window engine at 2 and
//!   4 shards produces one digest. The `te-soak` CI gate replays this
//!   at 10k-node scale; here a seed sweep covers it at property scale.
//! * **k-independence** — shortest-path-only planning (`k = 1`) agrees
//!   with the first route of the k-constrained plan on hop counts,
//!   because the constrained search's weight is load-blind and sorted
//!   best-first.

use sirpent_simtest::te;
use sirpent_simtest::TeWorkload;

#[test]
fn plan_is_byte_identical_across_32_seeds() {
    for seed in 0u64..32 {
        let spec = TeWorkload::small(seed);
        let a = te::plan(&spec);
        let b = te::plan(&spec);
        assert_eq!(
            a.routes_digest, b.routes_digest,
            "seed {seed}: directory returned different k-route sets"
        );
        assert_eq!(
            format!("{:?}", a.flows),
            format!("{:?}", b.flows),
            "seed {seed}: flow plans diverge"
        );
        assert_eq!(
            (a.unroutable, a.detours, a.queries, a.epoch),
            (b.unroutable, b.detours, b.queries, b.epoch),
            "seed {seed}: plan statistics diverge"
        );
        assert!(
            !a.flows.is_empty(),
            "seed {seed}: vacuous — no flow was planned"
        );
    }
}

#[test]
fn run_digest_is_shard_count_invariant() {
    for seed in [3u64, 17, 29, 41] {
        let spec = TeWorkload::small(seed);
        let plan = te::plan(&spec);
        let serial = te::run(&spec, &plan, 1, 1);
        assert!(
            serial.delivered_pkts > 0,
            "seed {seed}: vacuous — nothing was delivered"
        );
        for shards in [2usize, 4] {
            let sharded = te::run(&spec, &plan, shards, 1);
            assert_eq!(
                serial.digest, sharded.digest,
                "seed {seed}: digest diverges at {shards} shards"
            );
            assert_eq!(
                serial.delivered_pkts, sharded.delivered_pkts,
                "seed {seed}: delivery count diverges at {shards} shards"
            );
        }
    }
}

#[test]
fn first_constrained_route_matches_shortest_path() {
    for seed in [5u64, 23] {
        let spec = TeWorkload::small(seed);
        let sp = te::plan(&spec.shortest_path_only());
        let full = te::plan(&spec);
        // Same placements (src, dst, size) regardless of k — route
        // choice must not perturb the workload itself.
        let sp_keys: Vec<(usize, usize, u32)> =
            sp.flows.iter().map(|f| (f.src, f.dst, f.pkts)).collect();
        let full_keys: Vec<(usize, usize, u32)> =
            full.flows.iter().map(|f| (f.src, f.dst, f.pkts)).collect();
        assert_eq!(sp_keys, full_keys, "seed {seed}: workloads diverge with k");
        // And the stretch base every flow records is the k=1 hop count.
        for (a, b) in sp.flows.iter().zip(full.flows.iter()) {
            assert_eq!(
                a.hops, b.sp_hops,
                "seed {seed}: sp_hops is not the shortest-path hop count"
            );
        }
    }
}
