//! The failover differential suite (satellite 2 / CI `failover-soak`):
//! every scenario runs twice on the *same* topology, workload, and
//! fault schedule — once with alternate branches armed in the headers
//! (the Slick-Packets DAG) and once with them stripped (plain linear
//! source routes). The pair pins three properties:
//!
//! 1. **Conservation closes in both arms** — arming headers must not
//!    open a leak in the packet ledger.
//! 2. **Alternates only help** — under a deterministic single-fault
//!    schedule, every marker the stripped arm delivers, the armed arm
//!    delivers too; in the hand-built scenario the armed arm delivers
//!    packets the stripped arm provably loses.
//! 3. **No fault, no difference** — with an empty fault schedule the
//!    two arms produce byte-identical *outcome* digests (deliveries,
//!    replies, diversions), so the alternate machinery is inert until
//!    a failure actually occurs.

use sirpent_simtest::spec::{FaultSpec, PacketSpec, Profile, RailKind, RailSpec, Scenario};
use sirpent_simtest::{execute, execute_stripped, outcome_digest};

/// Derive a differential-safe scenario from a seed: deterministic
/// frames only (no random drop/corruption — those draw per-transmission
/// RNG, and the two arms transmit different byte counts), every VIPER
/// rail protected, and at most one link-flap or crash fault. Jitter,
/// partitions, and second faults are discarded: they can punish the
/// armed arm's longer frames (or its bypass wires) for reasons that
/// have nothing to do with the failover logic under test.
fn differential_scenario(seed: u64) -> Scenario {
    let mut s = Scenario::from_seed(seed, Profile::Exact);
    for r in &mut s.rails {
        r.drop_pm = 0;
        r.corrupt_pm = 0;
        if matches!(r.kind, RailKind::ViperSf | RailKind::ViperCut) {
            r.protected = true;
        }
    }
    let keep = s
        .faults
        .iter()
        .find(|f| matches!(f, FaultSpec::LinkFlap { .. } | FaultSpec::Crash { .. }))
        .cloned();
    s.faults = keep.into_iter().collect();
    s.normalize();
    s
}

fn assert_conserves(arm: &str, seed: u64, r: &sirpent_simtest::RunReport) {
    let accounted =
        r.delivered_frames + r.node_drops + r.chan_drops + r.chaos_drops + r.leftover_queued;
    assert_eq!(
        r.injected,
        accounted,
        "seed {seed} ({arm}): injected {} but accounted {} (delivered {} node {} \
         chan {} chaos {} queued {})",
        r.injected,
        accounted,
        r.delivered_frames,
        r.node_drops,
        r.chan_drops,
        r.chaos_drops,
        r.leftover_queued
    );
}

/// 32 seeds, armed vs stripped under the identical single-fault
/// schedule: conservation closes in both arms, the armed arm delivers a
/// superset of the stripped arm's markers and answers a superset of its
/// replies, and at least one seed in the batch actually diverts.
#[test]
fn armed_arm_dominates_stripped_arm_over_32_seeds() {
    let mut total_diversions = 0u64;
    for seed in 0..32u64 {
        let spec = differential_scenario(seed);
        let armed = execute(&spec);
        let stripped = execute_stripped(&spec);

        assert_conserves("armed", seed, &armed);
        assert_conserves("stripped", seed, &stripped);
        // (`injected` counts phase-2 replies too, so the arms may
        // legitimately differ there — more deliveries, more replies.)
        assert_eq!(
            stripped.diversions, 0,
            "seed {seed}: the stripped arm diverted — alternates leaked \
             into the control headers"
        );

        for (m, &hits) in &stripped.marker_hits {
            let armed_hits = armed.marker_hits.get(m).copied().unwrap_or(0);
            assert!(
                armed_hits >= hits,
                "seed {seed}: marker {m:016x} delivered {hits}x stripped but \
                 only {armed_hits}x armed — alternates made delivery worse"
            );
        }
        assert!(
            armed.delivered_frames >= stripped.delivered_frames,
            "seed {seed}: armed delivered {} < stripped {}",
            armed.delivered_frames,
            stripped.delivered_frames
        );
        for m in &stripped.replies_expected {
            if stripped.reply_hits.get(m).copied().unwrap_or(0) > 0 {
                assert!(
                    armed.reply_hits.get(m).copied().unwrap_or(0) > 0,
                    "seed {seed}: reply {m:016x} completed stripped but not armed"
                );
            }
        }
        total_diversions += armed.diversions;
    }
    assert!(
        total_diversions > 0,
        "32 differential seeds and not one in-network diversion — the \
         suite is running vacuously"
    );
}

/// The flagship deterministic case: a 3-router protected VIPER rail
/// whose R2→R3 link is down for the entire injection window. Every
/// workload packet reaches R2 while its primary next hop is dead; the
/// armed arm diverts each one onto R2's bypass (straight to the
/// destination) and completes the round trip, while the stripped arm
/// loses every single one to `next_hop_down`.
#[test]
fn armed_arm_delivers_what_stripped_arm_provably_loses() {
    let packets: Vec<PacketSpec> = (0..4u64)
        .map(|i| PacketSpec {
            at_us: 2_000 + i * 3_000,
            payload_len: 200,
            marker: 0xD1FF_0000_0000_0A00 | i,
        })
        .collect();
    let markers: Vec<u64> = packets.iter().map(|p| p.marker).collect();
    let mut spec = Scenario {
        seed: 0x0FA1_10E4,
        rails: vec![RailSpec {
            kind: RailKind::ViperSf,
            routers: 3,
            drop_pm: 0,
            corrupt_pm: 0,
            protected: true,
            packets,
        }],
        faults: vec![FaultSpec::LinkFlap {
            rail: 0,
            hop: 2,
            down_us: 200,
            up_us: 30_000,
        }],
    };
    spec.normalize();

    let armed = execute(&spec);
    let stripped = execute_stripped(&spec);
    assert_conserves("armed", spec.seed, &armed);
    assert_conserves("stripped", spec.seed, &stripped);

    for m in &markers {
        assert_eq!(
            armed.marker_hits.get(m).copied().unwrap_or(0),
            1,
            "armed arm failed to deliver marker {m:016x} around the dead link"
        );
        assert_eq!(
            stripped.marker_hits.get(m).copied().unwrap_or(0),
            0,
            "stripped arm delivered marker {m:016x} across a link that was down"
        );
        let reply = m ^ 0xA5A5_5A5A_A5A5_5A5A;
        assert!(
            armed.reply_hits.get(&reply).copied().unwrap_or(0) > 0,
            "diverted flow {m:016x} never completed its round trip"
        );
    }
    assert!(
        armed.diversions >= markers.len() as u64,
        "expected at least {} diversions, counted {}",
        markers.len(),
        armed.diversions
    );
    assert_eq!(stripped.diversions, 0);
}

/// With no faults scheduled, arming the headers must change *nothing*
/// observable about outcomes: same deliveries, same replies, zero
/// diversions — byte-identical outcome digests.
#[test]
fn quiet_network_outcome_digests_are_byte_identical() {
    for seed in [7u64, 19, 23, 31] {
        let mut spec = differential_scenario(seed);
        spec.faults.clear();
        let armed = execute(&spec);
        let stripped = execute_stripped(&spec);
        assert_eq!(
            outcome_digest(&armed),
            outcome_digest(&stripped),
            "seed {seed}: a fault-free network told the two arms apart"
        );
        assert_eq!(
            armed.diversions, 0,
            "seed {seed}: diversion without a fault"
        );
    }
}
