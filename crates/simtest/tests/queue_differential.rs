//! Heap-vs-calendar differential suite, scenario level: the engine's
//! calendar queue must be observationally identical to the reference
//! `BinaryHeap` — not just same pop order in isolation, but identical
//! byte-exact digests through full scenarios (same-instant bursts,
//! store-and-forward timers, chaos crashes/partitions/duplication all
//! interleaved). 32 corpus seeds on each queue implementation.

use sirpent_sim::QueueKind;
use sirpent_simtest::{execute_with_queue, Profile, Scenario};

#[test]
fn digests_identical_heap_vs_calendar_32_seeds() {
    for seed in 0..32u64 {
        let spec = Scenario::from_seed(seed, Profile::Corpus);
        let heap = execute_with_queue(&spec, QueueKind::Heap);
        let wheel = execute_with_queue(&spec, QueueKind::Calendar);
        assert_eq!(
            heap.digest, wheel.digest,
            "seed {seed}: calendar queue diverged from reference heap"
        );
        assert_eq!(
            heap.delivered_frames, wheel.delivered_frames,
            "seed {seed}: delivery count diverged"
        );
    }
}

#[test]
fn exact_profile_digests_identical_heap_vs_calendar() {
    // The Exact profile drives the invariant-checked VIPER/IP rails the
    // golden fixtures use — divergence here would also break fixtures.
    for seed in 0..32u64 {
        let spec = Scenario::from_seed(seed, Profile::Exact);
        let heap = execute_with_queue(&spec, QueueKind::Heap);
        let wheel = execute_with_queue(&spec, QueueKind::Calendar);
        assert_eq!(
            heap.digest, wheel.digest,
            "seed {seed}: calendar queue diverged from reference heap"
        );
    }
}
