//! Sirpent over IP (§2.3): source-routed traffic crossing a cloud of
//! standard store-and-forward IP routers as one logical hop, including
//! trailer-built replies re-crossing the cloud.

use sirpent::host::{HostPortKind, SirpentHost};
use sirpent::interop::{GatewayConfig, IpGateway, IPPROTO_SIRPENT};
use sirpent::router::ip::{IpConfig, IpPortConfig, IpRouter, RouteEntry};
use sirpent::router::viper::PortKind;
use sirpent::sim::{SimDuration, SimTime};
use sirpent::wire::ipish::Address;
use sirpent::wire::viper::{Flags, Priority, SegmentRepr, PORT_LOCAL};
use sirpent::wire::vmtp::EntityId;
use sirpent::{CompiledRoute, Net};

const RATE: u64 = 10_000_000;
const PROP: SimDuration = SimDuration(10_000);

const GW1_IP: Address = Address(0x0A000101); // 10.0.1.1
const GW2_IP: Address = Address(0x0A000201); // 10.0.2.1
const ENCAP_TO_GW2: u8 = 100; // GW1's logical port across the cloud
const ENCAP_TO_GW1: u8 = 100; // GW2's logical port back

/// host A — GW1 — [IP router] — GW2 — host B.
#[test]
fn sirpent_crosses_ip_cloud_and_reply_returns() {
    let mut net = Net::new(55);
    let a = net.host(0xA, vec![(0, HostPortKind::PointToPoint)]);
    let b = net.host(0xB, vec![(0, HostPortKind::PointToPoint)]);
    let gw1 = net.sim.add_node(Box::new(IpGateway::new(GatewayConfig {
        my_ip: GW1_IP,
        ip_port: 2,
        encap_map: vec![(ENCAP_TO_GW2, GW2_IP)],
        local_ports: vec![1],
        process_delay: SimDuration::from_micros(30),
        ttl: 16,
    })));
    let gw2 = net.sim.add_node(Box::new(IpGateway::new(GatewayConfig {
        my_ip: GW2_IP,
        ip_port: 2,
        encap_map: vec![(ENCAP_TO_GW1, GW1_IP)],
        local_ports: vec![1],
        process_delay: SimDuration::from_micros(30),
        ttl: 16,
    })));
    // One IP router in the middle of the cloud.
    let cloud = net.sim.add_node(Box::new(
        IpRouter::new(IpConfig {
            process_delay: SimDuration::from_micros(50),
            ports: vec![
                IpPortConfig {
                    port: 1,
                    kind: PortKind::PointToPoint,
                    mtu: 1600,
                },
                IpPortConfig {
                    port: 2,
                    kind: PortKind::PointToPoint,
                    mtu: 1600,
                },
            ],
            routes: vec![
                RouteEntry {
                    prefix: GW2_IP,
                    prefix_len: 24,
                    out_port: 2,
                    next_hop_mac: None,
                },
                RouteEntry {
                    prefix: GW1_IP,
                    prefix_len: 24,
                    out_port: 1,
                    next_hop_mac: None,
                },
            ],
            queue_capacity: 64,
        })
        .expect("ip config"),
    ));
    net.p2p(a, 0, gw1, 1, RATE, PROP);
    net.p2p(gw1, 2, cloud, 1, RATE, PROP);
    net.p2p(cloud, 2, gw2, 2, RATE, PROP);
    net.p2p(gw2, 1, b, 0, RATE, PROP);
    let mut sim = net.into_sim();

    // A's route: [GW1: across the cloud][GW2: out local port 1][local].
    let route = CompiledRoute {
        host_port: 0,
        first_eth: None,
        segments: vec![
            SegmentRepr {
                port: ENCAP_TO_GW2,
                flags: Flags {
                    vnt: true,
                    ..Default::default()
                },
                ..Default::default()
            },
            SegmentRepr {
                port: 1,
                flags: Flags {
                    vnt: true,
                    ..Default::default()
                },
                ..Default::default()
            },
            SegmentRepr {
                port: PORT_LOCAL,
                priority: Priority::NORMAL,
                ..Default::default()
            },
        ],
        recovery: vec![],
        path_mtu: 1400,
        base_rtt: SimDuration::from_millis(5),
        router_ids: vec![],
    };
    sim.node_mut::<SirpentHost>(a)
        .install_routes(EntityId(0xB), vec![route]);
    sim.node_mut::<SirpentHost>(b).echo = true;
    sim.node_mut::<SirpentHost>(a).queue_request(
        SimTime::ZERO,
        EntityId(0xB),
        b"across the internet".to_vec(),
    );
    SirpentHost::start(&mut sim, a);
    sim.run_until(SimTime(100_000_000));

    // B got the request; A got the echo back — all via the cloud.
    let server = sim.node::<SirpentHost>(b);
    assert_eq!(server.inbox.len(), 1);
    assert_eq!(server.inbox[0].message, b"across the internet");

    let client = sim.node::<SirpentHost>(a);
    assert_eq!(client.inbox.len(), 1, "reply recrossed the cloud");
    assert_eq!(client.inbox[0].message, b"across the internet");

    // Gateways actually encapsulated/decapsulated (both directions:
    // request + its ack + response + its ack = ≥2 each way).
    let g1 = sim.node::<IpGateway>(gw1);
    let g2 = sim.node::<IpGateway>(gw2);
    assert!(g1.stats.encapsulated >= 2, "{:?}", g1.stats);
    assert!(g1.stats.decapsulated >= 2);
    assert!(g2.stats.encapsulated >= 2);
    assert!(g2.stats.decapsulated >= 2);
    assert_eq!(g1.stats.dropped, 0);

    // The IP router in the cloud did standard IP work on every crossing.
    let c = sim.node::<IpRouter>(cloud);
    assert!(c.stats.forwarded >= 4);
    assert_eq!(c.stats.total_drops(), 0);
}

/// Wrong-protocol and wrong-address datagrams are dropped at the
/// gateway, not misinterpreted.
#[test]
fn gateway_rejects_foreign_datagrams() {
    use sirpent::router::link::LinkFrame;
    use sirpent::router::scripted::ScriptedHost;
    use sirpent::wire::ipish;

    let mut net = Net::new(56);
    let outsider = net.sim.add_node(Box::new(ScriptedHost::new()));
    let gw = net.sim.add_node(Box::new(IpGateway::new(GatewayConfig {
        my_ip: GW1_IP,
        ip_port: 2,
        encap_map: vec![(ENCAP_TO_GW2, GW2_IP)],
        local_ports: vec![1],
        process_delay: SimDuration::from_micros(10),
        ttl: 16,
    })));
    net.p2p(outsider, 0, gw, 2, RATE, PROP);
    let mut sim = net.into_sim();

    // Datagram with the right address but a foreign protocol.
    let mut d1 = ipish::Repr {
        tos: 0,
        total_len: (ipish::HEADER_LEN + 4) as u16,
        ident: 1,
        dont_frag: false,
        more_frags: false,
        frag_offset: 0,
        ttl: 9,
        protocol: 17, // UDP-ish, not Sirpent
        src: GW2_IP,
        dst: GW1_IP,
    }
    .to_bytes();
    d1.extend_from_slice(&[1, 2, 3, 4]);
    // Datagram with the Sirpent protocol but addressed elsewhere.
    let mut d2 = ipish::Repr {
        tos: 0,
        total_len: (ipish::HEADER_LEN + 4) as u16,
        ident: 2,
        dont_frag: false,
        more_frags: false,
        frag_offset: 0,
        ttl: 9,
        protocol: IPPROTO_SIRPENT,
        src: GW2_IP,
        dst: Address(0x0A00FFFF),
    }
    .to_bytes();
    d2.extend_from_slice(&[1, 2, 3, 4]);

    {
        let h = sim.node_mut::<ScriptedHost>(outsider);
        h.plan(SimTime::ZERO, 0, LinkFrame::Ipish(d1).to_p2p_bytes());
        h.plan(SimTime(1_000_000), 0, LinkFrame::Ipish(d2).to_p2p_bytes());
    }
    ScriptedHost::start(&mut sim, outsider);
    sim.run_until(SimTime(10_000_000));

    let g = sim.node::<IpGateway>(gw);
    assert_eq!(g.stats.dropped, 2);
    assert_eq!(g.stats.decapsulated, 0);
}
