//! TE end to end: the directory computes k constrained routes on its
//! weighted topology, the client compiles and installs them *weighted by
//! advertised residual capacity*, and per-transaction re-selection
//! spreads flows across both physical paths instead of piling onto one.

use sirpent::compile::CompiledRoute;
use sirpent::directory::te::{LinkMetrics, TeQuery};
use sirpent::directory::{AccessSpec, Directory, Peer, TeTopology};
use sirpent::host::{HostPortKind, SirpentHost};
use sirpent::router::viper::ViperConfig;
use sirpent::sim::{SimDuration, SimTime};
use sirpent::wire::viper::Priority;
use sirpent::wire::vmtp::EntityId;
use sirpent::Net;

const MBPS_10: u64 = 10_000_000;
const PROP: SimDuration = SimDuration(5_000);

#[test]
fn weighted_routes_spread_transactions_across_parallel_links() {
    // client — R1 — server over two parallel R1→server links (ports 2
    // and 3). The directory's TE view knows both.
    let mut net = Net::new(7);
    let a = net.host(0xA, vec![(0, HostPortKind::PointToPoint)]);
    let b = net.host(
        0xB,
        vec![
            (0, HostPortKind::PointToPoint),
            (1, HostPortKind::PointToPoint),
        ],
    );
    let r1 = net.viper(ViperConfig::basic(1, &[1, 2, 3]));
    net.p2p(a, 0, r1, 1, MBPS_10, PROP);
    let (up_a, _) = net.sim.p2p(r1, 2, b, 0, MBPS_10, PROP);
    let (up_b, _) = net.sim.p2p(r1, 3, b, 1, MBPS_10, PROP);
    let mut sim = net.into_sim();

    let mut te = TeTopology::new();
    let m = LinkMetrics {
        bandwidth_bps: MBPS_10,
        prop_delay: PROP,
        mtu: 1550,
        cost: 1,
        ..LinkMetrics::basic()
    };
    te.add_link(1, 2, Peer::Host(0xB), m);
    te.add_link(1, 3, Peer::Host(0xB), m);
    let mut dir = Directory::new().with_te(te);
    // Port 2 already carries some background load: its residual — and
    // hence its share of new flows — is smaller.
    dir.report_load(1, 2, 0.5);

    let access = AccessSpec {
        host_port: 0,
        ethernet_next: None,
        bandwidth_bps: MBPS_10,
        prop_delay: PROP,
        mtu: 1550,
    };
    let advs = dir.te_advisories(
        1,
        Peer::Host(0xB),
        &TeQuery {
            k: 2,
            ..TeQuery::default()
        },
        &access,
        &[],
        1,
    );
    assert_eq!(advs.len(), 2, "both parallel links granted");
    let weighted: Vec<(CompiledRoute, u64)> = advs
        .iter()
        .map(|adv| {
            (
                CompiledRoute::compile(&adv.route, &adv.tokens, Priority::NORMAL),
                adv.residual_bps,
            )
        })
        .collect();
    assert_ne!(weighted[0].1, weighted[1].1, "residuals differ under load");

    const N: u64 = 40;
    {
        let c = sim.node_mut::<SirpentHost>(a);
        c.install_routes_weighted(EntityId(0xB), weighted);
        for i in 0..N {
            c.queue_request(SimTime(i * 5_000_000), EntityId(0xB), vec![9; 64]);
        }
    }
    sim.node_mut::<SirpentHost>(b).auto_respond = Some(vec![1; 32]);
    SirpentHost::start(&mut sim, a);
    sim.run_until(SimTime(2_000_000_000));

    let client = sim.node::<SirpentHost>(a);
    assert_eq!(
        client.inbox.len(),
        N as usize,
        "every transaction completed"
    );
    assert!(
        client.route_reselections(EntityId(0xB)) > 0,
        "per-flow weighted selection actually ran"
    );

    let fa = sim.channel_stats(up_a).frames;
    let fb = sim.channel_stats(up_b).frames;
    assert!(fa > 0 && fb > 0, "both links carried flows ({fa}/{fb})");
    assert!(
        fb > fa,
        "the less-loaded link carried more flows (loaded={fa}, idle={fb})"
    );
}
