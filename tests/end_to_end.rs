//! Cross-crate integration: directory-driven routing with tokens, over a
//! multi-hop topology, through the full host transport stack.

use sirpent::compile::CompiledRoute;
use sirpent::directory::{
    AccessSpec, Directory, HopSpec, Name, Preference, RouteRecord, Security, TokenIssue,
};
use sirpent::host::{HostPortKind, SirpentHost};
use sirpent::router::viper::{AuthConfig, ViperConfig, ViperRouter};
use sirpent::sim::{SimDuration, SimTime};
use sirpent::token::{AuthPolicy, TokenMinter};
use sirpent::wire::viper::Priority;
use sirpent::wire::vmtp::EntityId;
use sirpent::Net;

const MBPS_10: u64 = 10_000_000;
const PROP: SimDuration = SimDuration(5_000);

fn hop(router_id: u32, port: u8) -> HopSpec {
    HopSpec {
        router_id,
        port,
        ethernet_next: None,
        bandwidth_bps: MBPS_10,
        prop_delay: PROP,
        mtu: 1550,
        cost: 1,
        security: Security::Controlled,
    }
}

fn access() -> AccessSpec {
    AccessSpec {
        host_port: 0,
        ethernet_next: None,
        bandwidth_bps: MBPS_10,
        prop_delay: PROP,
        mtu: 1550,
    }
}

/// A two-router path, with token-checking routers, routes and tokens
/// obtained from the directory, and a request/response exchange measured
/// end to end.
#[test]
fn directory_tokens_and_transport_compose() {
    let minter = TokenMinter::new(0x0ACE_0F5E_ED00, 9);
    let key1 = minter.router_key(1);
    let key2 = minter.router_key(2);

    let mut net = Net::new(77);
    let a = net.host(0xA, vec![(0, HostPortKind::PointToPoint)]);
    let b = net.host(0xB, vec![(0, HostPortKind::PointToPoint)]);
    let mut cfg1 = ViperConfig::basic(1, &[1, 2]);
    cfg1.auth = Some(AuthConfig {
        key: key1,
        policy: AuthPolicy::Optimistic,
        verify_delay: SimDuration::from_micros(100),
        require_token: true,
    });
    let mut cfg2 = ViperConfig::basic(2, &[1, 2]);
    cfg2.auth = Some(AuthConfig {
        key: key2,
        policy: AuthPolicy::Optimistic,
        verify_delay: SimDuration::from_micros(100),
        require_token: true,
    });
    let r1 = net.viper(cfg1);
    let r2 = net.viper(cfg2);
    net.p2p(a, 0, r1, 1, MBPS_10, PROP);
    net.p2p(r1, 2, r2, 1, MBPS_10, PROP);
    net.p2p(r2, 2, b, 0, MBPS_10, PROP);
    let mut sim = net.into_sim();

    // Directory: register the service and its route, with token issue.
    let mut dir = Directory::new().with_tokens(TokenIssue {
        minter,
        max_priority: Priority::new(5),
        reverse_ok: true,
        byte_limit: 0,
        expiry_s: 0,
    });
    let client_name = Name::parse("client.cs.stanford.edu");
    let service = Name::parse("fileserver.cs.stanford.edu");
    dir.register_route(
        &service,
        Name::parse("stanford.edu"),
        RouteRecord {
            access: access(),
            hops: vec![hop(1, 2), hop(2, 2)],
            endpoint_selector: vec![],
        },
    );

    let result = dir.query(&client_name, &service, Preference::LowDelay, 2, 1001);
    assert_eq!(result.advisories.len(), 1);
    let adv = &result.advisories[0];
    assert_eq!(adv.tokens.len(), 2, "one token per hop");
    assert_eq!(adv.props.hops, 2);

    let route = CompiledRoute::compile(&adv.route, &adv.tokens, Priority::NORMAL);
    assert_eq!(route.router_ids, vec![1, 2]);

    sim.node_mut::<SirpentHost>(a)
        .install_routes(EntityId(0xB), vec![route]);
    sim.node_mut::<SirpentHost>(b).auto_respond = Some(b"file contents".to_vec());
    sim.node_mut::<SirpentHost>(a).queue_request(
        SimTime::ZERO,
        EntityId(0xB),
        b"read file".to_vec(),
    );
    SirpentHost::start(&mut sim, a);
    sim.run(1_000_000);

    // The client got the response; RTT sample collected.
    let client = sim.node::<SirpentHost>(a);
    assert_eq!(client.inbox.len(), 1);
    assert_eq!(client.inbox[0].message, b"file contents");
    assert_eq!(client.rtt_samples.len(), 1);
    let rtt = client.rtt_samples[0].1;
    // Sanity: with cut-through and a small payload, the RTT is a few
    // hundred µs (wire time once per direction + propagation + decision
    // delays) — far below a store-and-forward path, far above zero.
    assert!(
        rtt > SimDuration::from_micros(50) && rtt < SimDuration::from_millis(10),
        "rtt = {rtt}"
    );

    // The server received the request, and never needed a route of its
    // own (the reply used the trailer-built return route, §2).
    let server = sim.node::<SirpentHost>(b);
    assert_eq!(server.inbox.len(), 1);
    assert_eq!(server.inbox[0].message, b"read file");
    assert_eq!(server.stats.responses_sent, 1);

    // Routers verified tokens and accounted the traffic to account 1001.
    for r in [r1, r2] {
        let router = sim.node::<ViperRouter>(r);
        let usage = router.token_cache().unwrap().accounting().usage(1001);
        assert!(
            usage.packets >= 2,
            "request + ack/response legs accounted: {usage:?}"
        );
        assert!(router.stats.token_decrypts >= 1);
    }

    // Directory billing aggregation.
    let mut dir2 = dir;
    for r in [r1, r2] {
        let ledger = sim
            .node::<ViperRouter>(r)
            .token_cache()
            .unwrap()
            .accounting()
            .clone();
        dir2.collect_accounting(&ledger);
    }
    assert!(dir2.billing.usage(1001).bytes > 0);
}

/// The reply path exercises reverse tokens: with `reverse_ok = false`
/// the response is refused at the router.
#[test]
fn reverse_route_requires_reverse_authorization() {
    let run = |reverse_ok: bool| -> usize {
        let minter = TokenMinter::new(0xBEE, 3);
        let key1 = minter.router_key(1);
        let mut net = Net::new(5);
        let a = net.host(0xA, vec![(0, HostPortKind::PointToPoint)]);
        let b = net.host(0xB, vec![(0, HostPortKind::PointToPoint)]);
        let mut cfg = ViperConfig::basic(1, &[1, 2]);
        cfg.auth = Some(AuthConfig {
            key: key1,
            policy: AuthPolicy::Optimistic,
            verify_delay: SimDuration::from_micros(50),
            require_token: true,
        });
        let r1 = net.viper(cfg);
        net.p2p(a, 0, r1, 1, MBPS_10, PROP);
        net.p2p(r1, 2, b, 0, MBPS_10, PROP);
        let mut sim = net.into_sim();

        let mut dir = Directory::new().with_tokens(TokenIssue {
            minter,
            max_priority: Priority::new(5),
            reverse_ok,
            byte_limit: 0,
            expiry_s: 0,
        });
        let service = Name::parse("srv.x");
        dir.register_route(
            &service,
            Name::root(),
            RouteRecord {
                access: access(),
                hops: vec![hop(1, 2)],
                endpoint_selector: vec![],
            },
        );
        let adv = &dir
            .query(&Name::parse("cli.x"), &service, Preference::LowDelay, 1, 7)
            .advisories[0];
        let route = CompiledRoute::compile(&adv.route, &adv.tokens, Priority::NORMAL);

        sim.node_mut::<SirpentHost>(a)
            .install_routes(EntityId(0xB), vec![route]);
        sim.node_mut::<SirpentHost>(b).echo = true;
        sim.node_mut::<SirpentHost>(a)
            .queue_request(SimTime::ZERO, EntityId(0xB), b"hi".to_vec());
        SirpentHost::start(&mut sim, a);
        sim.run_until(SimTime(10_000_000));
        sim.node::<SirpentHost>(a).inbox.len()
    };

    assert_eq!(run(true), 1, "reverse-authorized token: reply arrives");
    // First response packet slips through optimistically (§2.2's
    // accepted worst case), after which the flagged entry blocks the
    // reverse direction — with a single-packet reply the echo still
    // lands, so examine retransmitted/acked behaviour instead: the
    // ack from A back to B also uses the reverse path and gets refused,
    // so B keeps retransmitting.
    // The robust observable: with reverse_ok=false, A's inbox may see
    // the optimistic first packet, but router token rejections occur.
    let _ = run(false); // must not panic; detailed check below.
}

/// Direct check of the reverse-rejection counters.
#[test]
fn reverse_rejections_counted_at_router() {
    let minter = TokenMinter::new(0xBEE2, 4);
    let key1 = minter.router_key(1);
    let mut net = Net::new(6);
    let a = net.host(0xA, vec![(0, HostPortKind::PointToPoint)]);
    let b = net.host(0xB, vec![(0, HostPortKind::PointToPoint)]);
    let mut cfg = ViperConfig::basic(1, &[1, 2]);
    cfg.auth = Some(AuthConfig {
        key: key1,
        policy: AuthPolicy::Drop, // strict: nothing unverified passes
        verify_delay: SimDuration::from_micros(50),
        require_token: true,
    });
    let r1 = net.viper(cfg);
    net.p2p(a, 0, r1, 1, MBPS_10, PROP);
    net.p2p(r1, 2, b, 0, MBPS_10, PROP);
    let mut sim = net.into_sim();

    let mut dir = Directory::new().with_tokens(TokenIssue {
        minter,
        max_priority: Priority::new(5),
        reverse_ok: false, // forward only
        byte_limit: 0,
        expiry_s: 0,
    });
    let service = Name::parse("srv.x");
    dir.register_route(
        &service,
        Name::root(),
        RouteRecord {
            access: access(),
            hops: vec![hop(1, 2)],
            endpoint_selector: vec![],
        },
    );
    let adv = &dir
        .query(&Name::parse("cli.x"), &service, Preference::LowDelay, 1, 7)
        .advisories[0];
    let route = CompiledRoute::compile(&adv.route, &adv.tokens, Priority::NORMAL);

    sim.node_mut::<SirpentHost>(a)
        .install_routes(EntityId(0xB), vec![route]);
    sim.node_mut::<SirpentHost>(b).echo = true;
    sim.node_mut::<SirpentHost>(a)
        .queue_request(SimTime::ZERO, EntityId(0xB), b"hi".to_vec());
    SirpentHost::start(&mut sim, a);
    sim.run_until(SimTime(50_000_000));

    let router = sim.node::<ViperRouter>(r1);
    use sirpent::router::viper::DropReason;
    let rejected = router.stats.drops.get(DropReason::TokenRejected);
    assert!(
        rejected > 0,
        "reverse traffic without reverse_ok must be rejected; drops={:?}",
        router.stats.drops
    );
    assert!(
        sim.node::<SirpentHost>(a).inbox.is_empty(),
        "no response should get back through"
    );
}
