//! §4.2 end to end: timestamp-based lifetime enforcement "requires
//! approximately synchronized clocks among the communicating hosts" —
//! badly skewed clocks break communication, and the modelled
//! synchronization service (the WWV/NTP substitute) restores it.

use sirpent::directory::{AccessSpec, HopSpec, RouteRecord, Security};
use sirpent::host::{HostPortKind, SirpentHost};
use sirpent::router::viper::ViperConfig;
use sirpent::sim::{SimDuration, SimTime};
use sirpent::transport::{HostClock, LifetimeFilter, SyncService};
use sirpent::wire::viper::Priority;
use sirpent::wire::vmtp::EntityId;
use sirpent::{CompiledRoute, Net};

const RATE: u64 = 10_000_000;
const PROP: SimDuration = SimDuration(5_000);

fn route() -> CompiledRoute {
    CompiledRoute::compile(
        &RouteRecord {
            access: AccessSpec {
                host_port: 0,
                ethernet_next: None,
                bandwidth_bps: RATE,
                prop_delay: PROP,
                mtu: 1550,
            },
            hops: vec![HopSpec {
                router_id: 1,
                port: 2,
                ethernet_next: None,
                bandwidth_bps: RATE,
                prop_delay: PROP,
                mtu: 1550,
                cost: 1,
                security: Security::Controlled,
            }],
            endpoint_selector: vec![],
        },
        &[],
        Priority::NORMAL,
    )
}

/// Build the pair with a receiver clock offset of `recv_offset_ms` and a
/// tight 10 s MPL; return deliveries and lifetime rejects.
fn run(recv_offset_ms: i64, sync: bool) -> (usize, u64) {
    let mut net = Net::new(90);
    let mut ep_a = Net::default_endpoint(0xA);
    ep_a.lifetime = LifetimeFilter::steady(10_000, 2_000);
    let mut ep_b = Net::default_endpoint(0xB);
    ep_b.clock = HostClock {
        offset_ms: recv_offset_ms,
        ..HostClock::perfect(1_000_000)
    };
    ep_b.lifetime = LifetimeFilter::steady(10_000, 2_000);

    let a = net.host_with(ep_a, vec![(0, HostPortKind::PointToPoint)]);
    let b = net.host_with(ep_b, vec![(0, HostPortKind::PointToPoint)]);
    let r = net.viper(ViperConfig::basic(1, &[1, 2]));
    net.p2p(a, 0, r, 1, RATE, PROP);
    net.p2p(r, 2, b, 0, RATE, PROP);
    let mut sim = net.into_sim();

    if sync {
        // The synchronization service corrects B before traffic flows
        // ("reliable clock synchronization protocols are available").
        let svc = SyncService { residual_ms: 500 };
        let now = sim.now();
        svc.sync(
            sim.node_mut::<SirpentHost>(b).endpoint_mut().clock_mut(),
            now,
        );
    }

    sim.node_mut::<SirpentHost>(a)
        .install_routes(EntityId(0xB), vec![route()]);
    sim.node_mut::<SirpentHost>(b).echo = true;
    for i in 0..5u64 {
        sim.node_mut::<SirpentHost>(a).queue_request(
            SimTime(i * 5_000_000),
            EntityId(0xB),
            vec![7; 100],
        );
    }
    SirpentHost::start(&mut sim, a);
    sim.run_until(SimTime(3_000_000_000));

    let server = sim.node::<SirpentHost>(b);
    let rejected: u64 = server.endpoint().stats.lifetime_rejected.values().sum();
    (server.inbox.len(), rejected)
}

#[test]
fn synchronized_clocks_communicate() {
    let (delivered, rejected) = run(0, false);
    assert_eq!(delivered, 5);
    assert_eq!(rejected, 0);
}

#[test]
fn badly_fast_receiver_rejects_everything() {
    // Receiver 60 s fast: every fresh packet looks older than the 10 s
    // MPL.
    let (delivered, rejected) = run(60_000, false);
    assert_eq!(delivered, 0, "no request ever accepted");
    assert!(rejected >= 5);
}

#[test]
fn badly_slow_receiver_rejects_everything() {
    // Receiver 60 s slow: fresh packets appear to come from the future,
    // beyond the 2 s sync residual.
    let (delivered, rejected) = run(-60_000, false);
    assert_eq!(delivered, 0);
    assert!(rejected >= 5);
}

#[test]
fn sync_service_restores_communication() {
    // Same broken clock, but the sync service runs first: §4.2's
    // requirement is only "multiple seconds" of accuracy.
    let (delivered, rejected) = run(60_000, true);
    assert_eq!(delivered, 5, "sync brought B within the acceptance window");
    assert_eq!(rejected, 0);
}
