//! End-to-end reliability: multi-packet messages over lossy links are
//! recovered by selective retransmission (§4.3), and the failure modes
//! Sirpent accepts (truncation, corruption) surface at the transport,
//! never as silent data corruption.

use sirpent::directory::{AccessSpec, HopSpec, RouteRecord, Security};
use sirpent::host::{HostPortKind, SirpentHost};
use sirpent::router::viper::ViperConfig;
use sirpent::sim::{FaultConfig, SimDuration, SimTime};
use sirpent::wire::viper::Priority;
use sirpent::wire::vmtp::EntityId;
use sirpent::{CompiledRoute, Net};

const RATE: u64 = 10_000_000;
const PROP: SimDuration = SimDuration(5_000);

fn one_hop_route() -> CompiledRoute {
    CompiledRoute::compile(
        &RouteRecord {
            access: AccessSpec {
                host_port: 0,
                ethernet_next: None,
                bandwidth_bps: RATE,
                prop_delay: PROP,
                mtu: 1550,
            },
            hops: vec![HopSpec {
                router_id: 1,
                port: 2,
                ethernet_next: None,
                bandwidth_bps: RATE,
                prop_delay: PROP,
                mtu: 1550,
                cost: 1,
                security: Security::Controlled,
            }],
            endpoint_selector: vec![],
        },
        &[],
        Priority::NORMAL,
    )
}

fn build(
    seed: u64,
) -> (
    sirpent::sim::Simulator,
    sirpent::sim::NodeId,
    sirpent::sim::NodeId,
    sirpent::sim::ChannelId,
    sirpent::sim::ChannelId,
) {
    let mut net = Net::new(seed);
    let a = net.host(0xA, vec![(0, HostPortKind::PointToPoint)]);
    let b = net.host(0xB, vec![(0, HostPortKind::PointToPoint)]);
    let r = net.viper(ViperConfig::basic(1, &[1, 2]));
    net.p2p(a, 0, r, 1, RATE, PROP);
    let (fwd, rev) = net.sim.p2p(r, 2, b, 0, RATE, PROP);
    let mut sim = net.into_sim();
    sim.node_mut::<SirpentHost>(a)
        .install_routes(EntityId(0xB), vec![one_hop_route()]);
    (sim, a, b, fwd, rev)
}

#[test]
fn large_message_survives_20_percent_loss() {
    let (mut sim, a, b, fwd, rev) = build(60);
    sim.set_faults(
        fwd,
        FaultConfig {
            drop_prob: 0.2,
            corrupt_prob: 0.0,
        },
    );
    sim.set_faults(
        rev,
        FaultConfig {
            drop_prob: 0.2,
            corrupt_prob: 0.0,
        },
    );

    // A 12 KB message = 12 group members at the default 1000 B segment.
    let msg: Vec<u8> = (0..12_000u32).map(|i| (i % 251) as u8).collect();
    sim.node_mut::<SirpentHost>(b).echo = false;
    sim.node_mut::<SirpentHost>(a)
        .queue_request(SimTime::ZERO, EntityId(0xB), msg.clone());
    SirpentHost::start(&mut sim, a);
    sim.run_until(SimTime(5_000_000_000));

    let server = sim.node::<SirpentHost>(b);
    assert_eq!(server.inbox.len(), 1, "message assembled despite loss");
    assert_eq!(server.inbox[0].message, msg, "byte-exact reassembly");
    // Selective retransmission did real work but did not resend the
    // whole message each time.
    let retx = sim.node::<SirpentHost>(a).endpoint().stats.retransmissions;
    assert!(retx > 0, "losses must have required retransmissions");
    assert!(
        retx < 48,
        "selective: far fewer resends than 4 full messages ({retx})"
    );
}

#[test]
fn many_transactions_survive_bidirectional_loss() {
    let (mut sim, a, b, fwd, rev) = build(61);
    sim.set_faults(
        fwd,
        FaultConfig {
            drop_prob: 0.1,
            corrupt_prob: 0.02,
        },
    );
    sim.set_faults(
        rev,
        FaultConfig {
            drop_prob: 0.1,
            corrupt_prob: 0.02,
        },
    );

    sim.node_mut::<SirpentHost>(b).auto_respond = Some(vec![0x0F; 200]);
    {
        let h = sim.node_mut::<SirpentHost>(a);
        for i in 0..50u64 {
            h.queue_request(SimTime(i * 10_000_000), EntityId(0xB), vec![0x44; 300]);
        }
    }
    SirpentHost::start(&mut sim, a);
    sim.run_until(SimTime(20_000_000_000));

    let client = sim.node::<SirpentHost>(a);
    // With 5 attempts per transaction and ~12% effective loss per
    // traversal, essentially everything completes.
    assert!(
        client.rtt_samples.len() >= 48,
        "completed {}/50",
        client.rtt_samples.len()
    );
    // Every delivered response is byte-exact (corruption was caught by
    // the transport checksum, never accepted).
    for m in &client.inbox {
        assert!(m.message.iter().all(|&x| x == 0x0F));
    }
    let server = sim.node::<SirpentHost>(b);
    for m in &server.inbox {
        assert!(m.message.iter().all(|&x| x == 0x44));
    }
}

#[test]
fn duplicate_deliveries_are_suppressed() {
    // Aggressive retransmission (tiny base RTT estimate) produces
    // duplicates on an otherwise clean network; the receiver must
    // deliver exactly once and re-ack the rest.
    let (mut sim, a, b, _fwd, rev) = build(62);
    // Drop all acks for a while so A retransmits a completed message.
    sim.set_faults(
        rev,
        FaultConfig {
            drop_prob: 0.8,
            corrupt_prob: 0.0,
        },
    );

    sim.node_mut::<SirpentHost>(a)
        .queue_request(SimTime::ZERO, EntityId(0xB), vec![0x77; 500]);
    SirpentHost::start(&mut sim, a);
    sim.run_until(SimTime(10_000_000_000));

    let server = sim.node::<SirpentHost>(b);
    assert_eq!(server.inbox.len(), 1, "exactly-once delivery to the app");
    assert!(
        server.endpoint().stats.duplicates > 0,
        "replays arrived and were recognized"
    );
}
