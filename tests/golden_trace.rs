//! Golden-trace determinism fixture.
//!
//! Runs one mixed VIPER + IP + CVC topology from a handful of seeds and
//! renders a canonical byte-exact digest of everything observable: router
//! stats (per-reason drop counts, delay summaries down to the f64 bit
//! pattern), host delivery timelines (with payload hashes), and channel
//! counters. The digest is compared against a fixture committed **before**
//! the staged-data-plane refactor, so the refactor is provably
//! behavior-preserving: identical seeds must produce identical event
//! sequences and stats before and after.
//!
//! Bless mode (regenerates fixtures — only for intentional behavior
//! changes, never to paper over drift):
//!
//! ```sh
//! GOLDEN_BLESS=1 cargo test --test golden_trace
//! ```
//!
//! CI's determinism job additionally sets `GOLDEN_TRACE_OUT=<dir>` to
//! capture the computed digests from two independent runs and diffs them
//! byte-for-byte.

use sirpent::router::cvc::{CvcConfig, CvcRoute, CvcSwitch};
use sirpent::router::ip::{IpConfig, IpPortConfig, IpRouter, RouteEntry};
use sirpent::router::link::LinkFrame;
use sirpent::router::scripted::ScriptedHost;
use sirpent::router::viper::{
    AuthConfig, CongestionConfig, PortConfig, PortKind, SwitchMode, ViperConfig, ViperRouter,
};
use sirpent::router::LogicalTable;
use sirpent::sim::stats::Summary;
use sirpent::sim::{ChannelId, FaultConfig, NodeId, SimDuration, SimTime, Simulator};
use sirpent::token::{AuthPolicy, Grant, TokenMinter};
use sirpent::wire::cvc::Message;
use sirpent::wire::ipish::{self, Address};
use sirpent::wire::packet::PacketBuilder;
use sirpent::wire::viper::{Flags, Priority, SegmentRepr, PORT_LOCAL};

const MBPS_10: u64 = 10_000_000;
const MBPS_100: u64 = 100_000_000;
const PROP: SimDuration = SimDuration(2_000);
const CVC_DEST: u32 = 0xC0A8_0202;

/// FNV-1a over a byte slice — a stable, dependency-free content hash.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Bit-exact signature of a delay summary: count plus the raw IEEE-754
/// bits of mean/stddev/min/max, so even 1-ulp drift fails the fixture.
fn summary_sig(s: &Summary) -> String {
    format!(
        "{}:{:016x}:{:016x}:{:016x}:{:016x}",
        s.count(),
        s.mean().to_bits(),
        s.stddev().to_bits(),
        s.min().to_bits(),
        s.max().to_bits()
    )
}

/// Render drop counters as `Name=count` pairs sorted by reason name.
fn drops_sig(pairs: Vec<(String, u64)>) -> String {
    let mut pairs: Vec<_> = pairs.into_iter().filter(|&(_, v)| v > 0).collect();
    pairs.sort();
    let parts: Vec<String> = pairs.iter().map(|(k, v)| format!("{k}={v}")).collect();
    parts.join(",")
}

struct Topology {
    sim: Simulator,
    hosts: Vec<(&'static str, NodeId)>,
    viper: Vec<(&'static str, NodeId)>,
    ip: Vec<(&'static str, NodeId)>,
    cvc: Vec<(&'static str, NodeId)>,
    channels: Vec<ChannelId>,
}

fn viper_cfg(router_id: u32, exit_mtu: usize, queue_capacity: usize) -> ViperConfig {
    ViperConfig {
        router_id,
        mode: SwitchMode::CutThrough,
        decision_delay: SimDuration::from_nanos(500),
        ports: vec![
            PortConfig {
                port: 1,
                kind: PortKind::PointToPoint,
                mtu: 1600,
            },
            PortConfig {
                port: 2,
                kind: PortKind::PointToPoint,
                mtu: exit_mtu,
            },
        ],
        auth: None,
        logical: LogicalTable::new(),
        queue_capacity,
        congestion: CongestionConfig::default(),
    }
}

fn sirpent_frame(packet: Vec<u8>) -> Vec<u8> {
    LinkFrame::Sirpent {
        ff_hint: 0,
        packet: packet.into(),
    }
    .to_p2p_bytes()
}

/// A two-hop Sirpent packet: r1 exit port 2, then r2 exit port 2 (with
/// `token`), then local delivery.
fn viper_packet(token: Vec<u8>, priority: u8, dib: bool, payload: Vec<u8>) -> Vec<u8> {
    PacketBuilder::new()
        .segment(SegmentRepr {
            port: 2,
            flags: Flags {
                dib,
                ..Default::default()
            },
            priority: Priority::new(priority),
            ..Default::default()
        })
        .segment(SegmentRepr {
            port: 2,
            priority: Priority::new(priority),
            port_token: token,
            ..Default::default()
        })
        .segment(SegmentRepr::minimal(PORT_LOCAL))
        .payload(payload)
        .build()
        .unwrap()
}

fn ip_datagram(src: Address, dst: Address, payload: usize, ttl: u8) -> Vec<u8> {
    let mut d = ipish::Repr {
        tos: 0,
        total_len: (ipish::HEADER_LEN + payload) as u16,
        ident: 7,
        dont_frag: false,
        more_frags: false,
        frag_offset: 0,
        ttl,
        protocol: 17,
        src,
        dst,
    }
    .to_bytes();
    d.extend(vec![0xAB; payload]);
    d
}

/// Build the mixed topology and script every workload.
fn build(seed: u64) -> Topology {
    let mut sim = Simulator::new(seed);
    let mut channels = Vec::new();

    // --- Sirpent plane: hA --(fast)--> r1 --(slow)--> r2 --> hB --------
    let ha = sim.add_node(Box::new(ScriptedHost::new()));
    let hb = sim.add_node(Box::new(ScriptedHost::new()));
    let hf = sim.add_node(Box::new(ScriptedHost::new()));
    let mut r1cfg = viper_cfg(1, 1600, 4);
    r1cfg.ports.push(PortConfig {
        port: 3,
        kind: PortKind::PointToPoint,
        mtu: 1600,
    });
    let r1 = sim.add_node(Box::new(ViperRouter::new(r1cfg)));
    let mut minter = TokenMinter::new(0xD0_0D, 5);
    let mut r2cfg = viper_cfg(2, 300, 64);
    r2cfg.auth = Some(AuthConfig {
        key: minter.router_key(2),
        policy: AuthPolicy::Optimistic,
        verify_delay: SimDuration::from_micros(200),
        require_token: true,
    });
    let r2 = sim.add_node(Box::new(ViperRouter::new(r2cfg)));
    let (a_r1, r1_a) = sim.p2p(ha, 0, r1, 1, MBPS_100, PROP);
    let (f_r1, r1_f) = sim.p2p(hf, 0, r1, 3, MBPS_100, PROP);
    let (r1_r2, r2_r1) = sim.p2p(r1, 2, r2, 1, MBPS_10, PROP);
    let (r2_b, b_r2) = sim.p2p(r2, 2, hb, 0, MBPS_10, PROP);
    channels.extend([a_r1, r1_a, f_r1, r1_f, r1_r2, r2_r1, r2_b, b_r2]);
    // Deterministic fault injection on the access link: consumes seeded
    // RNG draws so different seeds genuinely diverge.
    sim.set_faults(
        a_r1,
        FaultConfig {
            drop_prob: 0.08,
            corrupt_prob: 0.15,
        },
    );

    let mut mint = |priority: u8| {
        minter
            .mint(Grant {
                router_id: 2,
                port: 2,
                max_priority: Priority::new(priority),
                reverse_ok: true,
                account: 77,
                byte_limit: 0,
                expiry_s: 0,
            })
            .to_vec()
    };
    let tok5 = mint(5);
    let tok7 = mint(7);
    {
        let h = sim.node_mut::<ScriptedHost>(ha);
        // Burst that overflows r1's 4-slot queue (fast in, slow out).
        for i in 0..10u64 {
            h.plan(
                SimTime(i * 20_000),
                0,
                sirpent_frame(viper_packet(tok5.clone(), 3, false, vec![0x42; 64])),
            );
        }
        // Priority-7 preemption: arrives once the burst queue has drained
        // but r1 is still mid-transmission of a priority-3 frame, so the
        // current tx is aborted (Preempted) and the abort propagates to
        // r2's cut-through path.
        h.plan(
            SimTime(700_000),
            0,
            sirpent_frame(viper_packet(tok7.clone(), 7, false, vec![0x77; 64])),
        );
        // Drop-if-blocked while the port is busy with the priority-7 tx.
        h.plan(
            SimTime(760_000),
            0,
            sirpent_frame(viper_packet(tok5.clone(), 3, true, vec![0x0D; 64])),
        );
        // Tokenless packet: rejected at r2 (require_token).
        h.plan(
            SimTime(400_000),
            0,
            sirpent_frame(viper_packet(Vec::new(), 3, false, vec![0x00; 64])),
        );
        // Forged token: optimistic first pass, rejected on the repeat.
        let forged = viper_packet(vec![0xEE; 32], 3, false, vec![0xF0; 64]);
        h.plan(SimTime(1_000_000), 0, sirpent_frame(forged.clone()));
        h.plan(SimTime(2_000_000), 0, sirpent_frame(forged));
        // Unroutable port at r1.
        h.plan(
            SimTime(3_000_000),
            0,
            sirpent_frame(
                PacketBuilder::new()
                    .segment(SegmentRepr::minimal(99))
                    .segment(SegmentRepr::minimal(PORT_LOCAL))
                    .payload(vec![0x99; 32])
                    .build()
                    .unwrap(),
            ),
        );
        // Oversize packet truncated to r2's 300-byte exit MTU.
        h.plan(
            SimTime(4_000_000),
            0,
            sirpent_frame(viper_packet(tok5.clone(), 3, false, vec![0x5A; 500])),
        );
    }
    {
        // hF's link is fault-free, so this preemption pair fires
        // identically for every seed: a long priority-2 frame occupies the
        // slow exit port, then a priority-7 packet preempts it
        // mid-transmission. The abort propagates down r2's cut-through path
        // to hB.
        let h = sim.node_mut::<ScriptedHost>(hf);
        h.plan(
            SimTime(10_000_000),
            0,
            sirpent_frame(viper_packet(tok5.clone(), 2, false, vec![0xB1; 500])),
        );
        h.plan(
            SimTime(10_100_000),
            0,
            sirpent_frame(viper_packet(tok7.clone(), 7, false, vec![0xB2; 64])),
        );
    }

    // --- IP plane: hC -> ipr -> hD -------------------------------------
    let hc = sim.add_node(Box::new(ScriptedHost::new()));
    let hd = sim.add_node(Box::new(ScriptedHost::new()));
    let ipr = sim.add_node(Box::new(
        IpRouter::new(IpConfig {
            process_delay: SimDuration::from_micros(50),
            ports: vec![
                IpPortConfig {
                    port: 1,
                    kind: PortKind::PointToPoint,
                    mtu: 1500,
                },
                IpPortConfig {
                    port: 2,
                    kind: PortKind::PointToPoint,
                    mtu: 256,
                },
            ],
            routes: vec![RouteEntry {
                prefix: Address::new(10, 0, 2, 0),
                prefix_len: 24,
                out_port: 2,
                next_hop_mac: None,
            }],
            queue_capacity: 32,
        })
        .expect("ip config"),
    ));
    let (c_ip, ip_c) = sim.p2p(hc, 0, ipr, 1, MBPS_10, PROP);
    let (ip_d, d_ip) = sim.p2p(ipr, 2, hd, 0, MBPS_10, PROP);
    channels.extend([c_ip, ip_c, ip_d, d_ip]);
    {
        let src = Address::new(10, 0, 1, 1);
        let dst = Address::new(10, 0, 2, 2);
        let h = sim.node_mut::<ScriptedHost>(hc);
        for i in 0..3u64 {
            h.plan(
                SimTime(i * 500_000),
                0,
                LinkFrame::Ipish(ip_datagram(src, dst, 100, ipish::DEFAULT_TTL)).to_p2p_bytes(),
            );
        }
        // TTL expiry.
        h.plan(
            SimTime(3_000_000),
            0,
            LinkFrame::Ipish(ip_datagram(src, dst, 40, 1)).to_p2p_bytes(),
        );
        // Corrupted header: checksum drop.
        let mut bad = ip_datagram(src, dst, 40, 9);
        bad[16] ^= 0x55;
        h.plan(SimTime(4_000_000), 0, LinkFrame::Ipish(bad).to_p2p_bytes());
        // No route.
        h.plan(
            SimTime(5_000_000),
            0,
            LinkFrame::Ipish(ip_datagram(src, Address::new(10, 9, 9, 9), 40, 9)).to_p2p_bytes(),
        );
        // Fragmentation to the 256-byte exit MTU.
        h.plan(
            SimTime(6_000_000),
            0,
            LinkFrame::Ipish(ip_datagram(src, dst, 1000, 9)).to_p2p_bytes(),
        );
    }

    // --- CVC plane: hE -> s1 -> s2 (local attachment) ------------------
    let he = sim.add_node(Box::new(ScriptedHost::new()));
    let cvc_cfg = |out_port: u8| CvcConfig {
        process_delay: SimDuration::from_micros(5),
        setup_delay: SimDuration::from_micros(200),
        routes: vec![CvcRoute {
            dest: CVC_DEST,
            out_port,
        }],
        max_circuits: 100,
        reservable_fraction: 0.8,
    };
    let s1 = sim.add_node(Box::new(CvcSwitch::new(cvc_cfg(2))));
    let s2 = sim.add_node(Box::new(CvcSwitch::new(cvc_cfg(0))));
    let (e_s1, s1_e) = sim.p2p(he, 0, s1, 1, MBPS_10, SimDuration::from_micros(10));
    let (s1_s2, s2_s1) = sim.p2p(s1, 2, s2, 1, MBPS_10, SimDuration::from_micros(10));
    channels.extend([e_s1, s1_e, s1_s2, s2_s1]);
    {
        let h = sim.node_mut::<ScriptedHost>(he);
        let plan_cvc = |h: &mut ScriptedHost, at: u64, m: Message| {
            h.plan(SimTime(at), 0, LinkFrame::Cvc(m.to_bytes()).to_p2p_bytes());
        };
        plan_cvc(
            h,
            0,
            Message::Setup {
                vci: 9,
                dest: CVC_DEST,
                reserve: 0,
            },
        );
        for i in 0..3u64 {
            plan_cvc(
                h,
                5_000_000 + i * 100_000,
                Message::Data {
                    vci: 9,
                    payload: vec![0xC0; 48],
                },
            );
        }
        plan_cvc(
            h,
            6_000_000,
            Message::Setup {
                vci: 4,
                dest: 0xDEAD,
                reserve: 0,
            },
        );
        plan_cvc(h, 8_000_000, Message::Teardown { vci: 9 });
    }

    for host in [ha, hb, hf, hc, hd, he] {
        ScriptedHost::start(&mut sim, host);
    }

    Topology {
        sim,
        hosts: vec![
            ("hA", ha),
            ("hB", hb),
            ("hF", hf),
            ("hC", hc),
            ("hD", hd),
            ("hE", he),
        ],
        viper: vec![("r1", r1), ("r2", r2)],
        ip: vec![("ipr", ipr)],
        cvc: vec![("s1", s1), ("s2", s2)],
        channels,
    }
}

fn viper_line(name: &str, r: &ViperRouter) -> String {
    let s = &r.stats;
    format!(
        "viper {name} fwd={} local={} trunc={} hits={} dec={} blk={} bp={} maxq={} drops[{}] delay={}",
        s.forwarded,
        s.local,
        s.truncated,
        s.token_cache_hits,
        s.token_decrypts,
        s.token_blocked,
        s.backpressure_sent,
        s.max_queue,
        drops_sig(
            s.drops
                .iter()
                .map(|(k, v)| (format!("{k:?}"), v))
                .collect()
        ),
        summary_sig(&s.forward_delay),
    )
}

fn ip_line(name: &str, r: &IpRouter) -> String {
    let s = &r.stats;
    format!(
        "ip {name} fwd={} local={} frags={} maxq={} drops[{}] delay={}",
        s.forwarded,
        s.local,
        s.fragments_made,
        s.max_queue,
        drops_sig(s.drops.iter().map(|(k, v)| (format!("{k:?}"), v)).collect()),
        summary_sig(&s.forward_delay),
    )
}

fn cvc_line(name: &str, r: &CvcSwitch) -> String {
    let s = &r.stats;
    format!(
        "cvc {name} fwd={} local={} setups={} rejects={} peak={} state={} delay={}",
        s.forwarded,
        r.local_delivered.len(),
        s.setups,
        s.rejects,
        s.circuits_peak,
        r.state_bytes(),
        summary_sig(&s.forward_delay),
    )
}

/// Run the topology for one seed and render the canonical digest.
fn digest(seed: u64) -> String {
    let mut t = build(seed);
    t.sim.run_until(SimTime(50_000_000));

    let mut out = String::new();
    out.push_str(&format!("seed={seed}\n"));
    out.push_str(&format!("events={}\n", t.sim.events_dispatched()));
    for &(name, id) in &t.viper {
        out.push_str(&viper_line(name, t.sim.node::<ViperRouter>(id)));
        out.push('\n');
    }
    for &(name, id) in &t.ip {
        out.push_str(&ip_line(name, t.sim.node::<IpRouter>(id)));
        out.push('\n');
    }
    for &(name, id) in &t.cvc {
        out.push_str(&cvc_line(name, t.sim.node::<CvcSwitch>(id)));
        out.push('\n');
    }
    for &(name, id) in &t.hosts {
        let h = t.sim.node::<ScriptedHost>(id);
        let rx: Vec<String> = h
            .received
            .iter()
            .map(|r| {
                format!(
                    "({},{},{},{:016x},{})",
                    r.last_bit.as_nanos(),
                    r.port,
                    r.bytes.len(),
                    fnv64(&r.bytes),
                    u8::from(r.corrupted),
                )
            })
            .collect();
        let tx: Vec<String> = h
            .tx_done
            .iter()
            .map(|time| time.as_nanos().to_string())
            .collect();
        out.push_str(&format!(
            "host {name} aborted={} rx=[{}] txdone=[{}]\n",
            h.aborted,
            rx.join(";"),
            tx.join(";"),
        ));
    }
    for (i, &ch) in t.channels.iter().enumerate() {
        let s = t.sim.channel_stats(ch);
        out.push_str(&format!(
            "chan {i} frames={} bytes={} busy={} drops={} corrupt={} aborts={}\n",
            s.frames,
            s.bytes,
            s.busy.as_nanos(),
            s.drops,
            s.corrupted,
            s.aborts,
        ));
    }
    out
}

const SEEDS: [u64; 3] = [1, 2, 3];

fn fixture_path(seed: u64) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("golden_seed{seed}.txt"))
}

#[test]
fn golden_trace_matches_fixture() {
    let bless = std::env::var("GOLDEN_BLESS").is_ok();
    let out_dir = std::env::var("GOLDEN_TRACE_OUT").ok();
    for seed in SEEDS {
        let d1 = digest(seed);
        let d2 = digest(seed);
        assert_eq!(d1, d2, "same-process rerun diverged for seed {seed}");
        if let Some(dir) = &out_dir {
            std::fs::create_dir_all(dir).unwrap();
            std::fs::write(
                std::path::Path::new(dir).join(format!("golden_seed{seed}.txt")),
                &d1,
            )
            .unwrap();
        }
        let path = fixture_path(seed);
        if bless {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &d1).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing fixture {} ({e}); run with GOLDEN_BLESS=1",
                path.display()
            )
        });
        assert_eq!(
            d1, want,
            "seed {seed} digest drifted from the committed pre-refactor fixture",
        );
    }
}

#[test]
fn golden_seeds_diverge() {
    // Sanity: the fault injector actually consumes seeded randomness, so
    // distinct seeds produce distinct traces (the fixture is not vacuous).
    // Strip the `seed=` header so the comparison is over observed behavior.
    let body = |seed: u64| digest(seed).split_once('\n').unwrap().1.to_string();
    let (b1, b2, b3) = (body(SEEDS[0]), body(SEEDS[1]), body(SEEDS[2]));
    assert!(
        b1 != b2 || b1 != b3,
        "all golden seeds produced identical traces"
    );
}
