//! The full §3/§6.3 control loop: query → cache → use → failure report →
//! on-use invalidation → re-query → recovery, with the client cache
//! absorbing repeat lookups.

use sirpent::compile::CompiledRoute;
use sirpent::directory::{
    AccessSpec, Directory, HopSpec, Name, Preference, RouteCache, RouteRecord, Security,
};
use sirpent::host::{HostEvent, HostPortKind, SirpentHost};
use sirpent::router::viper::ViperConfig;
use sirpent::sim::{FaultConfig, SimDuration, SimTime};
use sirpent::transport::FailoverPolicy;
use sirpent::wire::viper::Priority;
use sirpent::wire::vmtp::EntityId;
use sirpent::Net;

const RATE: u64 = 10_000_000;
const PROP: SimDuration = SimDuration(5_000);

fn hop(router_id: u32) -> HopSpec {
    HopSpec {
        router_id,
        port: 2,
        ethernet_next: None,
        bandwidth_bps: RATE,
        prop_delay: PROP,
        mtu: 1550,
        cost: 1,
        security: Security::Controlled,
    }
}

fn access(host_port: u8) -> AccessSpec {
    AccessSpec {
        host_port,
        ethernet_next: None,
        bandwidth_bps: RATE,
        prop_delay: PROP,
        mtu: 1550,
    }
}

#[test]
fn requery_after_total_route_failure_recovers_service() {
    // Topology: client has two parallel paths (via R1, via R2). Both die;
    // the client reports NeedsRequery; meanwhile the operator brings up
    // the R2 path again and reports it to the directory; the re-query
    // returns only the revived route and service resumes.
    let mut net = Net::new(33);
    let client = net.host(
        0xC,
        vec![
            (0, HostPortKind::PointToPoint),
            (1, HostPortKind::PointToPoint),
        ],
    );
    let server = net.host(
        0x5,
        vec![
            (0, HostPortKind::PointToPoint),
            (1, HostPortKind::PointToPoint),
        ],
    );
    let r1 = net.viper(ViperConfig::basic(1, &[1, 2]));
    let r2 = net.viper(ViperConfig::basic(2, &[1, 2]));
    net.p2p(client, 0, r1, 1, RATE, PROP);
    net.p2p(client, 1, r2, 1, RATE, PROP);
    let (l1a, l1b) = net.sim.p2p(r1, 2, server, 0, RATE, PROP);
    let (l2a, l2b) = net.sim.p2p(r2, 2, server, 1, RATE, PROP);
    let mut sim = net.into_sim();

    // Directory with both routes; client-side cache.
    let mut dir = Directory::new();
    let svc = Name::parse("db.hq.example");
    let me = Name::parse("c.branch.example");
    dir.register_route(
        &svc,
        Name::root(),
        RouteRecord {
            access: access(0),
            hops: vec![hop(1)],
            endpoint_selector: vec![],
        },
    );
    dir.register_route(
        &svc,
        Name::root(),
        RouteRecord {
            access: access(1),
            hops: vec![hop(2)],
            endpoint_selector: vec![],
        },
    );
    let mut cache = RouteCache::new(SimDuration::from_secs(60));

    // Initial query (miss → directory), then a cache hit.
    assert!(cache.get(&svc, sim.now(), dir.topology_epoch()).is_none());
    let q = dir.query(&me, &svc, Preference::LowDelay, 4, 1);
    assert_eq!(q.advisories.len(), 2);
    cache.put(
        svc.clone(),
        q.advisories.clone(),
        sim.now(),
        dir.topology_epoch(),
    );
    assert!(cache.get(&svc, sim.now(), dir.topology_epoch()).is_some());
    assert_eq!(cache.hits, 1);

    let compile_all = |advs: &[sirpent::directory::Advisory]| -> Vec<CompiledRoute> {
        advs.iter()
            .map(|a| CompiledRoute::compile(&a.route, &a.tokens, Priority::NORMAL))
            .collect()
    };
    {
        let c = sim.node_mut::<SirpentHost>(client);
        c.set_failover(FailoverPolicy {
            loss_threshold: 1,
            ..Default::default()
        });
        c.install_routes(
            EntityId(0x5),
            compile_all(
                cache
                    .get(&svc, SimTime::ZERO, dir.topology_epoch())
                    .unwrap(),
            ),
        );
        for i in 0..40u64 {
            c.queue_request(SimTime(i * 20_000_000), EntityId(0x5), vec![1; 64]);
        }
    }
    sim.node_mut::<SirpentHost>(server).auto_respond = Some(vec![2; 64]);
    SirpentHost::start(&mut sim, client);

    // Kill BOTH paths at t = 200 ms.
    sim.run_until(SimTime(200_000_000));
    let dead = FaultConfig {
        drop_prob: 1.0,
        corrupt_prob: 0.0,
    };
    for ch in [l1a, l1b, l2a, l2b] {
        sim.set_faults(ch, dead);
    }
    // Operator-side: the directory learns both links are down.
    dir.report_down(1, 2);
    dir.report_down(2, 2);

    // Let the client discover total failure.
    sim.run_until(SimTime(700_000_000));
    let needs_requery_at = {
        let c = sim.node::<SirpentHost>(client);
        c.events.iter().find_map(|e| match e {
            HostEvent::NeedsRequery { at, .. } => Some(*at),
            _ => None,
        })
    };
    let needs_requery_at = needs_requery_at.expect("client must ask for a re-query");

    // On-use invalidation (§3): drop the stale cache entry, then the
    // re-query — the directory still excludes both dead routes.
    cache.invalidate(&svc);
    let q2 = dir.query(&me, &svc, Preference::LowDelay, 4, 1);
    assert!(q2.advisories.is_empty(), "everything known-down");

    // The R2 path is repaired and reported up.
    let clean = FaultConfig::default();
    for ch in [l2a, l2b] {
        sim.set_faults(ch, clean);
    }
    dir.report_up(2, 2);
    let q3 = dir.query(&me, &svc, Preference::LowDelay, 4, 1);
    assert_eq!(q3.advisories.len(), 1, "only the revived route");
    assert_eq!(q3.advisories[0].route.hops[0].router_id, 2);
    cache.put(
        svc.clone(),
        q3.advisories.clone(),
        sim.now(),
        dir.topology_epoch(),
    );

    // Install the fresh route set and finish the workload.
    {
        let t = sim.now();
        let c = sim.node_mut::<SirpentHost>(client);
        c.install_routes(EntityId(0x5), compile_all(&q3.advisories));
        for i in 0..10u64 {
            c.queue_request(
                SimTime(t.as_nanos() + i * 20_000_000),
                EntityId(0x5),
                vec![3; 64],
            );
        }
    }
    SirpentHost::start(&mut sim, client);
    sim.run_until(SimTime(2_000_000_000));

    let c = sim.node::<SirpentHost>(client);
    let after: usize = c
        .rtt_samples
        .iter()
        .filter(|(t, _)| *t > needs_requery_at)
        .count();
    assert!(after >= 10, "post-requery transactions completed ({after})");
    assert_eq!(cache.invalidations, 1);
    assert_eq!(dir.queries, 3);
}
